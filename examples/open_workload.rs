//! Open (constant-rate) workload — §8.1's variation: instead of a closed
//! client population, requests arrive as a Poisson stream. Compares the
//! layered queuing model's mixed open/closed solution with the simulated
//! testbed as the arrival rate approaches the server's capacity.
//!
//! ```text
//! cargo run --release --example open_workload
//! ```

use perfpred::core::{ServerArch, ServiceClass, Workload};
use perfpred::lqns::model::LqnModel;
use perfpred::lqns::solve::{solve, SolverOptions};
use perfpred::tradesim::config::{GroundTruth, SimOptions};
use perfpred::tradesim::engine::TradeSim;

fn lqn_open(rate_rps: f64) -> LqnModel {
    // Table-2-style demands matched to the simulator's ground truth.
    let gt = GroundTruth::default();
    let mut b = LqnModel::builder();
    let cp = b.processor("src-cpu").infinite().finish();
    let ap = b.processor("app-cpu").finish();
    let dp = b.processor("db-cpu").finish();
    let app = b.task("app", ap).multiplicity(gt.app_threads).finish();
    let db = b.task("db", dp).multiplicity(gt.db_connections).finish();
    let serve = b
        .entry("serve", app)
        .demand_ms(gt.browse_app_demand_ms)
        .finish();
    let query = b
        .entry("query", db)
        .demand_ms(gt.browse_db_demand_ms)
        .finish();
    b.call(serve, query, 1.14);
    let src = b.open_reference_task("source", cp, rate_rps).finish();
    let arrive = b.entry("arrive", src).finish();
    b.call(arrive, serve, 1.0);
    b.build().expect("valid model")
}

fn main() {
    let gt = GroundTruth::default();
    let server = ServerArch::app_serv_f();
    println!(
        "Open Poisson workload on {} (capacity ≈ {:.0} req/s)\n",
        server.name,
        1_000.0 / gt.browse_app_demand_ms
    );
    println!(
        "{:>12}  {:>13}  {:>12}  {:>9}",
        "rate (req/s)", "simulated mrt", "lq open mrt", "app util"
    );
    for rate in [30.0, 90.0, 130.0, 160.0, 175.0, 183.0] {
        let sim = TradeSim::new(&gt, &server, &Workload::typical(0), &SimOptions::quick(11))
            .with_open_traffic(ServiceClass::browse().named("open"), rate)
            .run();
        let sol = solve(&lqn_open(rate), &SolverOptions::default()).expect("stable load");
        println!(
            "{:>12.0}  {:>13.1}  {:>12.1}  {:>8.0}%",
            rate,
            sim.per_class[1].rt.mean(),
            sol.open_response_ms[0],
            sim.app_cpu_utilization * 100.0
        );
    }
    println!(
        "\nBoth columns show the M/M/1-style blow-up as the rate nears capacity; the\n\
         constant offset at low rates is the infrastructure latency the LQN's\n\
         CPU-based calibration cannot see (the paper's §5.1 'communication overhead')."
    );

    // Instability is detected, not mispredicted.
    match solve(&lqn_open(250.0), &SolverOptions::default()) {
        Err(e) => println!("\n250 req/s against a ~186 req/s server: {e}"),
        Ok(_) => unreachable!("unstable load must be rejected"),
    }
}
