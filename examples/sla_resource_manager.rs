//! The §9 prediction-enhanced resource manager: allocate a 16-server pool
//! to three SLA-bearing service classes with Algorithm 1, then tune the
//! slack to balance SLA failures against server usage.
//!
//! ```text
//! cargo run --release --example sla_resource_manager
//! ```

use perfpred::hydra::{HistoricalModel, ServerObservations};
use perfpred::resman::algorithm::allocate;
use perfpred::resman::costs::{sweep_loads, SweepConfig};
use perfpred::resman::runtime::RuntimeOptions;
use perfpred::resman::scenario::{paper_pool, paper_workload, UniformErrorModel};

/// A synthetic (closed-loop consistent) historical calibration standing in
/// for the truth model, so the example runs instantly.
fn truth_model() -> HistoricalModel {
    let m = 0.1424;
    let obs = |name: &str, mx: f64, c: f64, lam: f64| {
        let n_star = mx / m;
        ServerObservations::new(name, mx)
            .with_lower(0.15 * n_star, c * (lam * 0.15 * n_star).exp())
            .with_lower(0.66 * n_star, c * (lam * 0.66 * n_star).exp())
            .with_upper(1.10 * n_star, 1_000.0 / mx * 1.10 * n_star - 7_000.0)
            .with_upper(1.55 * n_star, 1_000.0 / mx * 1.55 * n_star - 7_000.0)
            .with_throughput(0.3 * n_star, m * 0.3 * n_star)
    };
    HistoricalModel::builder()
        .observations(obs("AppServF", 186.0, 18.5, 5.6e-4))
        .observations(obs("AppServVF", 320.0, 11.7, 3.3e-4))
        .r3_points(&[(0.0, 186.0), (25.0, 151.0), (50.0, 127.0), (100.0, 95.0)])
        .class_deviation(0.86, 1.43)
        .build()
        .expect("calibration")
}

fn main() {
    let truth = truth_model();
    // The planner sees the world through a uniformly optimistic lens
    // (predictive accuracy y = 1.075, the paper's measured average).
    let planner = UniformErrorModel::new(truth_model(), 1.075);
    let pool = paper_pool();
    let workload = paper_workload(6_000);

    // One allocation in detail.
    let alloc = allocate(&planner, &pool, &workload, 1.1).expect("allocation");
    println!("allocation at 6000 clients, slack 1.1:");
    for sa in &alloc.servers {
        let total: u32 = sa.real.iter().sum();
        if total > 0 {
            println!(
                "  server {:>2} ({:>9}): buy {:>4}  browse-hi {:>4}  browse-lo {:>4}",
                sa.server_idx, pool[sa.server_idx].name, sa.real[0], sa.real[1], sa.real[2]
            );
        }
    }
    println!(
        "  servers used: {} of {}; rejected: {:?}\n",
        alloc.used_servers().len(),
        pool.len(),
        alloc.rejected_real
    );

    // Slack tuning: failures vs usage across loads.
    let config = SweepConfig {
        loads: (1..=10).map(|i| i * 1_000).collect(),
        runtime: RuntimeOptions::default(),
    };
    println!(
        "{:>6}  {:>18}  {:>16}",
        "slack", "avg % SLA failures", "avg % usage"
    );
    for slack in [1.2, 1.1, 1.075, 1.0, 0.9, 0.75] {
        let pts = sweep_loads(
            &planner,
            &truth,
            &pool,
            &paper_workload(1_000),
            &config,
            slack,
        )
        .expect("sweep");
        let fail = pts.iter().map(|p| p.sla_failure_pct).sum::<f64>() / pts.len() as f64;
        let usage = pts.iter().map(|p| p.server_usage_pct).sum::<f64>() / pts.len() as f64;
        println!("{:>6.3}  {:>18.2}  {:>16.1}", slack, fail, usage);
    }
    println!(
        "\n(slack >= y = 1.075 removes all SLA failures; lower slack trades failures for servers)"
    );
}
