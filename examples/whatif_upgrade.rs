//! What-if upgrade planning (§2's motivation: "upgrades to be planned in
//! an informed fashion"): given today's workload mix, how would response
//! times and headroom change on candidate server architectures — including
//! one that exists only as a benchmark number?
//!
//! ```text
//! cargo run --release --example whatif_upgrade
//! ```

use perfpred::core::{PerformanceModel, ServerArch, Workload};
use perfpred::lqns::trade::TradeLqnConfig;
use perfpred::lqns::LqnPredictor;

fn main() {
    let predictor = LqnPredictor::new(TradeLqnConfig::paper_table2());

    // Today's workload: 1200 clients, 10 % of them buyers.
    let workload = Workload::with_buy_pct(1_200, 10.0);

    // Candidates: the case-study trio plus a hypothetical next-gen server,
    // known only through its benchmark speed (2.4x AppServF).
    let mut candidates = ServerArch::case_study_servers();
    candidates.push(ServerArch::new("AppServNG", 2.4, 2.4 * 186.0));

    println!(
        "what-if: {} clients at {:.0}% buy on each candidate architecture\n",
        workload.total_clients(),
        workload.buy_pct()
    );
    println!(
        "{:>10}  {:>9}  {:>10}  {:>10}  {:>12}  {:>14}",
        "server", "mrt (ms)", "browse", "buy", "utilisation", "headroom (rps)"
    );
    for server in &candidates {
        let p = predictor.predict(server, &workload).expect("prediction");
        let mx = predictor
            .max_throughput_rps(server, &workload)
            .expect("max throughput");
        println!(
            "{:>10}  {:>9.1}  {:>10.1}  {:>10.1}  {:>11.0}%  {:>14.1}",
            server.name,
            p.mrt_ms,
            p.per_class_mrt_ms[0],
            p.per_class_mrt_ms[1],
            p.utilization.unwrap_or(0.0) * 100.0,
            mx - p.throughput_rps
        );
    }

    // SLA-driven sizing: how many such clients could each candidate hold
    // at a 250 ms mean-response-time goal?
    println!("\nmax clients of this mix within a 250 ms goal:");
    for server in &candidates {
        let n = predictor
            .max_clients(server, &workload, 250.0)
            .expect("capacity search");
        println!("{:>10}: {}", server.name, n);
    }
}
