//! Quickstart: build the Trade layered queuing model with the paper's
//! Table 2 calibration, predict response times and throughput across a
//! range of loads, and find the biggest SLA-compliant population.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perfpred::core::{PerformanceModel, ServerArch, Workload};
use perfpred::lqns::trade::TradeLqnConfig;
use perfpred::lqns::LqnPredictor;

fn main() {
    // The paper's Table 2 processing times, calibrated on AppServF.
    let predictor = LqnPredictor::new(TradeLqnConfig::paper_table2());
    let server = ServerArch::app_serv_f();

    println!(
        "Layered queuing predictions for {} (typical workload)\n",
        server.name
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>6}",
        "clients", "mrt (ms)", "tput (req/s)", "sat"
    );
    for clients in [100u32, 400, 800, 1_200, 1_600, 2_000, 2_400] {
        let p = predictor
            .predict(&server, &Workload::typical(clients))
            .expect("prediction");
        println!(
            "{:>8}  {:>12.1}  {:>12.1}  {:>6}",
            clients,
            p.mrt_ms,
            p.throughput_rps,
            if p.saturated { "yes" } else { "no" }
        );
    }

    // §8.2: the layered queuing method searches for the max population.
    let goal_ms = 300.0;
    let max = predictor
        .max_clients(&server, &Workload::typical(100), goal_ms)
        .expect("search");
    println!("\nmax clients with mean response time <= {goal_ms} ms: {max}");

    // Heterogeneous workloads shift the curve (§4.3 / fig 4).
    let mixed = predictor
        .predict(&server, &Workload::with_buy_pct(1_000, 25.0))
        .expect("mixed prediction");
    println!(
        "\n1000 clients at 25% buy: workload mrt {:.1} ms (browse {:.1}, buy {:.1})",
        mixed.mrt_ms, mixed.per_class_mrt_ms[0], mixed.per_class_mrt_ms[1]
    );
}
