//! The append-only, segmented, crash-safe observation log.
//!
//! A log is a directory: numbered segment files (`seg-00000000.obs`,
//! `seg-00000001.obs`, …) of fixed-size CRC-framed records (see
//! [`crate::record`]) plus a `MANIFEST.json` written atomically
//! (temp + rename, [`perfpred_core::fsutil::atomic_write`]) that pins the
//! format version, record size and segment capacity.
//!
//! ## Durability contract
//!
//! Appends go to the tail of the *active* segment with plain sequential
//! writes — no per-record fsync, which is what keeps ingest in the
//! hundreds of thousands of records per second. A segment is fsync'd when
//! it *seals* (rotation), and callers can force the active tail down with
//! [`ObservationLog::sync`] (the serve daemon does this on drain). A
//! crash therefore loses at most the unsynced tail of the active segment
//! — and loses it *cleanly*: recovery scans records in order, stops at
//! the first CRC failure or short record, truncates the torn tail, and
//! resumes appending from the last valid record.

use crate::record::{Observation, StoreError, RECORD_BYTES};
use perfpred_core::fsutil::{atomic_write, create_durable, sync_dir};
use perfpred_core::{metrics, Json};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// On-disk format version understood by this module.
const FORMAT: u32 = 1;
/// Manifest file name inside the log directory.
pub const MANIFEST: &str = "MANIFEST.json";

/// Tuning knobs for [`ObservationLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogOptions {
    /// Records per segment before rotation (default 65 536 — 4 MiB
    /// segments at 64-byte records).
    pub segment_records: usize,
}

impl Default for LogOptions {
    fn default() -> Self {
        LogOptions {
            segment_records: 65_536,
        }
    }
}

/// What recovery found while replaying a log directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Valid records replayed, in append order.
    pub records: u64,
    /// Segment files scanned.
    pub segments: usize,
    /// Bytes discarded past the last valid record (torn tail, corruption).
    pub torn_bytes: u64,
}

/// A handle on one log directory, positioned for appending.
#[derive(Debug)]
pub struct ObservationLog {
    dir: PathBuf,
    segment_records: usize,
    epoch: u64,
    active: File,
    active_id: u64,
    active_records: usize,
    sealed_records: u64,
}

fn segment_name(id: u64) -> String {
    format!("seg-{id:08}.obs")
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let id = name.strip_prefix("seg-")?.strip_suffix(".obs")?;
    if id.len() != 8 || !id.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    id.parse().ok()
}

fn manifest_json(segment_records: usize, next_segment_id: u64, epoch: u64) -> String {
    let mut m = Json::obj();
    m.set("format", u64::from(FORMAT));
    m.set("record_bytes", RECORD_BYTES as u64);
    m.set("segment_records", segment_records as u64);
    m.set("next_segment_id", next_segment_id);
    m.set("epoch", epoch);
    m.render()
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl ObservationLog {
    /// Opens (creating if necessary) the log in `dir`, replaying every
    /// valid record through `on_record` in append order.
    ///
    /// Recovery semantics distinguish the two ways a segment can be bad.
    /// A torn tail in the *final* segment is the expected crash artifact
    /// (appends are not fsync'd record-by-record): the torn bytes are
    /// truncated away and appending resumes after the last valid record.
    /// A torn or short *non-final* segment can never result from a clean
    /// crash — rotation fsyncs a segment before the next one is created —
    /// so it is real corruption, and replay fails loudly with
    /// `InvalidData` rather than silently skipping records and serving a
    /// model fit on a hole in the history.
    pub fn open(
        dir: &Path,
        opts: LogOptions,
        mut on_record: impl FnMut(Observation),
    ) -> io::Result<(ObservationLog, ReplayReport)> {
        std::fs::create_dir_all(dir)?;
        let (segment_records, epoch) = Self::load_or_init_manifest(dir, opts)?;

        // Discover segments in id order.
        let mut ids: Vec<u64> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_id(&e.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();

        let mut report = ReplayReport {
            segments: ids.len(),
            ..Default::default()
        };
        let mut survivors: Vec<(u64, usize)> = Vec::new(); // (id, records)
        for (idx, &id) in ids.iter().enumerate() {
            let is_final = idx + 1 == ids.len();
            let path = dir.join(segment_name(id));
            let bytes = std::fs::read(&path)?;
            let mut valid = 0usize;
            let mut corrupted = false;
            for chunk in bytes.chunks(RECORD_BYTES) {
                let rec: Option<Observation> = <&[u8; RECORD_BYTES]>::try_from(chunk)
                    .ok()
                    .and_then(Observation::decode);
                match rec {
                    Some(obs) => {
                        on_record(obs);
                        valid += 1;
                    }
                    None => {
                        corrupted = true;
                        break;
                    }
                }
            }
            let valid_bytes = (valid * RECORD_BYTES) as u64;
            let torn = corrupted || valid_bytes < bytes.len() as u64;
            if !is_final && (torn || valid < segment_records) {
                return Err(bad_data(format!(
                    "sealed segment {} holds {valid} valid records (capacity \
                     {segment_records}) with later segments present — this is \
                     corruption, not a crash tail; refusing to skip records",
                    path.display()
                )));
            }
            report.records += valid as u64;
            if torn {
                // Torn tail in the final segment: truncate to the valid
                // prefix — everything past the last valid CRC is lost.
                report.torn_bytes += bytes.len() as u64 - valid_bytes;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_bytes)?;
                f.sync_all()?;
            }
            survivors.push((id, valid));
        }
        if report.torn_bytes > 0 {
            metrics::counter("store.torn_bytes").add(report.torn_bytes);
            sync_dir(dir)?;
        }

        let (active_id, active_records) = match survivors.last() {
            Some(&(id, records)) => (id, records),
            None => {
                // First-ever segment: make its *directory entry* durable
                // too (create_durable fsyncs the file and the parent), or
                // a crash here could bring the log back up with a
                // manifest pointing at a segment that vanished.
                let path = dir.join(segment_name(0));
                drop(create_durable(&path, false)?);
                (0, 0)
            }
        };
        let sealed_records = report.records - active_records as u64;
        // `truncate(false)`: the active segment still holds its surviving
        // records — appends resume past them via the seek below.
        let mut active = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(segment_name(active_id)))?;
        active.seek(SeekFrom::Start((active_records * RECORD_BYTES) as u64))?;

        let mut log = ObservationLog {
            dir: dir.to_path_buf(),
            segment_records,
            epoch,
            active,
            active_id,
            active_records,
            sealed_records,
        };
        if log.active_records >= log.segment_records {
            log.rotate()?;
        }
        Ok((log, report))
    }

    /// Reads the manifest (validating format and record size) or writes a
    /// fresh one. Returns the segment capacity and cluster epoch in force
    /// — an existing manifest's capacity wins over `opts` so offset math
    /// never changes under an existing log. Manifests written before the
    /// cluster era carry no epoch; they read back as epoch 0.
    fn load_or_init_manifest(dir: &Path, opts: LogOptions) -> io::Result<(usize, u64)> {
        let path = dir.join(MANIFEST);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let m = Json::parse(&text)
                    .map_err(|e| bad_data(format!("manifest {}: {e}", path.display())))?;
                let field = |name: &str| -> io::Result<u64> {
                    m.get(name)
                        .and_then(Json::as_f64)
                        .map(|v| v as u64)
                        .ok_or_else(|| bad_data(format!("manifest is missing '{name}'")))
                };
                if field("format")? != u64::from(FORMAT) {
                    return Err(bad_data(format!(
                        "unsupported log format {} (expected {FORMAT})",
                        field("format")?
                    )));
                }
                if field("record_bytes")? != RECORD_BYTES as u64 {
                    return Err(bad_data(format!(
                        "log has {}-byte records, this build expects {RECORD_BYTES}",
                        field("record_bytes")?
                    )));
                }
                let epoch = m
                    .get("epoch")
                    .and_then(Json::as_f64)
                    .map_or(0, |v| v as u64);
                Ok(((field("segment_records")? as usize).max(1), epoch))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let capacity = opts.segment_records.max(1);
                atomic_write(&path, manifest_json(capacity, 1, 0).as_bytes())?;
                Ok((capacity, 0))
            }
            Err(e) => Err(e),
        }
    }

    /// Appends one observation (validated and CRC-framed).
    pub fn append(&mut self, obs: &Observation) -> Result<(), StoreError> {
        self.append_batch(std::slice::from_ref(obs))
    }

    /// Appends a batch in order, rotating segments as they fill. The whole
    /// batch is validated before the first byte is written, so a rejected
    /// observation never leaves a partial batch behind.
    pub fn append_batch(&mut self, batch: &[Observation]) -> Result<(), StoreError> {
        let mut encoded = Vec::with_capacity(batch.len());
        for obs in batch {
            encoded.push(obs.encode()?);
        }
        let mut offset = 0usize;
        while offset < encoded.len() {
            let space = self.segment_records - self.active_records;
            let take = space.min(encoded.len() - offset);
            // One write syscall per segment-contiguous run.
            let mut buf = Vec::with_capacity(take * RECORD_BYTES);
            for rec in &encoded[offset..offset + take] {
                buf.extend_from_slice(rec);
            }
            self.active.write_all(&buf)?;
            self.active_records += take;
            offset += take;
            if self.active_records >= self.segment_records {
                self.rotate()?;
            }
        }
        Ok(())
    }

    /// Seals the active segment (fsync) and starts the next one; the
    /// manifest is rewritten atomically so a crash between the two steps
    /// still recovers cleanly from the directory scan.
    ///
    /// Durability ordering: (1) the sealing segment's data reaches disk,
    /// (2) the new segment's inode *and* directory entry reach disk
    /// (`create_durable` fsyncs both — a plain create left the entry
    /// uncommitted, so a crash right after rotation could lose the new
    /// segment file entirely), (3) the manifest rename lands (atomic
    /// temp + rename, which fsyncs the directory again). Each step only
    /// becomes visible after everything it references is durable.
    fn rotate(&mut self) -> io::Result<()> {
        self.active.sync_all()?;
        let next_id = self.active_id + 1;
        let path = self.dir.join(segment_name(next_id));
        // A fresh segment must start empty; any file already at this id is
        // unreachable history (recovery deleted reachable ones).
        let active = create_durable(&path, true)?;
        atomic_write(
            &self.dir.join(MANIFEST),
            manifest_json(self.segment_records, next_id + 1, self.epoch).as_bytes(),
        )?;
        self.sealed_records += self.active_records as u64;
        self.active = active;
        self.active_id = next_id;
        self.active_records = 0;
        metrics::counter("store.segments_sealed").incr();
        Ok(())
    }

    /// Forces the active tail to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.active.sync_all()
    }

    /// The cluster epoch recorded in the manifest (0 until a failover
    /// ever bumps it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Persists a new cluster epoch into the manifest (atomic rename).
    /// Failover bumps this on the surviving node *before* it accepts its
    /// first write under the new epoch, so a crash during takeover never
    /// yields a log with new-epoch records under an old-epoch manifest.
    pub fn set_epoch(&mut self, epoch: u64) -> io::Result<()> {
        atomic_write(
            &self.dir.join(MANIFEST),
            manifest_json(self.segment_records, self.active_id + 1, epoch).as_bytes(),
        )?;
        self.epoch = epoch;
        Ok(())
    }

    /// Truncates the log directory to its first `keep` records: segments
    /// wholly past the boundary are deleted, the one straddling it is
    /// sheared to a record-aligned length. The records below `keep` are
    /// untouched, so a subsequent [`ObservationLog::open`] replays them
    /// cleanly. This is the follower rollback path (discarding a
    /// replicated tail the new epoch never adopted) — it must never run
    /// against a log something else holds open for appending.
    pub fn truncate_records(dir: &Path, keep: u64) -> io::Result<()> {
        let (segment_records, _epoch) = Self::load_or_init_manifest(dir, LogOptions::default())?;
        let cap = segment_records as u64;
        let mut ids: Vec<u64> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_id(&e.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();
        let mut changed = false;
        for id in ids {
            let first_record = id * cap;
            let path = dir.join(segment_name(id));
            if first_record >= keep {
                std::fs::remove_file(&path)?;
                changed = true;
                continue;
            }
            let keep_bytes = (keep - first_record).min(cap) * RECORD_BYTES as u64;
            if std::fs::metadata(&path)?.len() > keep_bytes {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(keep_bytes)?;
                f.sync_all()?;
                changed = true;
            }
        }
        if changed {
            sync_dir(dir)?;
        }
        Ok(())
    }

    /// Total records in the log (sealed + active).
    pub fn len(&self) -> u64 {
        self.sealed_records + self.active_records as u64
    }

    /// True when no record has ever been appended (or all were torn away).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// A read-only cursor-free view of a log directory that streams raw
/// encoded record bytes — the replication sender's read path.
///
/// The reader holds no file handles and no position: each call maps a
/// global record index to `(segment, offset)` using the manifest's
/// segment capacity (which is pinned for the life of the log — see
/// [`ObservationLog::open`]). Callers must only ask for records below
/// the writer's *published* length (the pipeline's log watch advances
/// after `write_all` returns), so reads observe fully-written bytes via
/// page-cache coherence without any fsync on this path.
#[derive(Debug, Clone)]
pub struct SegmentReader {
    dir: PathBuf,
    segment_records: usize,
}

impl SegmentReader {
    /// Opens a reader on `dir`, taking the segment capacity from the
    /// manifest so its offset math agrees with the writer's.
    pub fn open(dir: &Path) -> io::Result<SegmentReader> {
        let path = dir.join(MANIFEST);
        let text = std::fs::read_to_string(&path)?;
        let m = Json::parse(&text)
            .map_err(|e| bad_data(format!("manifest {}: {e}", path.display())))?;
        let segment_records = m
            .get("segment_records")
            .and_then(Json::as_f64)
            .map(|v| v as usize)
            .ok_or_else(|| bad_data("manifest is missing 'segment_records'".into()))?
            .max(1);
        Ok(SegmentReader {
            dir: dir.to_path_buf(),
            segment_records,
        })
    }

    /// Reads `count` records starting at global record index `start`,
    /// returning exactly `count * RECORD_BYTES` raw bytes. A short read
    /// is an error: the caller asked past the committed length.
    pub fn read_records(&self, start: u64, count: usize) -> io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(count * RECORD_BYTES);
        let mut index = start;
        let end = start + count as u64;
        while index < end {
            let seg_id = index / self.segment_records as u64;
            let offset = (index % self.segment_records as u64) as usize;
            let take = (self.segment_records - offset).min((end - index) as usize);
            let mut f = File::open(self.dir.join(segment_name(seg_id)))?;
            f.seek(SeekFrom::Start((offset * RECORD_BYTES) as u64))?;
            let at = out.len();
            out.resize(at + take * RECORD_BYTES, 0);
            f.read_exact(&mut out[at..])?;
            index += take as u64;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("perfpred-log-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn obs(i: u32) -> Observation {
        Observation {
            server: "AppServF".into(),
            clients: 100 + i,
            buy_pct: 0.0,
            mrt_ms: 50.0 + f64::from(i),
            throughput_rps: 0.14 * f64::from(100 + i),
            timestamp_us: u64::from(i) * 1_000,
        }
    }

    fn reopen(dir: &Path, opts: LogOptions) -> (ObservationLog, ReplayReport, Vec<Observation>) {
        let mut seen = Vec::new();
        let (log, report) = ObservationLog::open(dir, opts, |o| seen.push(o)).unwrap();
        (log, report, seen)
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = scratch("roundtrip");
        let (mut log, report, seen) = reopen(&dir, LogOptions::default());
        assert_eq!(report.records, 0);
        assert!(seen.is_empty());
        for i in 0..10 {
            log.append(&obs(i)).unwrap();
        }
        log.append_batch(&(10..25).map(obs).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(log.len(), 25);
        drop(log);

        let (log, report, seen) = reopen(&dir, LogOptions::default());
        assert_eq!(report.records, 25);
        assert_eq!(log.len(), 25);
        assert_eq!(seen.len(), 25);
        for (i, o) in seen.iter().enumerate() {
            assert_eq!(o, &obs(i as u32), "record {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_survive_reopen() {
        let dir = scratch("rotate");
        let opts = LogOptions { segment_records: 8 };
        let (mut log, _, _) = reopen(&dir, opts);
        log.append_batch(&(0..30).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        // 30 records at 8/segment: seg 0..2 full (sealed), seg 3 holds 6.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("seg-"))
            .collect();
        assert_eq!(names.len(), 4, "{names:?}");

        let (mut log, report, seen) = reopen(&dir, opts);
        assert_eq!(report.records, 30);
        assert_eq!(report.segments, 4);
        assert_eq!(seen.len(), 30);
        // Appending continues in the partial tail segment.
        log.append(&obs(30)).unwrap();
        assert_eq!(log.len(), 31);
        drop(log);
        let (_, report, seen) = reopen(&dir, opts);
        assert_eq!(report.records, 31);
        assert_eq!(seen.last().unwrap(), &obs(30));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = scratch("torn");
        let (mut log, _, _) = reopen(&dir, LogOptions::default());
        log.append_batch(&(0..5).map(obs).collect::<Vec<_>>())
            .unwrap();
        log.sync().unwrap();
        drop(log);
        // Tear the last record in half — a crash mid-write.
        let seg = dir.join(segment_name(0));
        let full = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(full - (RECORD_BYTES as u64) / 2).unwrap();
        drop(f);

        let (mut log, report, seen) = reopen(&dir, LogOptions::default());
        assert_eq!(report.records, 4, "replay stops at the last valid CRC");
        assert_eq!(report.torn_bytes, (RECORD_BYTES as u64) / 2);
        assert_eq!(seen.len(), 4);
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            4 * RECORD_BYTES as u64
        );
        // New appends land where the torn record used to start.
        log.append(&obs(99)).unwrap();
        drop(log);
        let (_, report, seen) = reopen(&dir, LogOptions::default());
        assert_eq!(report.records, 5);
        assert_eq!(seen[4], obs(99));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_sealed_segment_fails_replay_loudly() {
        let dir = scratch("midcorrupt");
        let opts = LogOptions { segment_records: 4 };
        let (mut log, _, _) = reopen(&dir, opts);
        log.append_batch(&(0..10).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        // Flip a byte inside record 1 of segment 0 — a *sealed* segment
        // with later segments present. This cannot be a crash tail (seals
        // are fsync'd before the next segment exists), so replay must
        // refuse rather than silently skip 9 of the 10 records.
        let seg = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[RECORD_BYTES + 7] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let err = ObservationLog::open(&dir, opts, |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("refusing"), "{err}");
        // Nothing was deleted or truncated: the evidence survives for an
        // operator to inspect.
        let segs: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("seg-"))
            .collect();
        assert_eq!(segs.len(), 3, "{segs:?}");
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            4 * RECORD_BYTES as u64
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_a_non_final_segment_fails_replay_loudly() {
        let dir = scratch("midtorn");
        let opts = LogOptions { segment_records: 4 };
        let (mut log, _, _) = reopen(&dir, opts);
        log.append_batch(&(0..10).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        // Shear segment 1 to a record-aligned 2 of 4 records: every
        // surviving record decodes cleanly, so only the capacity check —
        // not the CRC — can catch the hole.
        let seg = dir.join(segment_name(1));
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(2 * RECORD_BYTES as u64).unwrap();
        drop(f);

        let err = ObservationLog::open(&dir, opts, |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The same shear on the *final* segment is an ordinary crash
        // tail: truncate-and-continue, no error.
        std::fs::remove_dir_all(&dir).unwrap();
        let (mut log, _, _) = reopen(&dir, opts);
        log.append_batch(&(0..10).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        let tail = dir.join(segment_name(2));
        let f = OpenOptions::new().write(true).open(&tail).unwrap();
        f.set_len(RECORD_BYTES as u64).unwrap();
        drop(f);
        let (_, report, seen) = reopen(&dir, opts);
        assert_eq!(report.records, 9);
        assert_eq!(seen.len(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_records_shears_the_tail_and_replay_survives() {
        let dir = scratch("truncate");
        let opts = LogOptions { segment_records: 4 };
        let (mut log, _, _) = reopen(&dir, opts);
        log.append_batch(&(0..11).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        // Keep 6 of 11: seg 2 (records 8..) goes away entirely, seg 1 is
        // sheared to 2 of its 4 records, seg 0 is untouched.
        ObservationLog::truncate_records(&dir, 6).unwrap();
        let (mut log, report, seen) = reopen(&dir, opts);
        assert_eq!(report.records, 6);
        assert_eq!(seen.len(), 6);
        for (i, o) in seen.iter().enumerate() {
            assert_eq!(o, &obs(i as u32), "record {i}");
        }
        // Appending resumes exactly at the shear point.
        log.append(&obs(42)).unwrap();
        drop(log);
        let (_, report, seen) = reopen(&dir, opts);
        assert_eq!(report.records, 7);
        assert_eq!(seen[6], obs(42));
        // Truncating to a segment boundary and to zero both replay clean.
        ObservationLog::truncate_records(&dir, 4).unwrap();
        let (log, report, _) = reopen(&dir, opts);
        assert_eq!(report.records, 4);
        drop(log);
        ObservationLog::truncate_records(&dir, 0).unwrap();
        let (log, report, _) = reopen(&dir, opts);
        assert_eq!(report.records, 0);
        assert!(log.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_reader_streams_raw_bytes_across_segments() {
        let dir = scratch("reader");
        let opts = LogOptions { segment_records: 4 };
        let (mut log, _, _) = reopen(&dir, opts);
        log.append_batch(&(0..10).map(obs).collect::<Vec<_>>())
            .unwrap();

        let reader = SegmentReader::open(&dir).unwrap();
        // A range spanning two segment boundaries comes back byte-exact.
        let bytes = reader.read_records(2, 7).unwrap();
        assert_eq!(bytes.len(), 7 * RECORD_BYTES);
        for (i, chunk) in bytes.chunks(RECORD_BYTES).enumerate() {
            let rec = <&[u8; RECORD_BYTES]>::try_from(chunk).unwrap();
            assert_eq!(Observation::decode(rec).unwrap(), obs(2 + i as u32));
        }
        // The raw bytes equal the writer's encoding exactly.
        assert_eq!(&bytes[..RECORD_BYTES], obs(2).encode().unwrap().as_slice());
        // Asking past the committed length is an error, not a short read.
        assert!(reader.read_records(8, 5).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_persists_through_rotation_and_reopen() {
        let dir = scratch("epoch");
        let opts = LogOptions { segment_records: 4 };
        let (mut log, _, _) = reopen(&dir, opts);
        assert_eq!(log.epoch(), 0, "fresh logs start at epoch 0");
        log.set_epoch(3).unwrap();
        // Rotation rewrites the manifest; the epoch must ride along.
        log.append_batch(&(0..6).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        let (log, report, _) = reopen(&dir, opts);
        assert_eq!(log.epoch(), 3);
        assert_eq!(report.records, 6);
        // A pre-cluster manifest (no epoch field) reads back as epoch 0.
        let path = dir.join(MANIFEST);
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped = text.replace("  \"epoch\": 3,\n", "");
        assert_ne!(stripped, text, "test must actually strip the field");
        drop(log);
        std::fs::write(&path, stripped).unwrap();
        let (log, _, _) = reopen(&dir, opts);
        assert_eq!(log.epoch(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_pins_record_size_and_format() {
        let dir = scratch("manifest");
        let (log, _, _) = reopen(&dir, LogOptions::default());
        drop(log);
        let path = dir.join(MANIFEST);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"record_bytes\""), "{text}");
        // A manifest claiming a different record size must refuse to open.
        std::fs::write(&path, text.replace("64", "128")).unwrap();
        let err = ObservationLog::open(&dir, LogOptions::default(), |_| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn existing_segment_capacity_wins_over_new_options() {
        let dir = scratch("capacity");
        let (mut log, _, _) = reopen(&dir, LogOptions { segment_records: 4 });
        log.append_batch(&(0..6).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        // Reopen with a different capacity: the manifest's 4 still rules.
        let (mut log, report, _) = reopen(
            &dir,
            LogOptions {
                segment_records: 1024,
            },
        );
        assert_eq!(report.records, 6);
        log.append_batch(&(6..9).map(obs).collect::<Vec<_>>())
            .unwrap();
        drop(log);
        let (_, report, seen) = reopen(&dir, LogOptions::default());
        assert_eq!(report.records, 9);
        assert_eq!(seen.len(), 9);
        // 9 records at 4/segment = 3 segment files.
        assert_eq!(report.segments, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
