//! Incremental HYDRA refitting from streamed observations.
//!
//! The refitter folds each observation into a small fixed-size *anchor
//! grid* per server — running `(count, Σclients, Σmrt)` sums in a handful
//! of cells below and above the saturation transition region — plus
//! running least-squares sums for the clients→throughput gradient and a
//! running maximum per buy-percentage bucket for relationship 3. A refit
//! then rebuilds the HYDRA model from the cell *means* through the normal
//! [`HistoricalModel::builder`] path, pinning the gradient from the exact
//! running sums via [`HistoricalModelBuilder::gradient`].
//!
//! Two properties fall out of this design:
//!
//! * **Incremental ≡ batch.** Folding observations one at a time and then
//!   fitting produces bit-identical sums — and therefore bit-identical
//!   coefficients — to folding the same observations in one pass, because
//!   the state is nothing but order-independent-within-a-cell running
//!   sums accumulated in a single deterministic order.
//! * **Replay determinism.** The refitter's entire state is a pure
//!   function of the observation sequence; replaying a log through
//!   [`Refitter::fold`] reconstructs the exact model that was serving
//!   before a crash.
//!
//! Refits trigger two ways: every `refit_window` folded observations, or
//! early when *drift* is detected — the current fit's relative error over
//! a ring of recent typical observations exceeds `drift_threshold`,
//! meaning the live system no longer behaves like the data the model was
//! fitted on.

use crate::record::Observation;
use perfpred_core::{PerformanceModel, ServerArch, Workload};
use perfpred_hydra::{HistoricalModel, ServerObservations, TRANSITION_HIGH, TRANSITION_LOW};
use std::collections::BTreeMap;
use std::fmt;

/// Anchor cells per region (lower and upper each get this many).
const CELLS: usize = 4;
/// Upper-region cells span client fractions `[TRANSITION_HIGH, UPPER_SPAN)`
/// of the saturation point.
const UPPER_SPAN: f64 = 0.9;
/// Buy-percentage bucket width for relationship-3 points.
const BUY_BUCKET_PCT: f32 = 5.0;

/// Why a refit ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitTrigger {
    /// Initial model installed from a calibration dataset, not the log.
    Seed,
    /// The observation window filled.
    Window,
    /// Drift detection fired before the window filled.
    Drift,
}

impl RefitTrigger {
    /// Stable lowercase name for JSON/metrics.
    pub fn name(self) -> &'static str {
        match self {
            RefitTrigger::Seed => "seed",
            RefitTrigger::Window => "window",
            RefitTrigger::Drift => "drift",
        }
    }
}

impl fmt::Display for RefitTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs for [`Refitter`].
#[derive(Debug, Clone, Copy)]
pub struct RefitOptions {
    /// Observations folded between scheduled refits.
    pub refit_window: usize,
    /// Mean relative error over the drift ring that triggers an early
    /// refit. Non-finite or non-positive disables drift detection.
    pub drift_threshold: f64,
    /// Recent typical observations kept for drift scoring.
    pub drift_window: usize,
    /// Gradient assumed for locating the saturation point `n* = mx / m`
    /// while bucketing observations (the *fitted* gradient comes from the
    /// running sums, this one only anchors the grid). The default is the
    /// case study's nominal `1000 / 7020`.
    pub nominal_gradient: f64,
    /// Client think time handed to the model builder, ms.
    pub think_time_ms: f64,
}

impl Default for RefitOptions {
    fn default() -> Self {
        RefitOptions {
            refit_window: 128,
            drift_threshold: 0.25,
            drift_window: 64,
            nominal_gradient: 1_000.0 / 7_020.0,
            think_time_ms: 7_000.0,
        }
    }
}

/// One anchor cell: running sums of the observations that landed in it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Cell {
    count: u64,
    sum_clients: f64,
    sum_mrt: f64,
}

impl Cell {
    fn fold(&mut self, clients: f64, mrt: f64) {
        self.count += 1;
        self.sum_clients += clients;
        self.sum_mrt += mrt;
    }

    fn mean(&self) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        Some((self.sum_clients / n, self.sum_mrt / n))
    }
}

/// Per-server incremental state.
#[derive(Debug, Clone)]
struct ServerState {
    max_throughput_rps: f64,
    n_star: f64,
    lower: [Cell; CELLS],
    upper: [Cell; CELLS],
    /// Running least-squares sums for the gradient fit through the origin.
    grad_sum_nx: f64,
    grad_sum_nn: f64,
    /// Relationship-3 calibration: running max throughput per buy bucket.
    buy_max_rps: BTreeMap<u32, f64>,
    folded: u64,
}

impl ServerState {
    fn new(arch: &ServerArch, nominal_gradient: f64) -> ServerState {
        ServerState {
            max_throughput_rps: arch.max_throughput_rps,
            n_star: arch.max_throughput_rps / nominal_gradient,
            lower: [Cell::default(); CELLS],
            upper: [Cell::default(); CELLS],
            grad_sum_nx: 0.0,
            grad_sum_nn: 0.0,
            buy_max_rps: BTreeMap::new(),
            folded: 0,
        }
    }

    fn fold(&mut self, obs: &Observation) {
        self.folded += 1;
        let n = f64::from(obs.clients);
        let frac = n / self.n_star;
        if obs.buy_pct == 0.0 {
            // Anchor-grid cells only take typical-workload points — mixed
            // workloads change the MRT curve itself (relationship 3 covers
            // them below).
            if frac <= TRANSITION_LOW {
                let idx = ((frac / TRANSITION_LOW) * CELLS as f64) as usize;
                self.lower[idx.min(CELLS - 1)].fold(n, obs.mrt_ms);
            } else if frac >= TRANSITION_HIGH {
                let idx = (((frac - TRANSITION_HIGH) / UPPER_SPAN) * CELLS as f64) as usize;
                self.upper[idx.min(CELLS - 1)].fold(n, obs.mrt_ms);
            }
            // Points inside the transition region are logged but not
            // anchored: §4.2 fits the two equations outside it.
            if obs.throughput_rps > 0.0 && frac <= UPPER_SPAN {
                self.grad_sum_nx += n * obs.throughput_rps;
                self.grad_sum_nn += n * n;
            }
        } else if obs.throughput_rps > 0.0 && frac >= 1.0 {
            // A saturated mixed-workload point calibrates relationship 3:
            // max throughput as a function of buy percentage.
            let bucket = (obs.buy_pct / BUY_BUCKET_PCT).round() as u32;
            let entry = self.buy_max_rps.entry(bucket).or_insert(0.0);
            if obs.throughput_rps > *entry {
                *entry = obs.throughput_rps;
            }
        }
    }

    /// True once both equations have their two-point minimum (§4.2).
    fn established(&self) -> bool {
        self.lower.iter().filter(|c| c.count > 0).count() >= 2
            && self.upper.iter().filter(|c| c.count > 0).count() >= 2
    }

    fn observations(&self, name: &str) -> ServerObservations {
        let mut obs = ServerObservations::new(name, self.max_throughput_rps);
        for cell in &self.lower {
            if let Some((n, mrt)) = cell.mean() {
                obs = obs.with_lower(n, mrt);
            }
        }
        for cell in &self.upper {
            if let Some((n, mrt)) = cell.mean() {
                obs = obs.with_upper(n, mrt);
            }
        }
        obs
    }

    fn r3_points(&self) -> Vec<(f64, f64)> {
        self.buy_max_rps
            .iter()
            .map(|(&bucket, &rps)| (f64::from(bucket) * f64::from(BUY_BUCKET_PCT), rps))
            .collect()
    }
}

/// A view of one server's anchor grid, for tests and `GET /models`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorGrid {
    /// `(count, Σclients, Σmrt)` per lower-region cell.
    pub lower: Vec<(u64, f64, f64)>,
    /// `(count, Σclients, Σmrt)` per upper-region cell.
    pub upper: Vec<(u64, f64, f64)>,
    /// Running gradient sums `(Σ n·x, Σ n²)`.
    pub gradient_sums: (f64, f64),
}

/// The incremental refitter. Pure state machine: no I/O, no clocks — its
/// behaviour is a deterministic function of the folded sequence.
pub struct Refitter {
    opts: RefitOptions,
    servers: BTreeMap<String, ServerState>,
    folded: u64,
    skipped_unknown: u64,
    since_refit: usize,
    /// Ring of recent typical observations scored against the last fit.
    drift_ring: Vec<(String, u32, f64)>,
    drift_next: usize,
    last_fit: Option<HistoricalModel>,
}

impl Refitter {
    /// A refitter aware of `servers` (their benchmarked max throughputs
    /// anchor each grid). Observations naming unknown servers are counted
    /// and skipped.
    pub fn new(servers: &[ServerArch], opts: RefitOptions) -> Refitter {
        let servers = servers
            .iter()
            .map(|s| (s.name.clone(), ServerState::new(s, opts.nominal_gradient)))
            .collect();
        Refitter {
            opts,
            servers,
            folded: 0,
            skipped_unknown: 0,
            since_refit: 0,
            drift_ring: Vec::new(),
            drift_next: 0,
            last_fit: None,
        }
    }

    /// Installs an externally fitted model (e.g. the calibration-dataset
    /// seed) as the baseline for drift scoring.
    pub fn seed(&mut self, model: HistoricalModel) {
        self.last_fit = Some(model);
    }

    /// Folds one observation. Returns the trigger when this observation
    /// warrants a refit attempt — the caller then runs [`Refitter::fit`]
    /// and publishes on success.
    pub fn fold(&mut self, obs: &Observation) -> Option<RefitTrigger> {
        let Some(state) = self.servers.get_mut(&obs.server) else {
            self.skipped_unknown += 1;
            return None;
        };
        state.fold(obs);
        self.folded += 1;
        self.since_refit += 1;

        if obs.buy_pct == 0.0 {
            let sample = (obs.server.clone(), obs.clients, obs.mrt_ms);
            if self.drift_ring.len() < self.opts.drift_window.max(1) {
                self.drift_ring.push(sample);
            } else {
                self.drift_ring[self.drift_next] = sample;
                self.drift_next = (self.drift_next + 1) % self.drift_ring.len();
            }
        }

        if self.since_refit >= self.opts.refit_window.max(1) {
            self.since_refit = 0;
            return Some(RefitTrigger::Window);
        }
        if self.drifted() {
            self.since_refit = 0;
            return Some(RefitTrigger::Drift);
        }
        None
    }

    /// Drift score: mean relative error of the *refitter's own* last fit
    /// over the ring. Scoring against our own fit — never the registry —
    /// keeps replay a pure function of the log.
    fn drifted(&self) -> bool {
        if self.opts.drift_threshold <= 0.0 || !self.opts.drift_threshold.is_finite() {
            return false;
        }
        let Some(model) = &self.last_fit else {
            return false;
        };
        if self.drift_ring.len() < self.opts.drift_window.max(1) {
            return false;
        }
        let mut sum = 0.0;
        let mut scored = 0usize;
        for (server, clients, mrt) in &self.drift_ring {
            let Some(state) = self.servers.get(server) else {
                continue;
            };
            let arch = ServerArch::new(server.clone(), 1.0, state.max_throughput_rps);
            let Ok(p) = model.predict(&arch, &Workload::typical(*clients)) else {
                continue;
            };
            if p.mrt_ms.is_finite() && *mrt > 0.0 {
                sum += (p.mrt_ms - mrt).abs() / mrt;
                scored += 1;
            }
        }
        scored > 0 && sum / scored as f64 > self.opts.drift_threshold
    }

    /// Attempts a full fit from the current anchor grids. `None` until at
    /// least one server is established (two points per equation, §4.2);
    /// `Some` is the batch-equivalent HYDRA model.
    pub fn fit(&mut self) -> Option<HistoricalModel> {
        let mut builder = HistoricalModel::builder().think_time_ms(self.opts.think_time_ms);
        let mut any = false;
        let mut grad_nx = 0.0;
        let mut grad_nn = 0.0;
        let mut r3_best: Option<Vec<(f64, f64)>> = None;
        // BTreeMap iteration makes the assembly order deterministic.
        for (name, state) in &self.servers {
            if !state.established() {
                continue;
            }
            builder = builder.observations(state.observations(name));
            any = true;
            grad_nx += state.grad_sum_nx;
            grad_nn += state.grad_sum_nn;
            let r3 = state.r3_points();
            if r3.len() >= 2 && r3_best.as_ref().is_none_or(|b| r3.len() > b.len()) {
                r3_best = Some(r3);
            }
        }
        if !any {
            return None;
        }
        if grad_nn > 0.0 {
            builder = builder.gradient(grad_nx / grad_nn);
        }
        if let Some(points) = r3_best {
            builder = builder.r3_points(&points);
        }
        let model = builder.build().ok()?;
        self.last_fit = Some(model.clone());
        Some(model)
    }

    /// Observations folded (excluding unknown-server skips).
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Observations skipped because their server is not registered.
    pub fn skipped_unknown(&self) -> u64 {
        self.skipped_unknown
    }

    /// The last model this refitter fitted (or was seeded with).
    pub fn last_fit(&self) -> Option<&HistoricalModel> {
        self.last_fit.as_ref()
    }

    /// The raw anchor-grid sums for `server` — exact, not rounded — so
    /// tests can assert bit-identity between incremental and batch folds.
    pub fn anchor_grid(&self, server: &str) -> Option<AnchorGrid> {
        let state = self.servers.get(server)?;
        let cells = |cells: &[Cell; CELLS]| {
            cells
                .iter()
                .map(|c| (c.count, c.sum_clients, c.sum_mrt))
                .collect()
        };
        Some(AnchorGrid {
            lower: cells(&state.lower),
            upper: cells(&state.upper),
            gradient_sums: (state.grad_sum_nx, state.grad_sum_nn),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic MRT shaped like the paper's curves: exponential below
    /// saturation, linear above.
    fn mrt_at(n: f64, n_star: f64, scale: f64) -> f64 {
        let frac = n / n_star;
        if frac < 1.0 {
            scale * 20.0 * (1.8 * frac).exp()
        } else {
            scale * (7.0 * n / 1.3 - 6_000.0).max(100.0)
        }
    }

    fn trace(scale: f64, count: u32) -> Vec<Observation> {
        let n_star = 186.0 / (1_000.0 / 7_020.0);
        (0..count)
            .map(|i| {
                let frac = 0.15 + 1.45 * f64::from(i % 29) / 28.0;
                let n = (frac * n_star).round().max(1.0);
                let mut o = Observation::typical("AppServF", n as u32, mrt_at(n, n_star, scale));
                if frac <= 0.9 {
                    o.throughput_rps = (1_000.0 / 7_020.0) * n;
                }
                o.timestamp_us = u64::from(i);
                o
            })
            .collect()
    }

    #[test]
    fn window_trigger_fires_every_refit_window_folds() {
        let mut r = Refitter::new(
            &[ServerArch::app_serv_f()],
            RefitOptions {
                refit_window: 10,
                drift_threshold: 0.0,
                ..RefitOptions::default()
            },
        );
        let mut triggers = 0;
        for obs in trace(1.0, 35) {
            if r.fold(&obs).is_some() {
                triggers += 1;
            }
        }
        assert_eq!(triggers, 3);
        assert_eq!(r.folded(), 35);
    }

    #[test]
    fn fit_requires_an_established_server() {
        let mut r = Refitter::new(&[ServerArch::app_serv_f()], RefitOptions::default());
        assert!(r.fit().is_none(), "no data, no model");
        // Only lower-region points: still not established.
        for obs in trace(1.0, 200)
            .into_iter()
            .filter(|o| f64::from(o.clients) < 0.5 * 186.0 / (1_000.0 / 7_020.0))
        {
            r.fold(&obs);
        }
        assert!(r.fit().is_none());
        // The full sweep establishes it.
        for obs in trace(1.0, 60) {
            r.fold(&obs);
        }
        let model = r.fit().expect("established after a full sweep");
        assert!(model.gradient() > 0.0);
    }

    #[test]
    fn unknown_servers_are_counted_and_skipped() {
        let mut r = Refitter::new(&[ServerArch::app_serv_f()], RefitOptions::default());
        assert!(r
            .fold(&Observation::typical("NoSuchBox", 100, 50.0))
            .is_none());
        assert_eq!(r.folded(), 0);
        assert_eq!(r.skipped_unknown(), 1);
    }

    #[test]
    fn drift_fires_when_the_workload_shifts() {
        let opts = RefitOptions {
            refit_window: 1_000_000, // never fire on the window
            drift_threshold: 0.25,
            drift_window: 16,
            ..RefitOptions::default()
        };
        let mut r = Refitter::new(&[ServerArch::app_serv_f()], opts);
        for obs in trace(1.0, 60) {
            assert!(r.fold(&obs).is_none());
        }
        r.fit().expect("baseline fit");
        // Same operating points, 60 % slower: relative error ≈ 0.6.
        let mut fired = None;
        for obs in trace(1.6, 60) {
            if let Some(t) = r.fold(&obs) {
                fired = Some(t);
                break;
            }
        }
        assert_eq!(fired, Some(RefitTrigger::Drift));
    }

    #[test]
    fn drift_never_fires_without_a_baseline_fit() {
        let opts = RefitOptions {
            refit_window: 1_000_000,
            drift_threshold: 0.01,
            drift_window: 4,
            ..RefitOptions::default()
        };
        let mut r = Refitter::new(&[ServerArch::app_serv_f()], opts);
        for obs in trace(1.0, 100) {
            assert!(r.fold(&obs).is_none(), "no last fit, no drift");
        }
    }

    #[test]
    fn incremental_fold_matches_one_shot_fold_bit_for_bit() {
        let opts = RefitOptions::default();
        let data = trace(1.0, 150);

        let mut one_shot = Refitter::new(&[ServerArch::app_serv_f()], opts);
        for obs in &data {
            one_shot.fold(obs);
        }
        // Interleave fits between folds — fitting must not perturb state.
        let mut incremental = Refitter::new(&[ServerArch::app_serv_f()], opts);
        for (i, obs) in data.iter().enumerate() {
            incremental.fold(obs);
            if i % 17 == 0 {
                let _ = incremental.fit();
            }
        }
        let a = one_shot.anchor_grid("AppServF").unwrap();
        let b = incremental.anchor_grid("AppServF").unwrap();
        assert_eq!(a, b, "anchor sums must be bit-identical");
        let ma = one_shot.fit().unwrap();
        let mb = incremental.fit().unwrap();
        assert_eq!(
            perfpred_hydra::persist::serialize(&ma),
            perfpred_hydra::persist::serialize(&mb)
        );
    }

    #[test]
    fn mixed_workload_points_feed_relationship_3() {
        let n_star = 186.0 / (1_000.0 / 7_020.0);
        let mut r = Refitter::new(&[ServerArch::app_serv_f()], RefitOptions::default());
        for obs in trace(1.0, 60) {
            r.fold(&obs);
        }
        // Saturated mixed-workload samples at 0 % / 10 % / 20 % buys.
        for (buy, mx) in [(0.0f32, 186.0), (10.0, 160.0), (20.0, 140.0)] {
            let mut o = Observation::typical("AppServF", (1.2 * n_star) as u32, 900.0);
            o.buy_pct = buy;
            o.throughput_rps = mx;
            if buy == 0.0 {
                continue; // typical points go to the grid, not R3
            }
            r.fold(&o);
        }
        let model = r.fit().unwrap();
        // R3 needs ≥ 2 buckets; 10 % and 20 % qualify.
        assert!(model.r3().is_some());
    }
}
