//! Versioned model registry with lock-free hot swap.
//!
//! The refitter publishes each newly fitted [`HistoricalModel`] as an
//! immutable [`ModelVersion`]; the serve daemon's request threads read the
//! *current* version through a single atomic pointer load — no lock, no
//! allocation on the miss-free path — so a refit never stalls in-flight
//! predictions and a prediction never observes a half-swapped model.
//!
//! Safety model: `current` stores the raw pointer of an `Arc` that is
//! *also* kept alive in the `versions` vec for the registry's whole
//! lifetime, so readers can always revive a usable `Arc` from the pointer
//! with `Arc::increment_strong_count`. Old versions are retained on
//! purpose — they back `GET /models` and let cached predictions keyed by
//! an older version stay attributable.

use crate::refit::RefitTrigger;
use perfpred_core::{PerformanceModel, PredictError, Prediction, ServerArch, Workload};
use perfpred_hydra::HistoricalModel;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// One published model generation.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic version number, starting at 1.
    pub version: u64,
    /// The fitted model.
    pub model: HistoricalModel,
    /// Observations folded into the refitter when this fit was produced.
    pub observations: u64,
    /// Why the refit ran.
    pub trigger: RefitTrigger,
}

/// The registry: every published [`ModelVersion`] plus an atomically
/// swappable pointer to the current one.
pub struct ModelRegistry {
    current: AtomicPtr<ModelVersion>,
    versions: Mutex<Vec<Arc<ModelVersion>>>,
    /// Versions retired by [`rewind`](Self::rewind), kept alive for the
    /// registry's lifetime so the raw-pointer safety contract of
    /// [`current`](Self::current) holds across a rewind: a reader that
    /// loaded the pointer just before the rewind can still revive it.
    retired: Mutex<Vec<Arc<ModelVersion>>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry (version 0: nothing fitted yet).
    pub fn new() -> ModelRegistry {
        ModelRegistry {
            current: AtomicPtr::new(std::ptr::null_mut()),
            versions: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Retires every published version so the history can be rebuilt from
    /// scratch — the follower rollback path, where a divergent log tail is
    /// discarded and the surviving prefix replayed. Version numbering
    /// restarts at 1, which is exactly what makes the rebuilt registry
    /// byte-identical to one that never saw the dropped tail. `current`
    /// keeps serving the last retired version until the rebuild's first
    /// publish, so reads never hit an empty registry mid-rollback; retired
    /// entries stay alive for the registry's lifetime (see the safety
    /// model above).
    pub fn rewind(&self) {
        let mut versions = self.versions.lock().unwrap();
        self.retired.lock().unwrap().append(&mut versions);
    }

    /// Publishes a fitted model as the next version and hot-swaps it in.
    /// Returns the version number assigned.
    pub fn publish(&self, model: HistoricalModel, observations: u64, trigger: RefitTrigger) -> u64 {
        let mut versions = self.versions.lock().unwrap();
        let version = versions.len() as u64 + 1;
        let entry = Arc::new(ModelVersion {
            version,
            model,
            observations,
            trigger,
        });
        let ptr = Arc::as_ptr(&entry) as *mut ModelVersion;
        versions.push(entry);
        // Publish after the vec holds its keep-alive reference. Release
        // pairs with the Acquire in `current()` so readers see the fully
        // initialised ModelVersion behind the pointer.
        self.current.store(ptr, Ordering::Release);
        version
    }

    /// The current model version, lock-free. `None` until the first
    /// [`publish`](Self::publish).
    pub fn current(&self) -> Option<Arc<ModelVersion>> {
        let ptr = self.current.load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an Arc that the
        // `versions` vec keeps alive (entries are never removed), so the
        // strong count is ≥ 1 for the registry's lifetime and reviving a
        // second Arc from the pointer is sound.
        unsafe {
            Arc::increment_strong_count(ptr);
            Some(Arc::from_raw(ptr))
        }
    }

    /// The current version number; 0 while the registry is empty.
    pub fn version(&self) -> u64 {
        self.current().map_or(0, |v| v.version)
    }

    /// Snapshot of every published version, oldest first.
    pub fn versions(&self) -> Vec<Arc<ModelVersion>> {
        self.versions.lock().unwrap().clone()
    }
}

/// A [`PerformanceModel`] view over a registry: every call delegates to
/// whatever model is current at that instant, which is what lets the serve
/// daemon's prediction cache and routing stay oblivious to refits.
#[derive(Clone)]
pub struct RegistryModel {
    registry: Arc<ModelRegistry>,
}

impl RegistryModel {
    /// Wraps a shared registry.
    pub fn new(registry: Arc<ModelRegistry>) -> RegistryModel {
        RegistryModel { registry }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    fn current(&self) -> Result<Arc<ModelVersion>, PredictError> {
        self.registry.current().ok_or_else(|| {
            PredictError::Calibration(
                "no historical model fitted yet: feed observations to /observe \
                 or seed the store from a calibration dataset"
                    .into(),
            )
        })
    }
}

impl PerformanceModel for RegistryModel {
    fn method_name(&self) -> &str {
        "historical"
    }

    fn predict(
        &self,
        server: &ServerArch,
        workload: &Workload,
    ) -> Result<Prediction, PredictError> {
        self.current()?.model.predict(server, workload)
    }

    fn max_clients(
        &self,
        server: &ServerArch,
        template: &Workload,
        rt_goal_ms: f64,
    ) -> Result<u32, PredictError> {
        self.current()?
            .model
            .max_clients(server, template, rt_goal_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_hydra::ServerObservations;

    fn fitted(c_low: f64) -> HistoricalModel {
        let mx = 186.0;
        let n_star = mx / 0.1424;
        HistoricalModel::builder()
            .observations(
                ServerObservations::new("AppServF", mx)
                    .with_lower(0.15 * n_star, c_low)
                    .with_lower(0.60 * n_star, c_low * 1.4)
                    .with_upper(1.20 * n_star, 1_000.0 / mx * 1.20 * n_star - 7_000.0)
                    .with_upper(1.55 * n_star, 1_000.0 / mx * 1.55 * n_star - 7_000.0),
            )
            .gradient(0.1424)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_registry_reports_version_zero_and_calibration_error() {
        let reg = Arc::new(ModelRegistry::new());
        assert_eq!(reg.version(), 0);
        assert!(reg.current().is_none());
        let model = RegistryModel::new(reg);
        let err = model
            .predict(&ServerArch::app_serv_f(), &Workload::typical(100))
            .unwrap_err();
        assert!(matches!(err, PredictError::Calibration(_)), "{err}");
    }

    #[test]
    fn publish_bumps_version_and_swaps_the_served_model() {
        let reg = Arc::new(ModelRegistry::new());
        let model = RegistryModel::new(Arc::clone(&reg));
        let server = ServerArch::app_serv_f();
        let wl = Workload::typical(200);

        assert_eq!(reg.publish(fitted(20.0), 10, RefitTrigger::Window), 1);
        let before = model.predict(&server, &wl).unwrap().mrt_ms;

        assert_eq!(reg.publish(fitted(32.0), 20, RefitTrigger::Drift), 2);
        assert_eq!(reg.version(), 2);
        let after = model.predict(&server, &wl).unwrap().mrt_ms;
        assert!(
            after > before,
            "slower fit must serve slower predictions: {before} vs {after}"
        );

        let versions = reg.versions();
        assert_eq!(versions.len(), 2);
        assert_eq!(versions[0].version, 1);
        assert_eq!(versions[0].trigger, RefitTrigger::Window);
        assert_eq!(versions[1].trigger, RefitTrigger::Drift);
    }

    #[test]
    fn readers_holding_an_old_version_survive_a_swap() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(fitted(20.0), 10, RefitTrigger::Window);
        let held = reg.current().unwrap();
        reg.publish(fitted(32.0), 20, RefitTrigger::Window);
        // The old Arc keeps predicting from the old fit.
        let server = ServerArch::app_serv_f();
        let wl = Workload::typical(200);
        let old = held.model.predict(&server, &wl).unwrap().mrt_ms;
        let new = reg
            .current()
            .unwrap()
            .model
            .predict(&server, &wl)
            .unwrap()
            .mrt_ms;
        assert!(old < new);
        assert_eq!(held.version, 1);
    }

    #[test]
    fn rewind_restarts_numbering_without_breaking_live_readers() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(fitted(20.0), 10, RefitTrigger::Window);
        reg.publish(fitted(32.0), 20, RefitTrigger::Drift);
        let held = reg.current().unwrap();
        reg.rewind();
        // The retired current keeps serving until the rebuild publishes.
        assert_eq!(reg.version(), 2);
        assert!(reg.versions().is_empty());
        assert_eq!(held.version, 2);
        let server = ServerArch::app_serv_f();
        let wl = Workload::typical(200);
        assert!(held.model.predict(&server, &wl).is_ok());
        // Rebuilding restarts numbering at 1 — the property that makes a
        // rolled-back follower's registry byte-identical to the primary's.
        assert_eq!(reg.publish(fitted(20.0), 10, RefitTrigger::Window), 1);
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.versions().len(), 1);
    }

    #[test]
    fn concurrent_readers_and_publishers_do_not_tear() {
        let reg = Arc::new(ModelRegistry::new());
        reg.publish(fitted(20.0), 1, RefitTrigger::Seed);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let model = RegistryModel::new(reg);
                let server = ServerArch::app_serv_f();
                let wl = Workload::typical(150);
                let mut last = 0.0;
                while !stop.load(Ordering::Relaxed) {
                    let p = model.predict(&server, &wl).unwrap();
                    assert!(p.mrt_ms.is_finite() && p.mrt_ms > 0.0);
                    last = p.mrt_ms;
                }
                last
            }));
        }
        for i in 0..50 {
            reg.publish(fitted(20.0 + i as f64), i, RefitTrigger::Window);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.version(), 51);
    }
}
