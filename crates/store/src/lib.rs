//! perfpred-store: durable observation intake with continuous HYDRA
//! refitting and hot model reload.
//!
//! The paper's historical method fits its relationships once, offline,
//! from a calibration dataset. This crate closes the loop for a *running*
//! system: measured operating points stream in (from the load generator
//! or the live application), land in a crash-safe append-only log, fold
//! incrementally into the HYDRA anchor grid, and periodically — on a full
//! window or on detected drift — produce a freshly calibrated
//! [`HistoricalModel`](perfpred_hydra::HistoricalModel) that is
//! hot-swapped into a versioned registry the serve daemon reads lock-free.
//!
//! Layers, bottom to top:
//!
//! * [`record`] — the fixed 64-byte CRC-framed observation record.
//! * [`log`] — segmented append-only log with atomic manifest updates and
//!   torn-tail recovery.
//! * [`refit`] — the incremental refitter: anchor-grid running sums,
//!   window + drift triggers, batch-equivalent fits.
//! * [`registry`] — versioned models behind one atomic pointer;
//!   [`RegistryModel`] adapts the registry to
//!   [`PerformanceModel`](perfpred_core::PerformanceModel).
//! * [`pipeline`] — [`ObservationStore`], the assembled intake: one lock
//!   orders appends and folds identically, which makes restart replay
//!   rebuild the serving model bit for bit from the log alone.

pub mod log;
pub mod pipeline;
pub mod record;
pub mod refit;
pub mod registry;

pub use log::{LogOptions, ObservationLog, ReplayReport, SegmentReader};
pub use pipeline::{IngestOutcome, LogWatch, ObservationStore, RefitEvent};
pub use record::{crc32, Observation, StoreError, RECORD_BYTES, SERVER_NAME_BYTES};
pub use refit::{AnchorGrid, RefitOptions, RefitTrigger, Refitter};
pub use registry::{ModelRegistry, ModelVersion, RegistryModel};
