//! The fixed-size binary observation record and its CRC framing.
//!
//! One record is one measured operating point: which server architecture
//! handled the workload, how many closed-loop clients were attached, the
//! buy percentage of the mix, the mean response time observed, the
//! throughput (when measured) and a caller-supplied timestamp. Records
//! are exactly [`RECORD_BYTES`] long so a log segment is a flat array —
//! offset arithmetic replaces framing, and a torn tail is detectable as
//! `len % RECORD_BYTES != 0` even before the CRC check runs.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//!      0    24  server name, UTF-8, zero-padded
//!     24     4  clients (u32)
//!     28     4  buy percentage (f32)
//!     32     8  mean response time, ms (f64)
//!     40     8  throughput, req/s (f64; 0 = not measured)
//!     48     8  timestamp, µs since the UNIX epoch (u64)
//!     56     4  reserved (must be 0)
//!     60     4  CRC-32 (IEEE) of bytes 0..60
//! ```

use std::fmt;

/// Size of one encoded observation record.
pub const RECORD_BYTES: usize = 64;
/// Bytes reserved for the server name (zero-padded UTF-8).
pub const SERVER_NAME_BYTES: usize = 24;

/// Errors raised by the observation store.
#[derive(Debug)]
pub enum StoreError {
    /// An observation failed validation before anything was written.
    InvalidObservation(String),
    /// The underlying log I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidObservation(msg) => write!(f, "invalid observation: {msg}"),
            StoreError::Io(e) => write!(f, "observation log I/O: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// One measured `(server, client count, mean response time)` sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Server architecture name (≤ [`SERVER_NAME_BYTES`] UTF-8 bytes).
    pub server: String,
    /// Closed-loop clients attached when the sample was taken.
    pub clients: u32,
    /// Buy percentage of the workload mix, `[0, 100]`.
    pub buy_pct: f32,
    /// Measured mean response time, ms.
    pub mrt_ms: f64,
    /// Measured throughput, req/s; `0.0` when not measured.
    pub throughput_rps: f64,
    /// Sample timestamp, microseconds since the UNIX epoch.
    pub timestamp_us: u64,
}

impl Observation {
    /// A typical-workload (0 % buy) observation without throughput.
    pub fn typical(server: impl Into<String>, clients: u32, mrt_ms: f64) -> Observation {
        Observation {
            server: server.into(),
            clients,
            buy_pct: 0.0,
            mrt_ms,
            throughput_rps: 0.0,
            timestamp_us: 0,
        }
    }

    /// Validates the fields the binary layout (and the refitter) rely on.
    pub fn validate(&self) -> Result<(), StoreError> {
        let err = |msg: String| Err(StoreError::InvalidObservation(msg));
        if self.server.is_empty() {
            return err("server name is empty".into());
        }
        if self.server.len() > SERVER_NAME_BYTES {
            return err(format!(
                "server name '{}' exceeds {SERVER_NAME_BYTES} bytes",
                self.server
            ));
        }
        if self.server.as_bytes().contains(&0) {
            return err("server name contains a NUL byte".into());
        }
        if self.clients == 0 {
            return err("clients must be at least 1".into());
        }
        if !self.mrt_ms.is_finite() || self.mrt_ms <= 0.0 {
            return err(format!(
                "mrt_ms must be finite and positive, got {}",
                self.mrt_ms
            ));
        }
        if !self.throughput_rps.is_finite() || self.throughput_rps < 0.0 {
            return err(format!(
                "throughput_rps must be finite and non-negative, got {}",
                self.throughput_rps
            ));
        }
        if !self.buy_pct.is_finite() || !(0.0..=100.0).contains(&self.buy_pct) {
            return err(format!("buy_pct must be in [0, 100], got {}", self.buy_pct));
        }
        Ok(())
    }

    /// Encodes into the fixed binary layout, CRC included.
    pub fn encode(&self) -> Result<[u8; RECORD_BYTES], StoreError> {
        self.validate()?;
        let mut buf = [0u8; RECORD_BYTES];
        buf[..self.server.len()].copy_from_slice(self.server.as_bytes());
        buf[24..28].copy_from_slice(&self.clients.to_le_bytes());
        buf[28..32].copy_from_slice(&self.buy_pct.to_le_bytes());
        buf[32..40].copy_from_slice(&self.mrt_ms.to_le_bytes());
        buf[40..48].copy_from_slice(&self.throughput_rps.to_le_bytes());
        buf[48..56].copy_from_slice(&self.timestamp_us.to_le_bytes());
        // bytes 56..60 reserved, zero
        let crc = crc32(&buf[..RECORD_BYTES - 4]);
        buf[60..].copy_from_slice(&crc.to_le_bytes());
        Ok(buf)
    }

    /// Decodes one record, verifying the CRC. `None` means the bytes are
    /// not a valid record (torn write, corruption, or preallocated zeros)
    /// — replay treats that as the end of the log.
    pub fn decode(buf: &[u8; RECORD_BYTES]) -> Option<Observation> {
        let stored = u32::from_le_bytes(buf[60..].try_into().unwrap());
        if crc32(&buf[..RECORD_BYTES - 4]) != stored {
            return None;
        }
        let name_len = buf[..SERVER_NAME_BYTES]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(SERVER_NAME_BYTES);
        let server = std::str::from_utf8(&buf[..name_len]).ok()?.to_string();
        let obs = Observation {
            server,
            clients: u32::from_le_bytes(buf[24..28].try_into().unwrap()),
            buy_pct: f32::from_le_bytes(buf[28..32].try_into().unwrap()),
            mrt_ms: f64::from_le_bytes(buf[32..40].try_into().unwrap()),
            throughput_rps: f64::from_le_bytes(buf[40..48].try_into().unwrap()),
            timestamp_us: u64::from_le_bytes(buf[48..56].try_into().unwrap()),
        };
        obs.validate().ok()?;
        Some(obs)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Observation {
        Observation {
            server: "AppServF".into(),
            clients: 420,
            buy_pct: 12.5,
            mrt_ms: 96.25,
            throughput_rps: 59.8,
            timestamp_us: 1_722_000_000_000_000,
        }
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let obs = sample();
        let buf = obs.encode().unwrap();
        let back = Observation::decode(&buf).unwrap();
        assert_eq!(back.server, obs.server);
        assert_eq!(back.clients, obs.clients);
        assert_eq!(back.buy_pct.to_bits(), obs.buy_pct.to_bits());
        assert_eq!(back.mrt_ms.to_bits(), obs.mrt_ms.to_bits());
        assert_eq!(back.throughput_rps.to_bits(), obs.throughput_rps.to_bits());
        assert_eq!(back.timestamp_us, obs.timestamp_us);
    }

    #[test]
    fn any_flipped_bit_fails_the_crc() {
        let buf = sample().encode().unwrap();
        for byte in 0..RECORD_BYTES {
            let mut corrupt = buf;
            corrupt[byte] ^= 0x10;
            assert!(
                Observation::decode(&corrupt).is_none(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn zero_filled_block_is_not_a_record() {
        assert!(Observation::decode(&[0u8; RECORD_BYTES]).is_none());
    }

    #[test]
    fn validation_rejects_malformed_observations() {
        let ok = sample();
        assert!(ok.validate().is_ok());
        let mut o = sample();
        o.server = String::new();
        assert!(o.validate().is_err());
        let mut o = sample();
        o.server = "x".repeat(SERVER_NAME_BYTES + 1);
        assert!(o.encode().is_err());
        let mut o = sample();
        o.clients = 0;
        assert!(o.validate().is_err());
        let mut o = sample();
        o.mrt_ms = f64::NAN;
        assert!(o.validate().is_err());
        let mut o = sample();
        o.mrt_ms = -5.0;
        assert!(o.validate().is_err());
        let mut o = sample();
        o.throughput_rps = -1.0;
        assert!(o.validate().is_err());
        let mut o = sample();
        o.buy_pct = 120.0;
        assert!(o.validate().is_err());
    }
}
