//! The assembled observation store: log + refitter + registry.
//!
//! [`ObservationStore`] is the single entry point the serve daemon uses.
//! One mutex guards *both* the log and the refitter so the durable append
//! order is exactly the fold order — the property that makes replay after
//! a restart reconstruct the serving model bit for bit. The registry hot
//! swap happens inside the same critical section (publishing is cheap:
//! one `Arc` push and one atomic store), while readers stay lock-free
//! throughout via [`ModelRegistry::current`].

use crate::log::{LogOptions, ObservationLog, ReplayReport};
use crate::record::{Observation, StoreError};
use crate::refit::{RefitOptions, RefitTrigger, Refitter};
use crate::registry::ModelRegistry;
use perfpred_core::faults::{self, FaultPlan, FaultSite};
use perfpred_core::{metrics, metrics::names, ServerArch};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A watchable record counter: the replication sender parks on this
/// instead of polling the log. [`ObservationStore::ingest`] advances it
/// (outside the store's main mutex) after every durable append.
#[derive(Debug, Default)]
pub struct LogWatch {
    len: Mutex<u64>,
    grew: Condvar,
}

impl LogWatch {
    /// Publishes a new log length (monotonic; stale advances are ignored).
    pub fn advance(&self, len: u64) {
        let mut cur = self.len.lock().unwrap();
        if len > *cur {
            *cur = len;
            self.grew.notify_all();
        }
    }

    /// The last published length.
    #[allow(clippy::len_without_is_empty)] // a counter, not a container
    pub fn len(&self) -> u64 {
        *self.len.lock().unwrap()
    }

    /// Forces the published length to exactly `len`, downward included —
    /// only the follower rollback path uses this, on a node that is not
    /// streaming to anyone (a follower's hub answers not-primary before
    /// ever parking on the watch).
    pub fn reset(&self, len: u64) {
        let mut cur = self.len.lock().unwrap();
        *cur = len;
        self.grew.notify_all();
    }

    /// Blocks until the published length exceeds `n` (returning the new
    /// length) or `timeout` elapses (returning the current one). Senders
    /// use the timeout return to emit heartbeats on an idle log.
    pub fn wait_beyond(&self, n: u64, timeout: Duration) -> u64 {
        let guard = self.len.lock().unwrap();
        let (guard, _) = self
            .grew
            .wait_timeout_while(guard, timeout, |len| *len <= n)
            .unwrap();
        *guard
    }
}

/// One refit that happened during an ingest call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefitEvent {
    /// Version number the new model was published under.
    pub version: u64,
    /// What triggered it.
    pub trigger: RefitTrigger,
}

/// What an [`ObservationStore::ingest`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Observations accepted (validated, logged, folded).
    pub accepted: u64,
    /// Refits published while folding this batch, in order.
    pub refits: Vec<RefitEvent>,
}

struct Inner {
    /// `None` for a purely in-memory store (tests, `--store-dir` unset).
    log: Option<ObservationLog>,
    refitter: Refitter,
    /// Construction parameters, retained so [`ObservationStore::rollback_to`]
    /// can rebuild a fresh refitter over the surviving log prefix.
    servers: Vec<ServerArch>,
    refit_opts: RefitOptions,
}

/// Durable observation intake with continuous refit and hot model reload.
pub struct ObservationStore {
    inner: Mutex<Inner>,
    registry: Arc<ModelRegistry>,
    watch: Arc<LogWatch>,
    /// Captured once at construction (not re-read per call) so a test's
    /// store keeps its injected faults even when another test in the same
    /// binary swaps the process-global plan.
    faults: Option<Arc<FaultPlan>>,
}

impl ObservationStore {
    /// An in-memory store: observations fold into the refitter but nothing
    /// is persisted.
    pub fn in_memory(servers: &[ServerArch], opts: RefitOptions) -> ObservationStore {
        ObservationStore {
            inner: Mutex::new(Inner {
                log: None,
                refitter: Refitter::new(servers, opts),
                servers: servers.to_vec(),
                refit_opts: opts,
            }),
            registry: Arc::new(ModelRegistry::new()),
            watch: Arc::new(LogWatch::default()),
            faults: faults::active(),
        }
    }

    /// Opens (creating if needed) the durable store in `dir`, replaying
    /// the log through the refit pipeline so the registry comes back up
    /// holding exactly the model the log justifies. Returns the store and
    /// what recovery found.
    pub fn open(
        dir: &Path,
        log_opts: LogOptions,
        servers: &[ServerArch],
        refit_opts: RefitOptions,
    ) -> Result<(ObservationStore, ReplayReport), StoreError> {
        let mut refitter = Refitter::new(servers, refit_opts);
        let registry = Arc::new(ModelRegistry::new());
        let mut replayed = 0u64;
        let (log, report) = ObservationLog::open(dir, log_opts, |obs| {
            // Replay runs the exact ingest fold path: same triggers, same
            // publishes, same version numbering.
            if let Some(trigger) = refitter.fold(&obs) {
                if let Some(model) = refitter.fit() {
                    registry.publish(model, refitter.folded(), trigger);
                }
            }
            replayed += 1;
        })?;
        metrics::counter(names::STORE_OBSERVATIONS_TOTAL).add(replayed);
        let watch = Arc::new(LogWatch::default());
        watch.advance(log.len());
        Ok((
            ObservationStore {
                inner: Mutex::new(Inner {
                    log: Some(log),
                    refitter,
                    servers: servers.to_vec(),
                    refit_opts,
                }),
                registry,
                watch,
                faults: faults::active(),
            },
            report,
        ))
    }

    /// Replaces the store's captured fault plan — how chaos tests arm a
    /// specific store instance without touching the process-global plan
    /// other tests in the same binary might be reading.
    pub fn with_faults(mut self, plan: Option<Arc<FaultPlan>>) -> ObservationStore {
        self.faults = plan;
        self
    }

    /// The shared registry (hand this to the serve daemon's model host).
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// Seeds the registry with an externally calibrated model — used when
    /// the daemon starts in calibrated mode so predictions work before the
    /// first refit. Only applies while the registry is still empty, so a
    /// replayed log always wins over the seed.
    pub fn seed_if_empty(&self, model: perfpred_hydra::HistoricalModel) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap();
        if self.registry.version() != 0 {
            return None;
        }
        inner.refitter.seed(model.clone());
        Some(self.registry.publish(model, 0, RefitTrigger::Seed))
    }

    /// Validates, logs and folds a batch of observations, publishing any
    /// refits it triggers. All-or-nothing on validation: one bad
    /// observation rejects the whole batch before anything is written.
    pub fn ingest(&self, batch: &[Observation]) -> Result<IngestOutcome, StoreError> {
        for obs in batch {
            obs.validate()?;
        }
        let mut inner = self.inner.lock().unwrap();
        // Injected I/O failure, placed *before* the append so a fired
        // fault fails the batch atomically: nothing reaches the log and
        // nothing folds into the refitter, exactly like a real write
        // error surfaced by append_batch. Recovery therefore replays a
        // state byte-identical to one where the batch never arrived.
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.fires(FaultSite::StoreIoErr))
        {
            metrics::counter(names::STORE_INJECTED_IO_ERRORS_TOTAL).incr();
            return Err(StoreError::Io(std::io::Error::other(
                "injected store I/O fault",
            )));
        }
        let mut appended_len = None;
        if let Some(log) = inner.log.as_mut() {
            log.append_batch(batch)?;
            appended_len = Some(log.len());
        }
        let mut outcome = IngestOutcome {
            accepted: batch.len() as u64,
            refits: Vec::new(),
        };
        for obs in batch {
            if let Some(trigger) = inner.refitter.fold(obs) {
                if let Some(model) = inner.refitter.fit() {
                    let observations = inner.refitter.folded();
                    let version = self.registry.publish(model, observations, trigger);
                    outcome.refits.push(RefitEvent { version, trigger });
                }
            }
        }
        drop(inner);
        if let Some(len) = appended_len {
            self.watch.advance(len);
        }
        metrics::counter(names::STORE_OBSERVATIONS_TOTAL).add(outcome.accepted);
        if !outcome.refits.is_empty() {
            metrics::counter(names::STORE_REFITS_TOTAL).add(outcome.refits.len() as u64);
        }
        Ok(outcome)
    }

    /// Rolls the durable log back to its first `keep` records, rebuilding
    /// the refitter and registry by replaying the surviving prefix — the
    /// follower-side divergence recovery path. Replay determinism makes
    /// the rebuilt state byte-identical to one that never appended the
    /// dropped tail, so resyncing from the new primary converges to its
    /// exact log bytes and version history. Reads keep serving the
    /// pre-rollback model until the replay's first publish.
    ///
    /// On error the store is left without a log (appends would silently
    /// stop persisting), so the caller must fence the node rather than
    /// keep ingesting.
    pub fn rollback_to(&self, keep: u64) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let Some(log) = inner.log.take() else {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "rollback requires a durable log",
            )));
        };
        if keep > log.len() {
            let len = log.len();
            inner.log = Some(log);
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("cannot roll back to {keep}: log holds only {len} records"),
            )));
        }
        let dir = log.dir().to_path_buf();
        drop(log); // close the append handle before file surgery
        ObservationLog::truncate_records(&dir, keep)?;
        let mut refitter = Refitter::new(&inner.servers, inner.refit_opts);
        self.registry.rewind();
        let (log, _report) = ObservationLog::open(&dir, LogOptions::default(), |obs| {
            if let Some(trigger) = refitter.fold(&obs) {
                if let Some(model) = refitter.fit() {
                    self.registry.publish(model, refitter.folded(), trigger);
                }
            }
        })?;
        inner.refitter = refitter;
        inner.log = Some(log);
        self.watch.reset(keep);
        metrics::counter("store.rollbacks").incr();
        Ok(())
    }

    /// Forces the log tail to disk (no-op for in-memory stores).
    pub fn sync(&self) -> Result<(), StoreError> {
        if let Some(log) = self.inner.lock().unwrap().log.as_mut() {
            log.sync()?;
        }
        Ok(())
    }

    /// Total observations folded into the refitter (replayed + ingested,
    /// excluding unknown-server skips).
    pub fn observations(&self) -> u64 {
        self.inner.lock().unwrap().refitter.folded()
    }

    /// Observations skipped because their server is unknown.
    pub fn skipped_unknown(&self) -> u64 {
        self.inner.lock().unwrap().refitter.skipped_unknown()
    }

    /// Records in the durable log, if any.
    pub fn log_len(&self) -> Option<u64> {
        self.inner.lock().unwrap().log.as_ref().map(|l| l.len())
    }

    /// The durable log's directory, if any — replication senders open a
    /// [`crate::SegmentReader`] on it.
    pub fn log_dir(&self) -> Option<PathBuf> {
        self.inner
            .lock()
            .unwrap()
            .log
            .as_ref()
            .map(|l| l.dir().to_path_buf())
    }

    /// The watchable log-length counter replication senders park on.
    /// Always present; it only ever advances for durable stores.
    pub fn watch(&self) -> Arc<LogWatch> {
        Arc::clone(&self.watch)
    }

    /// The cluster epoch in the log's manifest (`None` for in-memory).
    pub fn epoch(&self) -> Option<u64> {
        self.inner.lock().unwrap().log.as_ref().map(|l| l.epoch())
    }

    /// Persists a new cluster epoch (no-op for in-memory stores).
    pub fn set_epoch(&self, epoch: u64) -> Result<(), StoreError> {
        if let Some(log) = self.inner.lock().unwrap().log.as_mut() {
            log.set_epoch(epoch)?;
        }
        Ok(())
    }

    /// The current serving model serialized (for determinism assertions).
    pub fn current_model_serialized(&self) -> Option<String> {
        self.registry
            .current()
            .map(|v| perfpred_hydra::persist::serialize(&v.model))
    }
}
