//! End-to-end store tests: incremental-vs-batch fit equivalence, crash
//! recovery at a torn record, and deterministic replay of the full
//! ingest → refit → publish pipeline.

use perfpred_core::ServerArch;
use perfpred_hydra::persist::serialize;
use perfpred_store::{
    LogOptions, Observation, ObservationStore, RefitOptions, RefitTrigger, Refitter, RECORD_BYTES,
};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfpred-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic AppServF measurement sweep shaped like the paper's curves:
/// exponential MRT growth below saturation, linear above.
fn trace(scale: f64, count: u32) -> Vec<Observation> {
    let m = 1_000.0 / 7_020.0;
    let n_star = 186.0 / m;
    (0..count)
        .map(|i| {
            let frac = 0.15 + 1.45 * f64::from(i % 29) / 28.0;
            let n = (frac * n_star).round().max(1.0);
            let mrt = if frac < 1.0 {
                scale * 20.0 * (1.8 * frac).exp()
            } else {
                scale * (7.0 * n / 1.3 - 6_000.0).max(100.0)
            };
            let mut o = Observation::typical("AppServF", n as u32, mrt);
            if frac <= 0.9 {
                o.throughput_rps = m * n;
            }
            o.timestamp_us = u64::from(i) * 250_000;
            o
        })
        .collect()
}

fn opts() -> RefitOptions {
    RefitOptions {
        refit_window: 40,
        drift_threshold: 0.25,
        drift_window: 20,
        ..RefitOptions::default()
    }
}

/// Satellite: incremental fits equal batch fits — coefficients within
/// 1e-12 and the anchor grid bit-identical.
#[test]
fn incremental_fit_equals_batch_fit() {
    let servers = [ServerArch::app_serv_f()];
    let data = trace(1.0, 200);

    // Batch: fold everything, fit once at the end.
    let mut batch = Refitter::new(&servers, opts());
    for obs in &data {
        batch.fold(obs);
    }
    let batch_model = batch.fit().expect("batch fit");

    // Incremental: fold one at a time, fitting at every trigger along the
    // way (the continuous-refit schedule).
    let mut inc = Refitter::new(&servers, opts());
    let mut fits = 0;
    for obs in &data {
        if inc.fold(obs).is_some() && inc.fit().is_some() {
            fits += 1;
        }
    }
    assert!(
        fits >= 2,
        "the window schedule must have refitted, got {fits}"
    );
    let inc_model = inc.fit().expect("incremental fit");

    // Anchor grid: bit-identical running sums.
    assert_eq!(
        batch.anchor_grid("AppServF").unwrap(),
        inc.anchor_grid("AppServF").unwrap(),
        "anchor grids must match bit for bit"
    );

    // Coefficients: within 1e-12 (identical sums → identical arithmetic,
    // so in practice exactly equal).
    let b = batch_model.established_r1("AppServF").unwrap();
    let i = inc_model.established_r1("AppServF").unwrap();
    assert!((b.lower.c - i.lower.c).abs() <= 1e-12);
    assert!((b.lower.lambda - i.lower.lambda).abs() <= 1e-12);
    assert!((b.upper.slope - i.upper.slope).abs() <= 1e-12);
    assert!((b.upper.intercept - i.upper.intercept).abs() <= 1e-12);
    assert!((batch_model.gradient() - inc_model.gradient()).abs() <= 1e-12);
    assert_eq!(serialize(&batch_model), serialize(&inc_model));
}

/// Satellite: crash recovery. Truncate a segment mid-record; replay stops
/// at the last valid CRC and the rebuilt registry matches a reference fit
/// of the surviving prefix.
#[test]
fn crash_recovery_matches_reference_fit_of_surviving_prefix() {
    let dir = scratch("crash");
    let servers = [ServerArch::app_serv_f()];
    let log_opts = LogOptions {
        segment_records: 64,
    };
    let data = trace(1.0, 100);

    let (store, _) = ObservationStore::open(&dir, log_opts, &servers, opts()).unwrap();
    store.ingest(&data).unwrap();
    store.sync().unwrap();
    let full_version = store.registry().version();
    assert!(full_version >= 1, "ingest must have refitted");
    drop(store);

    // Simulate a crash mid-write: chop the active segment mid-record,
    // losing the last record of the second segment (records 64..100 live
    // in seg-00000001, so 36 records → keep 35.5).
    let seg = dir.join("seg-00000001.obs");
    let len = std::fs::metadata(&seg).unwrap().len();
    assert_eq!(len, 36 * RECORD_BYTES as u64);
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - RECORD_BYTES as u64 / 2).unwrap();
    drop(f);

    let (recovered, report) = ObservationStore::open(&dir, log_opts, &servers, opts()).unwrap();
    assert_eq!(report.records, 99, "one torn record lost");
    assert_eq!(report.torn_bytes, RECORD_BYTES as u64 / 2);
    assert_eq!(recovered.observations(), 99);

    // Reference: an in-memory pipeline fed exactly the surviving prefix.
    let reference = ObservationStore::in_memory(&servers, opts());
    reference.ingest(&data[..99]).unwrap();
    assert_eq!(
        recovered.registry().version(),
        reference.registry().version()
    );
    assert_eq!(
        recovered.current_model_serialized().unwrap(),
        reference.current_model_serialized().unwrap(),
        "recovered model must equal the reference fit of the surviving prefix"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tentpole acceptance: restarting over the same log reproduces the fitted
/// model bit-identically, including the version history.
#[test]
fn replay_is_deterministic_across_restarts() {
    let dir = scratch("replay");
    let servers = ServerArch::case_study_servers();
    let data = trace(1.0, 150);

    let (store, report) =
        ObservationStore::open(&dir, LogOptions::default(), &servers, opts()).unwrap();
    assert_eq!(report.records, 0);
    // Ingest in uneven batches, as HTTP clients would.
    for chunk in data.chunks(7) {
        store.ingest(chunk).unwrap();
    }
    store.sync().unwrap();
    let versions_before = store.registry().versions();
    let model_before = store.current_model_serialized().unwrap();
    drop(store);

    let (replayed, report) =
        ObservationStore::open(&dir, LogOptions::default(), &servers, opts()).unwrap();
    assert_eq!(report.records, 150);
    assert_eq!(report.torn_bytes, 0);
    let versions_after = replayed.registry().versions();
    assert_eq!(versions_before.len(), versions_after.len());
    for (a, b) in versions_before.iter().zip(&versions_after) {
        assert_eq!(a.version, b.version);
        assert_eq!(a.trigger, b.trigger);
        assert_eq!(a.observations, b.observations);
        assert_eq!(serialize(&a.model), serialize(&b.model));
    }
    assert_eq!(replayed.current_model_serialized().unwrap(), model_before);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Drift ingestion end to end: a workload shift publishes a drift-triggered
/// version before the window would have filled.
#[test]
fn drift_publishes_a_new_version_early() {
    let servers = [ServerArch::app_serv_f()];
    let store = ObservationStore::in_memory(
        &servers,
        RefitOptions {
            refit_window: 1_000,
            drift_threshold: 0.25,
            drift_window: 20,
            ..RefitOptions::default()
        },
    );
    // Baseline model from a calibration seed (not the log).
    let mut seedfit = Refitter::new(&servers, opts());
    for obs in trace(1.0, 80) {
        seedfit.fold(&obs);
    }
    assert_eq!(
        store.seed_if_empty(seedfit.fit().unwrap()),
        Some(1),
        "seed takes version 1"
    );
    assert_eq!(store.registry().versions()[0].trigger, RefitTrigger::Seed);

    // The system slows down 60 %: drift must fire long before 1000 folds.
    let outcome = store.ingest(&trace(1.6, 120)).unwrap();
    let drift: Vec<_> = outcome
        .refits
        .iter()
        .filter(|r| r.trigger == RefitTrigger::Drift)
        .collect();
    assert!(!drift.is_empty(), "expected a drift refit, got {outcome:?}");
    assert!(store.registry().version() >= 2);
}

/// Fault injection: injected store I/O errors fail batches atomically —
/// nothing from a failed batch reaches the log or the refitter — so
/// replay after a restart reconstructs the accepted-batch state
/// byte-identically.
#[test]
fn injected_write_errors_fail_batches_atomically_and_replay_byte_identically() {
    use perfpred_core::faults::FaultPlan;
    use perfpred_store::StoreError;
    use std::sync::Arc;

    let dir = scratch("faults");
    let servers = [ServerArch::app_serv_f()];
    let (store, _) = ObservationStore::open(&dir, LogOptions::default(), &servers, opts()).unwrap();
    // Arm this store instance only — the process-global plan stays off so
    // parallel tests in this binary are unaffected.
    let plan = Arc::new(FaultPlan::parse("store_io_err=p0.4", 7).unwrap());
    let store = store.with_faults(Some(plan));

    // Mirror every *accepted* batch into an in-memory reference pipeline.
    let data = trace(1.0, 140);
    let reference = ObservationStore::in_memory(&servers, opts());
    let mut failed = 0;
    for chunk in data.chunks(7) {
        match store.ingest(chunk) {
            Ok(_) => {
                reference.ingest(chunk).unwrap();
            }
            Err(StoreError::Io(_)) => failed += 1,
            Err(e) => panic!("unexpected ingest error: {e}"),
        }
    }
    assert!(failed > 0, "a p=0.4 fault plan must have fired");
    assert!(store.observations() > 0, "some batches must have landed");
    assert_eq!(store.observations(), reference.observations());
    assert_eq!(store.log_len(), Some(store.observations()));
    assert!(store.registry().version() >= 1, "ingest must have refitted");
    assert_eq!(store.registry().version(), reference.registry().version());
    store.sync().unwrap();
    drop(store);

    let (replayed, report) =
        ObservationStore::open(&dir, LogOptions::default(), &servers, opts()).unwrap();
    assert_eq!(report.records, reference.observations());
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(
        replayed.registry().version(),
        reference.registry().version()
    );
    assert_eq!(
        replayed.current_model_serialized().unwrap(),
        reference.current_model_serialized().unwrap(),
        "replayed model must equal the reference fit of the accepted batches"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Validation is all-or-nothing: a bad record rejects the batch and leaves
/// nothing behind in the log or the refitter.
#[test]
fn invalid_observation_rejects_the_whole_batch() {
    let dir = scratch("reject");
    let servers = [ServerArch::app_serv_f()];
    let (store, _) = ObservationStore::open(&dir, LogOptions::default(), &servers, opts()).unwrap();
    let mut batch = trace(1.0, 5);
    batch[3].mrt_ms = f64::NAN;
    assert!(store.ingest(&batch).is_err());
    assert_eq!(store.observations(), 0);
    assert_eq!(store.log_len(), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}
