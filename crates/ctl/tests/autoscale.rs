//! Integration tests for the control plane: deterministic replay,
//! hysteresis under noise, and a real three-node scale-up/scale-down
//! cycle against in-process serve nodes and a router.

use perfpred_core::workload::Workload;
use perfpred_core::{CacheOptions, PerformanceModel, PredictError, Prediction, ServerArch};
use perfpred_ctl::actuate::NodeLauncher;
use perfpred_ctl::journal::{read_journal, replay_file, replay_with, FRAME_DECISION};
use perfpred_ctl::models::{Models, WhatIfMode};
use perfpred_ctl::plan::{ActionKind, CtlConfig, CtlState, TickInputs};
use perfpred_ctl::scrape::NodeScrape;
use perfpred_ctl::{run_trace, Controller};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("perfpred-ctl-autoscale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn scrape(addr: &str, rps: f64, threshold: f64) -> NodeScrape {
    NodeScrape {
        ok: true,
        total_rps: rps,
        browse_rps: rps * 0.9,
        buy_rps: rps * 0.1,
        threshold,
        predict_p50_ms: 0.5,
        ..NodeScrape::down(addr)
    }
}

/// ISSUE acceptance: a recorded scrape trace replayed through the
/// planner yields the identical decision sequence — twice over: the
/// same trace journalled twice gives identical bytes, and
/// `replay_file` on the first journal reproduces it byte for byte.
///
/// The trace drives the *paper* hybrid model around its AppServF knee
/// (≈1 300 clients at a 10 % buy mix): the 420 req/s plateau implies
/// ≈2 900 clients, infeasible below three replicas.
#[test]
fn deterministic_scrape_trace_replays_byte_identically() {
    let models = Models::paper(&CacheOptions::default());
    let cfg = CtlConfig {
        goal_ms: 150.0,
        threshold: 0.05,
        ..CtlConfig::default()
    };
    let planner = models.planner(cfg.method);
    let checker = Some(models.checker(cfg.method));
    // A 1 -> up -> down load shape with deterministic jitter.
    let trace: Vec<TickInputs> = (0..24u64)
        .map(|tick| {
            let base = match tick {
                0..=5 => 3.0,
                6..=15 => 420.0,
                _ => 2.0,
            };
            let jitter = (tick % 3) as f64 * 0.37;
            TickInputs {
                tick,
                nodes: vec![scrape("127.0.0.1:9101", base + jitter, cfg.threshold)],
            }
        })
        .collect();
    let j1 = tmp("trace-a.journal");
    let j2 = tmp("trace-b.journal");
    let d1 = run_trace(
        &cfg,
        planner,
        checker,
        CtlState::starting_at(1),
        &trace,
        &j1,
    )
    .unwrap();
    let d2 = run_trace(
        &cfg,
        planner,
        checker,
        CtlState::starting_at(1),
        &trace,
        &j2,
    )
    .unwrap();
    assert_eq!(d1, d2, "same trace, same decisions");
    assert_eq!(
        std::fs::read(&j1).unwrap(),
        std::fs::read(&j2).unwrap(),
        "same trace, same journal bytes"
    );
    // And the journal replays itself.
    let j3 = tmp("trace-replayed.journal");
    replay_file(&j1, &j3).unwrap();
    assert_eq!(
        std::fs::read(&j1).unwrap(),
        std::fs::read(&j3).unwrap(),
        "replay must regenerate the journal byte-identically"
    );
    // The trace actually exercised scaling, or the test proves nothing.
    assert!(
        d1.iter().any(|d| d.action.kind == ActionKind::ScaleUp),
        "trace should trigger a scale-up"
    );
    assert!(
        d1.iter().any(|d| d.action.kind == ActionKind::ScaleDown),
        "trace should trigger a scale-down"
    );
}

/// mrt = base + slope × clients (largest class), for controllable
/// capacity boundaries in tests.
struct LinearModel {
    base_ms: f64,
    per_client_ms: f64,
}

impl PerformanceModel for LinearModel {
    fn method_name(&self) -> &str {
        "linear-test"
    }
    fn predict(&self, _s: &ServerArch, w: &Workload) -> Result<Prediction, PredictError> {
        let per_class: Vec<f64> = w
            .classes
            .iter()
            .map(|c| self.base_ms + self.per_client_ms * f64::from(c.clients))
            .collect();
        Ok(Prediction {
            mrt_ms: per_class.iter().copied().fold(0.0f64, f64::max),
            per_class_mrt_ms: per_class,
            throughput_rps: 0.0,
            utilization: None,
            saturated: false,
        })
    }
}

/// ISSUE acceptance: hysteresis — a noisy-but-flat trace straddling a
/// replica boundary must produce zero scaling actions.
#[test]
fn hysteresis_does_not_flap_on_a_noisy_flat_trace() {
    // Capacity 90 browse clients/replica at goal 100 (mrt = 10 + n).
    // The tier sits at 2; alternate ticks flip the instantaneous target
    // between 2 (24 req/s ⇒ ~151 browse clients, 76/replica) and 3
    // (30 req/s ⇒ ~189 browse clients, 95/replica — over the bar), so
    // neither side ever sustains a streak.
    let model = LinearModel {
        base_ms: 10.0,
        per_client_ms: 1.0,
    };
    let cfg = CtlConfig {
        goal_ms: 100.0,
        threshold: 0.0,
        think_ms: 7_000.0,
        whatif: WhatIfMode::Off,
        scale_up_ticks: 3,
        scale_down_ticks: 3,
        ..CtlConfig::default()
    };
    let trace: Vec<TickInputs> = (0..40u64)
        .map(|tick| {
            let rps = if tick % 2 == 0 { 24.0 } else { 30.0 };
            TickInputs {
                tick,
                nodes: vec![scrape("127.0.0.1:9102", rps, cfg.threshold)],
            }
        })
        .collect();
    let journal = tmp("noisy-flat.journal");
    let decisions = run_trace(
        &cfg,
        &model,
        None,
        CtlState::starting_at(2),
        &trace,
        &journal,
    )
    .unwrap();
    for d in &decisions {
        assert_eq!(
            d.action.kind,
            ActionKind::Hold,
            "tick {}: flapped {:?}",
            d.tick,
            d.action
        );
    }
    // The boundary really was straddled (both targets seen).
    assert!(decisions.iter().any(|d| d.target == 2));
    assert!(decisions.iter().any(|d| d.target == 3));
}

// ---------------------------------------------------------------- e2e --

/// One in-process serve node on the event-driven core (the threaded core
/// pins a worker per connection, so a router holding keep-alive upstream
/// connections would starve the scraper's fresh connections).
fn start_node() -> (
    String,
    Arc<perfpred_serve::Shutdown>,
    std::thread::JoinHandle<()>,
) {
    use perfpred_resman::RuntimeOptions;
    use perfpred_serve::batch::JobQueue;
    use perfpred_serve::router::App;
    let app = App::new(
        perfpred_serve::ModelHost::paper(&CacheOptions::default()),
        perfpred_serve::AdmissionController::new(RuntimeOptions::default()).unwrap(),
        JobQueue::new(64),
        perfpred_serve::Shutdown::new(),
    );
    let server = perfpred_serve::ReactorServer::bind("127.0.0.1", 0, app, 2, 2, 1, 8, 64).unwrap();
    let addr = server.local_addr().to_string();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    (addr, shutdown, handle)
}

type NodeRegistry = Arc<
    Mutex<
        Vec<(
            String,
            Arc<perfpred_serve::Shutdown>,
            Option<std::thread::JoinHandle<()>>,
        )>,
    >,
>;

/// Launcher backed by in-process serve nodes.
struct TestLauncher {
    registry: NodeRegistry,
}

impl NodeLauncher for TestLauncher {
    fn spawn(&mut self, _index: u32) -> std::io::Result<String> {
        let (addr, shutdown, handle) = start_node();
        self.registry
            .lock()
            .unwrap()
            .push((addr.clone(), shutdown, Some(handle)));
        Ok(addr)
    }

    fn drain(&mut self, addr: &str) -> std::io::Result<()> {
        let entry = {
            let mut reg = self.registry.lock().unwrap();
            reg.iter()
                .position(|(a, _, _)| a == addr)
                .map(|pos| reg.remove(pos))
        };
        if let Some((_, shutdown, handle)) = entry {
            shutdown.request();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
        Ok(())
    }
}

/// Blocking client: one POST /predict, returns the status line's code.
fn post_predict(addr: &str) -> Option<u16> {
    use std::io::Read as _;
    let body = r#"{"method": "hybrid", "server": "AppServF", "clients": 5}"#;
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let req = format!(
        "POST /predict HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).ok()?;
    let mut out = String::new();
    stream.read_to_string(&mut out).ok()?;
    out.split_whitespace().nth(1)?.parse().ok()
}

/// ISSUE acceptance: end-to-end — one node under phased load grows to
/// three replicas through the router and shrinks back when the load
/// drops, with every client request answered (zero lost requests), and
/// the live journal replays deterministically.
#[test]
fn three_node_e2e_scales_up_then_down_without_losing_requests() {
    use perfpred_cluster::{RouterConfig, RouterServer};

    let registry: NodeRegistry = Arc::new(Mutex::new(Vec::new()));
    let mut seed_launcher = TestLauncher {
        registry: Arc::clone(&registry),
    };
    let first = seed_launcher.spawn(0).unwrap();

    let router = RouterServer::bind(RouterConfig {
        upstreams: vec![first.clone()],
        probe_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .unwrap();
    let router_addr = router.local_addr().to_string();
    std::thread::spawn(move || {
        let _ = router.run();
    });
    std::thread::sleep(Duration::from_millis(300));

    // Capacity fiction for speed: ≤85 clients per replica (mrt = 10 + n,
    // bar = 100 × 0.95). Two driver threads at ~60 req/s feed the nodes'
    // τ = 10 s arrival EWMA; Little's law at 7 s think time pushes the
    // population estimate past 170 within a few seconds ⇒ 3 replicas.
    let model = LinearModel {
        base_ms: 10.0,
        per_client_ms: 1.0,
    };
    let cfg = CtlConfig {
        goal_ms: 100.0,
        threshold: 0.05,
        think_ms: 7_000.0,
        whatif: WhatIfMode::Off,
        scale_up_ticks: 2,
        scale_down_ticks: 2,
        up_cooldown_ticks: 2,
        down_cooldown_ticks: 2,
        ..CtlConfig::default()
    };
    let journal = tmp("e2e.journal");
    let mut controller = Controller::new(
        cfg,
        &model,
        None,
        vec![first.clone()],
        Some(router_addr.clone()),
        Box::new(TestLauncher {
            registry: Arc::clone(&registry),
        }),
        &journal,
        false,
    )
    .unwrap();
    controller.drain_settle = Duration::from_millis(300);

    // Load drivers: ~60 req/s against the router in the heavy phase,
    // ~5 req/s in the light phase (so scale-down happens *under* live
    // traffic and the zero-loss claim covers the drain path too).
    let running = Arc::new(AtomicBool::new(true));
    let gap_ms = Arc::new(AtomicU64::new(33));
    let sent = Arc::new(AtomicU64::new(0));
    let okd = Arc::new(AtomicU64::new(0));
    let mut drivers = Vec::new();
    for _ in 0..2 {
        let running = Arc::clone(&running);
        let gap_ms = Arc::clone(&gap_ms);
        let sent = Arc::clone(&sent);
        let okd = Arc::clone(&okd);
        let target = router_addr.clone();
        drivers.push(std::thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                sent.fetch_add(1, Ordering::Relaxed);
                if post_predict(&target) == Some(200) {
                    okd.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(gap_ms.load(Ordering::Relaxed)));
            }
        }));
    }

    // Phase 1: heavy load; tick until the tier reaches 3 replicas.
    let mut tick = 0u64;
    let mut peak = 1u32;
    for _ in 0..60 {
        let d = controller.tick(tick).unwrap();
        tick += 1;
        peak = peak.max(d.state_after.replicas);
        if peak >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(500));
    }
    assert_eq!(peak, 3, "tier should scale up to 3 replicas under load");
    assert_eq!(controller.nodes.len(), 3);

    // Phase 2: light load; tick until the tier shrinks back to 1.
    gap_ms.store(400, Ordering::Relaxed);
    let mut floor = controller.state.replicas;
    for _ in 0..90 {
        let d = controller.tick(tick).unwrap();
        tick += 1;
        floor = floor.min(d.state_after.replicas);
        if floor <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(500));
    }
    assert_eq!(floor, 1, "tier should scale back down after the load drops");
    assert_eq!(controller.nodes.len(), 1);

    // Stop the drivers, then check zero loss: every request answered 200.
    running.store(false, Ordering::Relaxed);
    for d in drivers {
        d.join().unwrap();
    }
    let sent = sent.load(Ordering::Relaxed);
    let okd = okd.load(Ordering::Relaxed);
    assert!(sent > 100, "driver actually ran ({sent} requests)");
    assert_eq!(
        okd, sent,
        "no request may be lost across scaling events ({okd}/{sent})"
    );

    // The live journal's decisions recompute identically from their
    // recorded inputs (replay with the same test model).
    let entries = read_journal(&journal).unwrap();
    let replayed = replay_with(&entries, &model, None).unwrap();
    assert_eq!(entries.len(), replayed.len());
    for (entry, (kind, payload)) in entries.iter().zip(&replayed) {
        assert_eq!(entry.kind, *kind);
        if entry.kind == FRAME_DECISION {
            assert_eq!(
                entry.doc.render(),
                *payload,
                "decision frames must replay byte-identically"
            );
        }
    }

    // Teardown any survivors.
    for (_, shutdown, handle) in registry.lock().unwrap().drain(..) {
        shutdown.request();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}
