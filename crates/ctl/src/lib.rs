#![warn(missing_docs)]

//! # perfpred-ctl
//!
//! A predictive control plane for the serving cluster: the §9 resource
//! manager run *online*, against live telemetry, with its decisions
//! journalled and replayable.
//!
//! Each control tick the daemon scrapes every serve node's `/healthz`
//! and `/metrics` (smoothed per-class arrival rates, queue depths, live
//! admission threshold, `/predict` latency quantiles), estimates the
//! client population via Little's law (`N = λ · (Z + R)`), and asks the
//! homogeneous-tier replica planner
//! ([`perfpred_resman::online::plan_replicas`]) for the smallest
//! replica count whose per-replica share the performance model predicts
//! to meet every SLA goal with the admission margin. Proposed
//! allocations are validated with a cheap what-if pass — a cross-check
//! prediction by the *other* model, or a short discrete-event
//! simulation — before actuation through the serve nodes' admin
//! endpoints, a node supervisor, and the router's atomic upstream swap.
//!
//! * [`scrape`] — per-node and router telemetry, JSON-round-trippable;
//! * [`plan`] — the pure decision core (population estimate, replica
//!   plan, hysteresis, what-if validation);
//! * [`models`] — the resident paper-mode predictors and method
//!   dispatch;
//! * [`journal`] — the CRC-framed, fsync-durable decision journal and
//!   its byte-identical replay;
//! * [`actuate`] — admin-endpoint pushes, router reload, and the
//!   [`actuate::NodeLauncher`] supervisor (process spawn + SIGTERM
//!   drain);
//! * [`controller`] — the tick loop tying them together;
//! * [`httpc`] — the minimal one-shot HTTP client underneath it all.

pub mod actuate;
pub mod controller;
pub mod httpc;
pub mod journal;
pub mod models;
pub mod plan;
pub mod scrape;

pub use actuate::{HttpLauncher, NodeLauncher, ProcessLauncher};
pub use controller::{run_trace, Controller};
pub use journal::{read_journal, replay_file, replay_with, Journal, JournalEntry};
pub use models::{server_arch, Models, PlanMethod, WhatIfMode};
pub use plan::{
    decide, Action, ActionKind, CtlConfig, CtlState, Decision, TickInputs, WhatIfVerdict,
};
pub use scrape::{scrape_node, scrape_router, NodeScrape, RouterScrape};
