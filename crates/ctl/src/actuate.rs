//! Actuation: turning a [`crate::plan::Decision`] into the world.
//!
//! Three levers, matching the tentpole spec:
//!
//! * per-node admission thresholds via `POST /admin/threshold`;
//! * the router's upstream set via `POST /admin/upstreams` (the router
//!   swaps its consistent-hash ring atomically, so in-flight requests
//!   finish on the topology they started on);
//! * the node fleet itself, through a [`NodeLauncher`] — the binary
//!   spawns real `perfpred-serve` processes from a `--spawn-cmd`
//!   template and drains them with SIGTERM; tests plug in in-process
//!   servers.
//!
//! The zero-loss ordering on scale-down is: remove the victim from the
//! router *first*, wait a settle interval for its in-flight requests to
//! finish, and only then drain the node.

use crate::httpc;
use crate::scrape;
use perfpred_core::Json;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Pushes an admission threshold to one serve node.
pub fn push_threshold(addr: &str, threshold: f64, timeout: Duration) -> io::Result<()> {
    let mut body = Json::obj();
    body.set("threshold", threshold);
    let reply = httpc::post_json(addr, "/admin/threshold", &body.render(), timeout)?;
    if reply.ok() {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "threshold push to {addr} got {}",
            reply.status
        )))
    }
}

/// Replaces the router's upstream set.
pub fn reload_router(router: &str, upstreams: &[String], timeout: Duration) -> io::Result<()> {
    let mut body = Json::obj();
    body.set(
        "upstreams",
        Json::Arr(upstreams.iter().map(|u| Json::from(u.as_str())).collect()),
    );
    let reply = httpc::post_json(router, "/admin/upstreams", &body.render(), timeout)?;
    if reply.ok() {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "router reload got {}: {}",
            reply.status,
            reply.body.trim()
        )))
    }
}

/// Polls a node's `/healthz` until it answers ok or the deadline passes.
pub fn wait_healthy(addr: &str, deadline: Duration) -> bool {
    let until = Instant::now() + deadline;
    let probe_timeout = Duration::from_millis(500);
    loop {
        if scrape::scrape_node(addr, probe_timeout).ok {
            return true;
        }
        if Instant::now() >= until {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Brings serve nodes up and down. The controller only ever asks for
/// *one more node* or *this node gone*; fleet arithmetic stays in the
/// control loop.
pub trait NodeLauncher: Send {
    /// Starts node number `index` and returns its `host:port` once it is
    /// reachable.
    fn spawn(&mut self, index: u32) -> io::Result<String>;

    /// Gracefully drains the node at `addr` (it has already been removed
    /// from the router).
    fn drain(&mut self, addr: &str) -> io::Result<()>;
}

/// Launcher for fixed fleets (no `--spawn-cmd`): cannot spawn, drains
/// over HTTP via `POST /shutdown`.
pub struct HttpLauncher {
    /// Per-request timeout.
    pub timeout: Duration,
}

impl NodeLauncher for HttpLauncher {
    fn spawn(&mut self, _index: u32) -> io::Result<String> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "no --spawn-cmd configured; cannot grow the tier",
        ))
    }

    fn drain(&mut self, addr: &str) -> io::Result<()> {
        let reply = httpc::post_json(addr, "/shutdown", "{}", self.timeout)?;
        if reply.ok() {
            Ok(())
        } else {
            Err(io::Error::other(format!(
                "drain of {addr} got {}",
                reply.status
            )))
        }
    }
}

#[cfg(unix)]
extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

#[cfg(unix)]
const SIGTERM: i32 = 15;

/// Launcher that spawns real node processes from a command template.
///
/// The template is split on whitespace (no quoting); `{port_file}` and
/// `{index}` are substituted per spawn. The spawned process must write
/// its bound port to the port file once listening (`perfpred-serve
/// --port 0 --port-file {port_file}` does).
pub struct ProcessLauncher {
    template: String,
    dir: PathBuf,
    children: Vec<(String, std::process::Child)>,
    /// How long to wait for a spawned node's port file.
    pub spawn_deadline: Duration,
    /// How long a SIGTERM'd node gets to drain before a hard kill.
    pub drain_deadline: Duration,
}

impl ProcessLauncher {
    /// A launcher around `template`, writing port files under `dir`.
    pub fn new(template: &str, dir: PathBuf) -> ProcessLauncher {
        ProcessLauncher {
            template: template.to_string(),
            dir,
            children: Vec::new(),
            spawn_deadline: Duration::from_secs(15),
            drain_deadline: Duration::from_secs(10),
        }
    }
}

impl NodeLauncher for ProcessLauncher {
    fn spawn(&mut self, index: u32) -> io::Result<String> {
        std::fs::create_dir_all(&self.dir)?;
        let port_file = self.dir.join(format!("node-{index}.port"));
        let _ = std::fs::remove_file(&port_file);
        let cmd = self
            .template
            .replace("{port_file}", &port_file.to_string_lossy())
            .replace("{index}", &index.to_string());
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        let (program, args) = parts
            .split_first()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty --spawn-cmd"))?;
        let child = std::process::Command::new(program).args(args).spawn()?;
        // The node writes its ephemeral port once it is listening.
        let until = Instant::now() + self.spawn_deadline;
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    break p;
                }
            }
            if Instant::now() >= until {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("node {index} never wrote {}", port_file.display()),
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        };
        let addr = format!("127.0.0.1:{port}");
        self.children.push((addr.clone(), child));
        Ok(addr)
    }

    fn drain(&mut self, addr: &str) -> io::Result<()> {
        let Some(pos) = self.children.iter().position(|(a, _)| a == addr) else {
            // Not ours (an initial node started by a script): HTTP drain.
            return HttpLauncher {
                timeout: Duration::from_secs(2),
            }
            .drain(addr);
        };
        let (_, mut child) = self.children.remove(pos);
        #[cfg(unix)]
        {
            // SIGTERM: the serve daemon's handler drains in-flight work.
            unsafe {
                kill(child.id() as i32, SIGTERM);
            }
            let until = Instant::now() + self.drain_deadline;
            loop {
                if child.try_wait()?.is_some() {
                    return Ok(());
                }
                if Instant::now() >= until {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        // Non-unix, or the grace period expired: hard stop.
        child.kill()?;
        let _ = child.wait();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_launcher_refuses_to_spawn() {
        let mut l = HttpLauncher {
            timeout: Duration::from_millis(100),
        };
        let err = l.spawn(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn process_launcher_substitutes_and_times_out_on_silent_nodes() {
        // `true` exits immediately without writing a port file, so the
        // spawn must fail with a timeout rather than hang.
        let dir = std::env::temp_dir().join(format!("perfpred-ctl-launch-{}", std::process::id()));
        let mut l = ProcessLauncher::new("true {port_file} {index}", dir);
        l.spawn_deadline = Duration::from_millis(300);
        let err = l.spawn(0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
