//! Scraping the serving tier: one `NodeScrape` per serve node per tick,
//! plus the router's topology view.
//!
//! A node scrape folds `GET /healthz` (liveness, draining, model version,
//! live admission threshold, smoothed per-class arrival rates, queue
//! depths) and `GET /metrics` (the `/predict` latency summary) into one
//! flat record. The record round-trips through [`perfpred_core::Json`]
//! losslessly — it is the *input* half of every journal entry, and replay
//! recomputes decisions from exactly these fields.

use crate::httpc;
use perfpred_core::Json;
use std::time::Duration;

/// Everything the planner reads from one serve node on one tick.
///
/// An unreachable or unhealthy node keeps its `addr` with `ok: false`
/// and zeroed observations, so the journal still records that the node
/// existed and the planner can count live capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeScrape {
    /// The node's `host:port`.
    pub addr: String,
    /// `/healthz` answered 200.
    pub ok: bool,
    /// The node is draining (shutdown requested).
    pub draining: bool,
    /// Serving model version.
    pub model_version: u64,
    /// Live admission threshold.
    pub threshold: f64,
    /// Smoothed total arrival rate, req/s.
    pub total_rps: f64,
    /// Smoothed browse-class arrival rate, req/s.
    pub browse_rps: f64,
    /// Smoothed buy-class arrival rate, req/s.
    pub buy_rps: f64,
    /// Reactor dispatch queue depth.
    pub dispatch_queue: u64,
    /// Solver queue depth.
    pub solver_queue: u64,
    /// `/predict` latency p50 over the node's lifetime, ms (0 when the
    /// node has served nothing).
    pub predict_p50_ms: f64,
    /// `/predict` latency p99, ms.
    pub predict_p99_ms: f64,
}

impl NodeScrape {
    /// A placeholder for a node that did not answer.
    pub fn down(addr: &str) -> NodeScrape {
        NodeScrape {
            addr: addr.to_string(),
            ok: false,
            draining: false,
            model_version: 0,
            threshold: 0.0,
            total_rps: 0.0,
            browse_rps: 0.0,
            buy_rps: 0.0,
            dispatch_queue: 0,
            solver_queue: 0,
            predict_p50_ms: 0.0,
            predict_p99_ms: 0.0,
        }
    }

    /// Renders the scrape for the journal.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("addr", self.addr.as_str());
        o.set("ok", self.ok);
        o.set("draining", self.draining);
        o.set("model_version", self.model_version);
        o.set("threshold", self.threshold);
        o.set("total_rps", self.total_rps);
        o.set("browse_rps", self.browse_rps);
        o.set("buy_rps", self.buy_rps);
        o.set("dispatch_queue", self.dispatch_queue);
        o.set("solver_queue", self.solver_queue);
        o.set("predict_p50_ms", self.predict_p50_ms);
        o.set("predict_p99_ms", self.predict_p99_ms);
        o
    }

    /// Parses a journalled scrape back (replay path).
    pub fn from_json(j: &Json) -> Result<NodeScrape, String> {
        let f = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("scrape needs numeric '{k}'"))
        };
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or(format!("scrape needs integer '{k}'"))
        };
        Ok(NodeScrape {
            addr: j
                .get("addr")
                .and_then(Json::as_str)
                .ok_or("scrape needs 'addr'")?
                .to_string(),
            ok: j
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or("scrape needs 'ok'")?,
            draining: j.get("draining").and_then(Json::as_bool).unwrap_or(false),
            model_version: u("model_version")?,
            threshold: f("threshold")?,
            total_rps: f("total_rps")?,
            browse_rps: f("browse_rps")?,
            buy_rps: f("buy_rps")?,
            dispatch_queue: u("dispatch_queue")?,
            solver_queue: u("solver_queue")?,
            predict_p50_ms: f("predict_p50_ms")?,
            predict_p99_ms: f("predict_p99_ms")?,
        })
    }
}

/// One value from a Prometheus exposition page: the first sample of
/// `name` whose label block contains `label_filter` (pass `""` to match
/// any). Returns `None` when absent.
pub fn exposition_value(text: &str, name: &str, label_filter: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') || !line.starts_with(name) {
            continue;
        }
        let rest = &line[name.len()..];
        // Either `name{labels} v` or `name v`; avoid matching prefixed
        // metric names (`foo_ms_sum` when asked for `foo_ms`).
        let (labels, value) = match rest.find(' ') {
            Some(sp) => (&rest[..sp], &rest[sp + 1..]),
            None => continue,
        };
        if !labels.is_empty() && !labels.starts_with('{') {
            continue;
        }
        if !labels.contains(label_filter) {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            return Some(v);
        }
    }
    None
}

/// Scrapes one serve node: `/healthz` plus `/metrics`. I/O failure or a
/// non-200 healthz yields a `down` placeholder rather than an error —
/// a missing node is an observation, not a control-loop fault.
pub fn scrape_node(addr: &str, timeout: Duration) -> NodeScrape {
    let health = match httpc::get(addr, "/healthz", timeout) {
        Ok(r) if r.ok() => r,
        _ => return NodeScrape::down(addr),
    };
    let Ok(h) = Json::parse(&health.body) else {
        return NodeScrape::down(addr);
    };
    let mut scrape = NodeScrape::down(addr);
    scrape.ok = true;
    scrape.draining = h.get("draining").and_then(Json::as_bool).unwrap_or(false);
    scrape.model_version = h.get("model_version").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    scrape.threshold = h.get("threshold").and_then(Json::as_f64).unwrap_or(0.0);
    if let Some(a) = h.get("arrival") {
        scrape.total_rps = a.get("total_rps").and_then(Json::as_f64).unwrap_or(0.0);
        scrape.browse_rps = a.get("browse_rps").and_then(Json::as_f64).unwrap_or(0.0);
        scrape.buy_rps = a.get("buy_rps").and_then(Json::as_f64).unwrap_or(0.0);
    }
    scrape.dispatch_queue = h
        .get("dispatch_queue_depth")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    scrape.solver_queue = h
        .get("solver_queue_depth")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    if let Ok(m) = httpc::get(addr, "/metrics", timeout) {
        if m.ok() {
            scrape.predict_p50_ms =
                exposition_value(&m.body, "serve_http_predict_ms", "quantile=\"0.5\"")
                    .unwrap_or(0.0);
            scrape.predict_p99_ms =
                exposition_value(&m.body, "serve_http_predict_ms", "quantile=\"0.99\"")
                    .unwrap_or(0.0);
        }
    }
    scrape
}

/// The router's upstream view (from `GET /router/status`).
#[derive(Debug, Clone, Default)]
pub struct RouterScrape {
    /// Upstream addresses the router currently routes to.
    pub upstreams: Vec<String>,
    /// How many of those the health prober admits.
    pub admitted: usize,
}

/// Scrapes the router's status endpooint; `None` when unreachable.
pub fn scrape_router(addr: &str, timeout: Duration) -> Option<RouterScrape> {
    let reply = httpc::get(addr, "/router/status", timeout).ok()?;
    if !reply.ok() {
        return None;
    }
    let body = Json::parse(&reply.body).ok()?;
    let mut out = RouterScrape::default();
    for u in body.get("upstreams").and_then(Json::as_arr).unwrap_or(&[]) {
        if let Some(a) = u.get("addr").and_then(Json::as_str) {
            out.upstreams.push(a.to_string());
        }
        if u.get("admitted").and_then(Json::as_bool).unwrap_or(false) {
            out.admitted += 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_round_trips_through_json() {
        let s = NodeScrape {
            addr: "127.0.0.1:9001".into(),
            ok: true,
            draining: false,
            model_version: 7,
            threshold: 0.05,
            total_rps: 123.456,
            browse_rps: 111.1,
            buy_rps: 12.356,
            dispatch_queue: 3,
            solver_queue: 1,
            predict_p50_ms: 0.125,
            predict_p99_ms: 2.5,
        };
        let j = s.to_json();
        let back = NodeScrape::from_json(&j).unwrap();
        assert_eq!(s, back);
        // And the render itself is stable (journal byte-identity leans
        // on this).
        assert_eq!(
            j.render(),
            NodeScrape::from_json(&j).unwrap().to_json().render()
        );
    }

    #[test]
    fn down_nodes_parse_too() {
        let j = NodeScrape::down("a:1").to_json();
        let back = NodeScrape::from_json(&j).unwrap();
        assert!(!back.ok);
        assert_eq!(back.addr, "a:1");
    }

    #[test]
    fn exposition_parsing_matches_labels_and_plain_gauges() {
        let text = "\
# TYPE serve_http_predict_ms summary
serve_http_predict_ms{quantile=\"0.5\"} 0.25
serve_http_predict_ms{quantile=\"0.99\"} 4.5
serve_http_predict_ms_sum 100
serve_http_predict_ms_count 400
serve_solver_queue_depth 2
";
        assert_eq!(
            exposition_value(text, "serve_http_predict_ms", "quantile=\"0.5\""),
            Some(0.25)
        );
        assert_eq!(
            exposition_value(text, "serve_http_predict_ms", "quantile=\"0.99\""),
            Some(4.5)
        );
        assert_eq!(
            exposition_value(text, "serve_solver_queue_depth", ""),
            Some(2.0)
        );
        assert_eq!(exposition_value(text, "serve_missing", ""), None);
    }
}
