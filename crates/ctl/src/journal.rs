//! The decision journal: every control tick appended as a CRC-framed
//! record, durable via `fsync`, and *replayable* — feeding the recorded
//! inputs back through [`crate::plan::decide`] regenerates the decision
//! frames byte for byte.
//!
//! Three frame kinds share one file:
//!
//! * `0` — header: the [`CtlConfig`] and initial [`CtlState`], written
//!   once at creation. Replay reconstructs the planner from this.
//! * `1` — decision: `{"decision": ..., "inputs": ...}` — the tick's
//!   scrapes and what was decided from them. Replay *recomputes* these.
//! * `2` — outcome: what actuation did (spawned addresses, drain
//!   failures). Outcomes are observations of the world, not decisions,
//!   so replay copies them through verbatim.
//!
//! Byte-identity rests on three legs: [`perfpred_core::Json`] objects
//! render key-sorted, `decide` is pure, and the paper-mode models are
//! deterministic. The journal tests (and the CI smoke job) hold all
//! three by diffing a replayed file against the original.

use crate::models::Models;
use crate::plan::{decide, CtlConfig, CtlState, Decision, TickInputs};
use perfpred_core::frame::{read_frame, write_frame};
use perfpred_core::{fsutil, Json, PerformanceModel};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// Frame kind: journal header (config + initial state).
pub const FRAME_HEADER: u8 = 0;
/// Frame kind: one tick's inputs and decision.
pub const FRAME_DECISION: u8 = 1;
/// Frame kind: one actuation outcome.
pub const FRAME_OUTCOME: u8 = 2;

/// An append-only, fsync-durable decision journal.
pub struct Journal {
    file: BufWriter<File>,
}

impl Journal {
    /// Creates (truncating) the journal and writes the header frame.
    pub fn create(path: &Path, cfg: &CtlConfig, initial: &CtlState) -> io::Result<Journal> {
        let file = fsutil::create_durable(path, true)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fsutil::sync_dir(dir)?;
        }
        let mut journal = Journal {
            file: BufWriter::new(file),
        };
        let mut doc = Json::obj();
        doc.set("config", cfg.to_json());
        doc.set("format", 1u64);
        doc.set("initial", initial.to_json());
        journal.append(FRAME_HEADER, &doc)?;
        Ok(journal)
    }

    /// Appends one frame and forces it to disk.
    pub fn append(&mut self, kind: u8, doc: &Json) -> io::Result<()> {
        write_frame(&mut self.file, kind, doc.render().as_bytes())?;
        self.file.flush()?;
        self.file.get_ref().sync_data()
    }

    /// Appends a decision frame.
    pub fn append_decision(&mut self, inputs: &TickInputs, decision: &Decision) -> io::Result<()> {
        self.append(FRAME_DECISION, &decision_doc(inputs, decision))
    }

    /// Appends an actuation-outcome frame.
    pub fn append_outcome(&mut self, tick: u64, ok: bool, detail: &str) -> io::Result<()> {
        let mut doc = Json::obj();
        doc.set("detail", detail);
        doc.set("ok", ok);
        doc.set("tick", tick);
        self.append(FRAME_OUTCOME, &doc)
    }
}

/// The decision frame's document.
fn decision_doc(inputs: &TickInputs, decision: &Decision) -> Json {
    let mut doc = Json::obj();
    doc.set("decision", decision.to_json());
    doc.set("inputs", inputs.to_json());
    doc
}

/// One parsed journal entry.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Frame kind (`FRAME_*`).
    pub kind: u8,
    /// The frame's JSON document.
    pub doc: Json,
}

/// Reads every frame of a journal.
pub fn read_journal(path: &Path) -> io::Result<Vec<JournalEntry>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut entries = Vec::new();
    loop {
        match read_frame(&mut reader) {
            Ok(frame) => {
                let text = String::from_utf8_lossy(&frame.payload);
                let doc = Json::parse(&text)
                    .map_err(|e| io::Error::other(format!("journal frame: {e}")))?;
                entries.push(JournalEntry {
                    kind: frame.kind,
                    doc,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
    }
    Ok(entries)
}

/// Replays journal entries through `decide` with an explicit planner:
/// header and outcome frames pass through (re-rendered — a no-op for
/// frames this module wrote), decision frames are *recomputed* from
/// their recorded inputs. Returns `(kind, payload)` pairs ready to
/// frame.
pub fn replay_with(
    entries: &[JournalEntry],
    planner: &dyn PerformanceModel,
    checker: Option<&dyn PerformanceModel>,
) -> Result<Vec<(u8, String)>, String> {
    let header = entries
        .first()
        .filter(|e| e.kind == FRAME_HEADER)
        .ok_or("journal does not start with a header frame")?;
    let cfg = CtlConfig::from_json(header.doc.get("config").ok_or("header lacks 'config'")?)?;
    let mut state =
        CtlState::from_json(header.doc.get("initial").ok_or("header lacks 'initial'")?)?;
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        match entry.kind {
            FRAME_DECISION => {
                let inputs = TickInputs::from_json(
                    entry.doc.get("inputs").ok_or("decision lacks 'inputs'")?,
                )?;
                let (decision, next) = decide(&cfg, planner, checker, &state, &inputs);
                state = next;
                out.push((FRAME_DECISION, decision_doc(&inputs, &decision).render()));
            }
            _ => out.push((entry.kind, entry.doc.render())),
        }
    }
    Ok(out)
}

/// Replays `src` into `dst` using the paper-mode models named by the
/// journal's own header. When `decide` is pure (it is) and the models
/// are deterministic (paper mode is), `dst` is byte-identical to `src`
/// minus any difference in actuation outcomes — and since outcomes are
/// copied verbatim, byte-identical outright.
pub fn replay_file(src: &Path, dst: &Path) -> io::Result<usize> {
    let entries = read_journal(src)?;
    let header = entries
        .first()
        .filter(|e| e.kind == FRAME_HEADER)
        .ok_or_else(|| io::Error::other("journal does not start with a header frame"))?;
    let cfg = header
        .doc
        .get("config")
        .ok_or_else(|| io::Error::other("header lacks 'config'"))
        .and_then(|c| CtlConfig::from_json(c).map_err(io::Error::other))?;
    let models = Models::paper(&Default::default());
    let frames = replay_with(
        &entries,
        models.planner(cfg.method),
        Some(models.checker(cfg.method)),
    )
    .map_err(io::Error::other)?;
    let file = fsutil::create_durable(dst, true)?;
    let mut writer = BufWriter::new(file);
    for (kind, payload) in &frames {
        write_frame(&mut writer, *kind, payload.as_bytes())?;
    }
    writer.flush()?;
    writer.get_ref().sync_data()?;
    if let Some(dir) = dst.parent().filter(|d| !d.as_os_str().is_empty()) {
        fsutil::sync_dir(dir)?;
    }
    Ok(frames.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrape::NodeScrape;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("perfpred-ctl-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn frames_round_trip_and_outcomes_pass_through() {
        let path = tmp("roundtrip.journal");
        let cfg = CtlConfig::default();
        let initial = CtlState::starting_at(1);
        let mut j = Journal::create(&path, &cfg, &initial).unwrap();
        j.append_outcome(0, true, "noop").unwrap();
        drop(j);
        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, FRAME_HEADER);
        assert_eq!(
            CtlConfig::from_json(entries[0].doc.get("config").unwrap()).unwrap(),
            cfg
        );
        assert_eq!(entries[1].kind, FRAME_OUTCOME);
        assert_eq!(entries[1].doc.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn replay_reproduces_a_recorded_run_byte_for_byte() {
        // Plan with the real paper models so replay_file's reconstruction
        // matches what was journalled.
        let models = Models::paper(&Default::default());
        let cfg = CtlConfig {
            goal_ms: 120.0,
            threshold: 0.05,
            ..CtlConfig::default()
        };
        let planner = models.planner(cfg.method);
        let checker = Some(models.checker(cfg.method));
        let mut state = CtlState::starting_at(1);
        let path = tmp("replay-src.journal");
        let mut j = Journal::create(&path, &cfg, &state).unwrap();
        for tick in 0..6u64 {
            let rps = if tick < 3 { 5.0 } else { 60.0 };
            let inputs = TickInputs {
                tick,
                nodes: vec![NodeScrape {
                    ok: true,
                    total_rps: rps,
                    browse_rps: rps,
                    threshold: cfg.threshold,
                    ..NodeScrape::down("127.0.0.1:7001")
                }],
            };
            let (decision, next) = decide(&cfg, planner, checker, &state, &inputs);
            j.append_decision(&inputs, &decision).unwrap();
            j.append_outcome(tick, true, "dry").unwrap();
            state = next;
        }
        drop(j);
        let dst = tmp("replay-dst.journal");
        let n = replay_file(&path, &dst).unwrap();
        assert_eq!(n, 13, "header + 6 decisions + 6 outcomes");
        let a = std::fs::read(&path).unwrap();
        let b = std::fs::read(&dst).unwrap();
        assert_eq!(a, b, "replay must be byte-identical");
    }
}
