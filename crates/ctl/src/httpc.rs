//! A minimal one-shot HTTP/1.1 client for the control loop.
//!
//! Every control-plane exchange is a single request/response pair against
//! a daemon we also wrote, so the client stays deliberately small:
//! `Connection: close`, bounded timeouts on connect/read/write, and a
//! length-tolerant reader that accepts both `Content-Length` bodies and
//! close-delimited ones.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on response bytes buffered from one scrape target; a
/// `/metrics` page is tens of KB, anything past this is misbehaving.
const MAX_RESPONSE_BYTES: usize = 4 * 1024 * 1024;

/// One parsed response: status code and body.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response body, UTF-8-lossy decoded.
    pub body: String,
}

impl HttpReply {
    /// True for any 2xx status.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address resolved");
    for sockaddr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sockaddr, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn exchange(addr: &str, request: &[u8], timeout: Duration) -> std::io::Result<HttpReply> {
    let mut stream = connect(addr, timeout)?;
    stream.write_all(request)?;
    let mut raw = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if raw.len() > MAX_RESPONSE_BYTES {
                    return Err(std::io::Error::other("response too large"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let text = String::from_utf8_lossy(raw);
    let header_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("truncated response head"))?;
    let status = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    Ok(HttpReply {
        status,
        body: text[header_end + 4..].to_string(),
    })
}

/// `GET path` against `addr` (a `host:port` string).
pub fn get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<HttpReply> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    exchange(addr, request.as_bytes(), timeout)
}

/// `POST path` with a JSON body against `addr`.
pub fn post_json(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, request.as_bytes(), timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let r = parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hi");
        assert!(r.ok());
        let e = parse_reply(b"HTTP/1.1 503 Unavailable\r\n\r\n").unwrap();
        assert!(!e.ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
