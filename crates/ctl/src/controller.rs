//! The control loop: scrape → decide → journal → actuate, once per tick.
//!
//! The loop is deliberately thin — all judgement lives in the pure
//! [`decide`] function, all side effects in [`crate::actuate`] — so the
//! journalled decision stream is a complete causal record: anything the
//! controller did can be traced to a decision frame, and every decision
//! frame can be recomputed from its recorded inputs.

use crate::actuate::{self, NodeLauncher};
use crate::journal::Journal;
use crate::plan::{decide, ActionKind, CtlConfig, CtlState, Decision, TickInputs};
use crate::scrape;
use perfpred_core::PerformanceModel;
use std::io;
use std::path::Path;
use std::time::Duration;

/// The running control plane.
pub struct Controller<'m> {
    /// Planning configuration.
    pub cfg: CtlConfig,
    planner: &'m dyn PerformanceModel,
    checker: Option<&'m dyn PerformanceModel>,
    /// Hysteresis state.
    pub state: CtlState,
    /// Managed node addresses, in spawn order.
    pub nodes: Vec<String>,
    /// Router admin address, when a router fronts the tier.
    pub router: Option<String>,
    launcher: Box<dyn NodeLauncher>,
    journal: Journal,
    /// Log decisions without actuating.
    pub dry_run: bool,
    /// Per-request scrape/actuation timeout.
    pub timeout: Duration,
    /// Settle time between removing a node from the router and draining
    /// it (lets in-flight requests finish on the old topology).
    pub drain_settle: Duration,
    /// Next node index handed to the launcher (monotonic, so respawned
    /// nodes never reuse a port file).
    next_index: u32,
}

impl<'m> Controller<'m> {
    /// Builds a controller over `nodes` and writes the journal header.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: CtlConfig,
        planner: &'m dyn PerformanceModel,
        checker: Option<&'m dyn PerformanceModel>,
        nodes: Vec<String>,
        router: Option<String>,
        launcher: Box<dyn NodeLauncher>,
        journal_path: &Path,
        dry_run: bool,
    ) -> io::Result<Controller<'m>> {
        let state = CtlState::starting_at((nodes.len() as u32).max(1));
        let journal = Journal::create(journal_path, &cfg, &state)?;
        let next_index = nodes.len() as u32;
        Ok(Controller {
            cfg,
            planner,
            checker,
            state,
            nodes,
            router,
            launcher,
            journal,
            dry_run,
            timeout: Duration::from_secs(2),
            drain_settle: Duration::from_millis(300),
            next_index,
        })
    }

    /// Scrapes every managed node.
    fn scrape_tick(&self, tick: u64) -> TickInputs {
        TickInputs {
            tick,
            nodes: self
                .nodes
                .iter()
                .map(|addr| scrape::scrape_node(addr, self.timeout))
                .collect(),
        }
    }

    /// One control tick: scrape, decide, journal, actuate.
    pub fn tick(&mut self, tick: u64) -> io::Result<Decision> {
        let inputs = self.scrape_tick(tick);
        let (decision, next) = decide(&self.cfg, self.planner, self.checker, &self.state, &inputs);
        self.journal.append_decision(&inputs, &decision)?;
        if self.dry_run {
            // Dry-run still advances hysteresis state so the journalled
            // schedule shows what a live controller would have done.
            self.state = next;
            return Ok(decision);
        }
        let (ok, detail) = self.actuate(&decision);
        self.journal.append_outcome(tick, ok, &detail)?;
        self.state = next;
        Ok(decision)
    }

    /// Applies a decision to the tier. Failures are reported in the
    /// outcome (and the next tick's scrape sees reality), never panics.
    fn actuate(&mut self, decision: &Decision) -> (bool, String) {
        let mut ok = true;
        let mut notes: Vec<String> = Vec::new();
        for addr in &decision.threshold_syncs {
            match actuate::push_threshold(addr, self.cfg.threshold, self.timeout) {
                Ok(()) => notes.push(format!("threshold {addr}")),
                Err(e) => {
                    ok = false;
                    notes.push(format!("threshold {addr} failed: {e}"));
                }
            }
        }
        match decision.action.kind {
            ActionKind::Hold => {}
            ActionKind::ScaleUp => {
                for _ in self.nodes.len()..decision.action.to as usize {
                    let index = self.next_index;
                    self.next_index += 1;
                    match self.launcher.spawn(index) {
                        Ok(addr) => {
                            if !actuate::wait_healthy(&addr, Duration::from_secs(15)) {
                                ok = false;
                                notes.push(format!("spawned {addr} never became healthy"));
                                continue;
                            }
                            if let Err(e) =
                                actuate::push_threshold(&addr, self.cfg.threshold, self.timeout)
                            {
                                notes.push(format!("threshold {addr} failed: {e}"));
                            }
                            notes.push(format!("spawned {addr}"));
                            self.nodes.push(addr);
                        }
                        Err(e) => {
                            ok = false;
                            notes.push(format!("spawn failed: {e}"));
                            break;
                        }
                    }
                }
                if let Err(e) = self.sync_router() {
                    ok = false;
                    notes.push(format!("router reload failed: {e}"));
                }
            }
            ActionKind::ScaleDown => {
                let keep = (decision.action.to as usize).max(1);
                let victims = self.nodes.split_off(keep.min(self.nodes.len()));
                // Zero-loss order: router first, then drain.
                if let Err(e) = self.sync_router() {
                    ok = false;
                    notes.push(format!("router reload failed: {e}"));
                }
                if !victims.is_empty() {
                    std::thread::sleep(self.drain_settle);
                }
                for victim in victims {
                    match self.launcher.drain(&victim) {
                        Ok(()) => notes.push(format!("drained {victim}")),
                        Err(e) => {
                            ok = false;
                            notes.push(format!("drain of {victim} failed: {e}"));
                        }
                    }
                }
            }
        }
        (ok, notes.join("; "))
    }

    /// Pushes the current node set to the router.
    fn sync_router(&self) -> io::Result<()> {
        match &self.router {
            Some(router) => actuate::reload_router(router, &self.nodes, self.timeout),
            None => Ok(()),
        }
    }

    /// Runs the loop: one tick every `interval`, stopping after
    /// `max_ticks` when nonzero.
    pub fn run(&mut self, interval: Duration, max_ticks: u64) -> io::Result<()> {
        let mut tick = 0u64;
        loop {
            let decision = self.tick(tick)?;
            if decision.action.kind != ActionKind::Hold {
                eprintln!(
                    "perfpred-ctl: tick {tick}: {} {} -> {} ({})",
                    decision.action.kind.name(),
                    decision.action.from,
                    decision.action.to,
                    decision.action.reason
                );
            }
            tick += 1;
            if max_ticks > 0 && tick >= max_ticks {
                return Ok(());
            }
            std::thread::sleep(interval);
        }
    }
}

/// Folds a synthetic scrape trace through `decide`, journalling each
/// tick — the offline twin of [`Controller::run`] used by tests and the
/// hysteresis analysis. Returns the decision sequence.
pub fn run_trace(
    cfg: &CtlConfig,
    planner: &dyn PerformanceModel,
    checker: Option<&dyn PerformanceModel>,
    initial: CtlState,
    trace: &[TickInputs],
    journal_path: &Path,
) -> io::Result<Vec<Decision>> {
    let mut journal = Journal::create(journal_path, cfg, &initial)?;
    let mut state = initial;
    let mut decisions = Vec::with_capacity(trace.len());
    for inputs in trace {
        let (decision, next) = decide(cfg, planner, checker, &state, inputs);
        journal.append_decision(inputs, &decision)?;
        state = next;
        decisions.push(decision);
    }
    Ok(decisions)
}
