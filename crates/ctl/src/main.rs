//! `perfpred-ctl` — the predictive autoscaling control plane.

use perfpred_core::CacheOptions;
use perfpred_ctl::actuate::{HttpLauncher, NodeLauncher, ProcessLauncher};
use perfpred_ctl::models::{Models, PlanMethod, WhatIfMode};
use perfpred_ctl::plan::CtlConfig;
use perfpred_ctl::{replay_file, Controller};
use perfpred_resman::online::ReplicaBounds;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
perfpred-ctl: predictive control plane for the perfpred serving cluster

USAGE:
  perfpred-ctl [--nodes a:p,b:p] [--router addr] [OPTIONS]
  perfpred-ctl --replay IN --journal OUT

PLANNING:
  --goal-ms F            SLA response-time goal, ms        [3000]
  --threshold F          admission margin in [0, 1)        [0.05]
  --think-ms F           client think time for Little's law [7000]
  --server NAME          tier architecture                  [AppServF]
  --method M             planning model: hybrid | lqns      [hybrid]
  --whatif W             validation: off | predict | sim    [predict]
  --min-replicas N       replica floor                      [1]
  --max-replicas N       replica ceiling                    [8]

HYSTERESIS:
  --scale-up-ticks N     consecutive ticks before growing   [2]
  --scale-down-ticks N   consecutive ticks before shrinking [4]
  --up-cooldown-ticks N  ticks between scale-ups            [3]
  --down-cooldown-ticks N ticks between scale-downs         [3]

RUNTIME:
  --nodes LIST           comma-separated initial node addresses
  --router ADDR          router admin address (upstream reloads)
  --tick-ms N            control tick interval, ms          [1000]
  --max-ticks N          stop after N ticks (0 = forever)   [0]
  --journal PATH         decision journal        [perfpred-ctl.journal]
  --spawn-cmd TMPL       node launch command; {port_file} and {index}
                         are substituted (whitespace-split, no quoting)
  --spawn-dir DIR        port-file directory for --spawn-cmd [temp dir]
  --dry-run              decide and journal, never actuate
  --replay IN            recompute decisions from journal IN into
                         --journal and exit (byte-identical check)
";

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args::default();
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    fn parsed<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        s.parse().map_err(|e| format!("{flag}: {e}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--goal-ms" => out.cfg.goal_ms = parsed(&value("--goal-ms", &mut args)?, "--goal-ms")?,
            "--threshold" => {
                out.cfg.threshold = parsed(&value("--threshold", &mut args)?, "--threshold")?
            }
            "--think-ms" => {
                out.cfg.think_ms = parsed(&value("--think-ms", &mut args)?, "--think-ms")?
            }
            "--server" => out.cfg.server = value("--server", &mut args)?,
            "--method" => out.cfg.method = PlanMethod::parse(&value("--method", &mut args)?)?,
            "--whatif" => out.cfg.whatif = WhatIfMode::parse(&value("--whatif", &mut args)?)?,
            "--min-replicas" => {
                out.min = parsed(&value("--min-replicas", &mut args)?, "--min-replicas")?
            }
            "--max-replicas" => {
                out.max = parsed(&value("--max-replicas", &mut args)?, "--max-replicas")?
            }
            "--scale-up-ticks" => {
                out.cfg.scale_up_ticks =
                    parsed(&value("--scale-up-ticks", &mut args)?, "--scale-up-ticks")?
            }
            "--scale-down-ticks" => {
                out.cfg.scale_down_ticks = parsed(
                    &value("--scale-down-ticks", &mut args)?,
                    "--scale-down-ticks",
                )?
            }
            "--up-cooldown-ticks" => {
                out.cfg.up_cooldown_ticks = parsed(
                    &value("--up-cooldown-ticks", &mut args)?,
                    "--up-cooldown-ticks",
                )?
            }
            "--down-cooldown-ticks" => {
                out.cfg.down_cooldown_ticks = parsed(
                    &value("--down-cooldown-ticks", &mut args)?,
                    "--down-cooldown-ticks",
                )?
            }
            "--nodes" => {
                out.nodes = value("--nodes", &mut args)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--router" => out.router = Some(value("--router", &mut args)?),
            "--tick-ms" => out.tick_ms = parsed(&value("--tick-ms", &mut args)?, "--tick-ms")?,
            "--max-ticks" => {
                out.max_ticks = parsed(&value("--max-ticks", &mut args)?, "--max-ticks")?
            }
            "--journal" => out.journal = PathBuf::from(value("--journal", &mut args)?),
            "--spawn-cmd" => out.spawn_cmd = Some(value("--spawn-cmd", &mut args)?),
            "--spawn-dir" => out.spawn_dir = Some(PathBuf::from(value("--spawn-dir", &mut args)?)),
            "--dry-run" => out.dry_run = true,
            "--replay" => out.replay = Some(PathBuf::from(value("--replay", &mut args)?)),
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    Ok(out)
}

struct Args {
    cfg: CtlConfig,
    min: u32,
    max: u32,
    nodes: Vec<String>,
    router: Option<String>,
    tick_ms: u64,
    max_ticks: u64,
    journal: PathBuf,
    spawn_cmd: Option<String>,
    spawn_dir: Option<PathBuf>,
    dry_run: bool,
    replay: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            cfg: CtlConfig::default(),
            min: 1,
            max: 8,
            nodes: Vec::new(),
            router: None,
            tick_ms: 1_000,
            max_ticks: 0,
            journal: PathBuf::from("perfpred-ctl.journal"),
            spawn_cmd: None,
            spawn_dir: None,
            dry_run: false,
            replay: None,
        }
    }
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if let Some(src) = &args.replay {
        match replay_file(src, &args.journal) {
            Ok(n) => {
                println!(
                    "replayed {n} frames from {} into {}",
                    src.display(),
                    args.journal.display()
                );
                return;
            }
            Err(e) => {
                eprintln!("perfpred-ctl: replay failed: {e}");
                std::process::exit(1);
            }
        }
    }

    args.cfg.bounds = match ReplicaBounds::new(args.min, args.max) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfpred-ctl: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = args.cfg.server_arch() {
        eprintln!("perfpred-ctl: {e}");
        std::process::exit(2);
    }
    if args.nodes.is_empty() {
        eprintln!("perfpred-ctl: need at least one --nodes address\n\n{USAGE}");
        std::process::exit(2);
    }

    let launcher: Box<dyn NodeLauncher> = match &args.spawn_cmd {
        Some(template) => {
            let dir = args.spawn_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("perfpred-ctl-{}", std::process::id()))
            });
            Box::new(ProcessLauncher::new(template, dir))
        }
        None => Box::new(HttpLauncher {
            timeout: Duration::from_secs(2),
        }),
    };

    let models = Models::paper(&CacheOptions::default());
    let planner = models.planner(args.cfg.method);
    let checker = Some(models.checker(args.cfg.method));
    eprintln!(
        "perfpred-ctl: {} node(s), method {}, whatif {}, goal {} ms, replicas [{}, {}]{}",
        args.nodes.len(),
        args.cfg.method.name(),
        args.cfg.whatif.name(),
        args.cfg.goal_ms,
        args.cfg.bounds.min,
        args.cfg.bounds.max,
        if args.dry_run { ", dry-run" } else { "" },
    );
    let mut controller = match Controller::new(
        args.cfg,
        planner,
        checker,
        args.nodes,
        args.router,
        launcher,
        &args.journal,
        args.dry_run,
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perfpred-ctl: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = controller.run(Duration::from_millis(args.tick_ms), args.max_ticks) {
        eprintln!("perfpred-ctl: {e}");
        std::process::exit(1);
    }
}
