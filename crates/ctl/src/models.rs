//! The control plane's resident predictors and planning-method dispatch.
//!
//! `perfpred-ctl` plans with one closed-form or solver-backed model and
//! cross-checks proposed allocations with the *other* one (`--whatif
//! predict`): two independently-derived models agreeing is the cheap
//! version of the paper's multi-method comparison, run on every scaling
//! decision instead of once per study. Both sit behind
//! [`PredictionCache`]s, so a steady-state control loop (same estimated
//! population tick after tick) answers its what-ifs from cache.

use perfpred_core::{CacheOptions, PerformanceModel, PredictionCache, ServerArch};
use perfpred_hybrid::HybridModel;
use perfpred_lqns::trade::TradeLqnConfig;
use perfpred_lqns::LqnPredictor;

/// Which model drives the replica plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMethod {
    /// §6 hybrid model (microsecond closed-form solves; the default).
    Hybrid,
    /// §5 layered queuing model (AMVA solve per cache miss).
    Lqns,
}

impl PlanMethod {
    /// Parses the wire name.
    pub fn parse(s: &str) -> Result<PlanMethod, String> {
        match s {
            "hybrid" => Ok(PlanMethod::Hybrid),
            "lqns" | "lqn" | "layered-queuing" => Ok(PlanMethod::Lqns),
            other => Err(format!(
                "unknown method '{other}' (expected hybrid or lqns)"
            )),
        }
    }

    /// The canonical name (journal header, CLI echo).
    pub fn name(self) -> &'static str {
        match self {
            PlanMethod::Hybrid => "hybrid",
            PlanMethod::Lqns => "lqns",
        }
    }
}

/// How a proposed allocation is validated before actuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIfMode {
    /// No validation pass.
    Off,
    /// Re-predict the proposed per-replica share with the *other* model.
    Predict,
    /// Short discrete-event simulation of the proposed share.
    Sim,
}

impl WhatIfMode {
    /// Parses the wire name.
    pub fn parse(s: &str) -> Result<WhatIfMode, String> {
        match s {
            "off" | "none" => Ok(WhatIfMode::Off),
            "predict" => Ok(WhatIfMode::Predict),
            "sim" => Ok(WhatIfMode::Sim),
            other => Err(format!(
                "unknown what-if mode '{other}' (expected off, predict or sim)"
            )),
        }
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            WhatIfMode::Off => "off",
            WhatIfMode::Predict => "predict",
            WhatIfMode::Sim => "sim",
        }
    }
}

/// Resolves a case-study server architecture by its wire name.
pub fn server_arch(name: &str) -> Option<ServerArch> {
    ServerArch::case_study_servers()
        .into_iter()
        .find(|s| s.name == name)
}

/// The daemon's two resident models, each behind a cache.
pub struct Models {
    /// §5 layered queuing predictor.
    pub lqns: PredictionCache<LqnPredictor>,
    /// §6 hybrid model, calibrated from the LQN (paper mode).
    pub hybrid: PredictionCache<HybridModel>,
}

impl Models {
    /// Paper-mode models: Table 2 LQN plus a hybrid calibrated purely
    /// from LQN solves — fully deterministic, which is what makes journal
    /// replay byte-identical across runs and machines.
    pub fn paper(cache: &CacheOptions) -> Models {
        let lqn = LqnPredictor::new(TradeLqnConfig::paper_table2());
        let servers = ServerArch::case_study_servers();
        let hybrid = HybridModel::advanced(&lqn, &servers, &Default::default())
            .expect("hybrid calibration from the paper LQN");
        Models {
            lqns: PredictionCache::with_options(lqn, cache.clone()),
            hybrid: PredictionCache::with_options(hybrid, cache.clone()),
        }
    }

    /// The model that drives the plan.
    pub fn planner(&self, method: PlanMethod) -> &dyn PerformanceModel {
        match method {
            PlanMethod::Hybrid => &self.hybrid,
            PlanMethod::Lqns => &self.lqns,
        }
    }

    /// The cross-check model for `--whatif predict`: whichever one is
    /// *not* planning.
    pub fn checker(&self, method: PlanMethod) -> &dyn PerformanceModel {
        match method {
            PlanMethod::Hybrid => &self.lqns,
            PlanMethod::Lqns => &self.hybrid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in [PlanMethod::Hybrid, PlanMethod::Lqns] {
            assert_eq!(PlanMethod::parse(m.name()).unwrap(), m);
        }
        for w in [WhatIfMode::Off, WhatIfMode::Predict, WhatIfMode::Sim] {
            assert_eq!(WhatIfMode::parse(w.name()).unwrap(), w);
        }
        assert!(PlanMethod::parse("psychic").is_err());
        assert!(WhatIfMode::parse("maybe").is_err());
    }

    #[test]
    fn server_archs_resolve_by_name() {
        assert_eq!(server_arch("AppServF").unwrap().name, "AppServF");
        assert!(server_arch("AppServNope").is_none());
    }

    #[test]
    fn paper_models_answer_and_disagree_slightly() {
        let models = Models::paper(&CacheOptions::default());
        let server = server_arch("AppServF").unwrap();
        let w = perfpred_core::Workload::typical(100);
        let a = models
            .planner(PlanMethod::Hybrid)
            .predict(&server, &w)
            .unwrap();
        let b = models
            .checker(PlanMethod::Hybrid)
            .predict(&server, &w)
            .unwrap();
        assert!(a.mrt_ms > 0.0 && b.mrt_ms > 0.0);
        // Two different methods, one calibrated from the other: close but
        // not the same object.
        assert!(
            (a.mrt_ms - b.mrt_ms).abs() / b.mrt_ms < 0.5,
            "{} vs {}",
            a.mrt_ms,
            b.mrt_ms
        );
    }
}
