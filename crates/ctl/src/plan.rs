//! The decision core: a *pure* function from (configuration, controller
//! state, one tick of scrapes) to (decision, next state).
//!
//! Everything observable about a tick is inside [`TickInputs`]; nothing
//! in here reads clocks, RNGs (the what-if simulation seed is derived
//! from the tick index) or ambient state. That purity is the contract
//! behind the decision journal: replaying recorded inputs through
//! [`decide`] reproduces the decision sequence byte for byte.
//!
//! The planning rule is §9's, specialised to a homogeneous tier by
//! [`perfpred_resman::online::plan_replicas`]: estimate the client
//! population from the tier's smoothed arrival rate via Little's law
//! (`N = λ · (Z + R)`), split it per replica, and pick the smallest
//! replica count whose predicted response times clear every SLA goal by
//! the admission margin. Hysteresis (consecutive-tick streaks plus
//! per-direction cooldowns) keeps a noisy boundary estimate from
//! flapping the tier.

use crate::models::{server_arch, PlanMethod, WhatIfMode};
use crate::scrape::NodeScrape;
use perfpred_core::workload::{ClassLoad, RequestType, ServiceClass};
use perfpred_core::{Json, PerformanceModel, ServerArch, Workload};
use perfpred_resman::online::{meets_goals, plan_replicas, ReplicaBounds};

/// Control-plane configuration (journalled in the header frame, so a
/// replay reconstructs the exact planner).
#[derive(Debug, Clone, PartialEq)]
pub struct CtlConfig {
    /// SLA response-time goal applied to every class, ms.
    pub goal_ms: f64,
    /// Admission margin: plans must clear `goal × (1 − threshold)`; also
    /// pushed to every node's admission controller.
    pub threshold: f64,
    /// Client think time for the Little's-law population estimate, ms.
    pub think_ms: f64,
    /// Server architecture the tier runs on (wire name, e.g. "AppServF").
    pub server: String,
    /// Planning model.
    pub method: PlanMethod,
    /// Validation pass for proposed allocations.
    pub whatif: WhatIfMode,
    /// Replica-count bounds.
    pub bounds: ReplicaBounds,
    /// Consecutive ticks the plan must demand *more* replicas before a
    /// scale-up actuates.
    pub scale_up_ticks: u32,
    /// Consecutive ticks the plan must demand *fewer* replicas before a
    /// scale-down actuates.
    pub scale_down_ticks: u32,
    /// Ticks after a scale-up during which another scale-up is refused.
    pub up_cooldown_ticks: u32,
    /// Ticks after a scale-down during which another scale-down is
    /// refused.
    pub down_cooldown_ticks: u32,
}

impl Default for CtlConfig {
    fn default() -> Self {
        CtlConfig {
            goal_ms: 3_000.0,
            threshold: 0.05,
            think_ms: 7_000.0,
            server: "AppServF".into(),
            method: PlanMethod::Hybrid,
            whatif: WhatIfMode::Predict,
            bounds: ReplicaBounds::new(1, 8).expect("static bounds"),
            scale_up_ticks: 2,
            scale_down_ticks: 4,
            up_cooldown_ticks: 3,
            down_cooldown_ticks: 3,
        }
    }
}

impl CtlConfig {
    /// Renders the configuration for the journal header.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("goal_ms", self.goal_ms);
        o.set("threshold", self.threshold);
        o.set("think_ms", self.think_ms);
        o.set("server", self.server.as_str());
        o.set("method", self.method.name());
        o.set("whatif", self.whatif.name());
        o.set("min_replicas", u64::from(self.bounds.min));
        o.set("max_replicas", u64::from(self.bounds.max));
        o.set("scale_up_ticks", u64::from(self.scale_up_ticks));
        o.set("scale_down_ticks", u64::from(self.scale_down_ticks));
        o.set("up_cooldown_ticks", u64::from(self.up_cooldown_ticks));
        o.set("down_cooldown_ticks", u64::from(self.down_cooldown_ticks));
        o
    }

    /// Parses a journalled configuration back (replay path).
    pub fn from_json(j: &Json) -> Result<CtlConfig, String> {
        let f = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("config needs numeric '{k}'"))
        };
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_u32)
                .ok_or(format!("config needs integer '{k}'"))
        };
        Ok(CtlConfig {
            goal_ms: f("goal_ms")?,
            threshold: f("threshold")?,
            think_ms: f("think_ms")?,
            server: j
                .get("server")
                .and_then(Json::as_str)
                .ok_or("config needs 'server'")?
                .to_string(),
            method: PlanMethod::parse(
                j.get("method")
                    .and_then(Json::as_str)
                    .ok_or("config needs 'method'")?,
            )?,
            whatif: WhatIfMode::parse(
                j.get("whatif")
                    .and_then(Json::as_str)
                    .ok_or("config needs 'whatif'")?,
            )?,
            bounds: ReplicaBounds::new(u("min_replicas")?, u("max_replicas")?)
                .map_err(|e| e.to_string())?,
            scale_up_ticks: u("scale_up_ticks")?,
            scale_down_ticks: u("scale_down_ticks")?,
            up_cooldown_ticks: u("up_cooldown_ticks")?,
            down_cooldown_ticks: u("down_cooldown_ticks")?,
        })
    }

    /// The server architecture this configuration plans for.
    pub fn server_arch(&self) -> Result<ServerArch, String> {
        server_arch(&self.server).ok_or_else(|| format!("unknown server '{}'", self.server))
    }
}

/// The hysteresis state carried between ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlState {
    /// Replica count the controller last actuated (the intent, not the
    /// scrape — a node can die without the controller having shrunk).
    pub replicas: u32,
    /// Consecutive ticks the plan demanded more replicas.
    pub up_streak: u32,
    /// Consecutive ticks the plan demanded fewer replicas.
    pub down_streak: u32,
    /// Ticks remaining before another scale-up is allowed.
    pub up_cooldown: u32,
    /// Ticks remaining before another scale-down is allowed.
    pub down_cooldown: u32,
}

impl CtlState {
    /// Fresh state for a tier currently at `replicas`.
    pub fn starting_at(replicas: u32) -> CtlState {
        CtlState {
            replicas,
            up_streak: 0,
            down_streak: 0,
            up_cooldown: 0,
            down_cooldown: 0,
        }
    }

    /// Renders the state (journal header's `initial`, decision records'
    /// `state_after`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("replicas", u64::from(self.replicas));
        o.set("up_streak", u64::from(self.up_streak));
        o.set("down_streak", u64::from(self.down_streak));
        o.set("up_cooldown", u64::from(self.up_cooldown));
        o.set("down_cooldown", u64::from(self.down_cooldown));
        o
    }

    /// Parses a journalled state back.
    pub fn from_json(j: &Json) -> Result<CtlState, String> {
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_u32)
                .ok_or(format!("state needs integer '{k}'"))
        };
        Ok(CtlState {
            replicas: u("replicas")?,
            up_streak: u("up_streak")?,
            down_streak: u("down_streak")?,
            up_cooldown: u("up_cooldown")?,
            down_cooldown: u("down_cooldown")?,
        })
    }
}

/// One tick's observations.
#[derive(Debug, Clone, PartialEq)]
pub struct TickInputs {
    /// Tick index (monotonic from 0).
    pub tick: u64,
    /// One scrape per managed node.
    pub nodes: Vec<NodeScrape>,
}

impl TickInputs {
    /// Renders the inputs for the journal.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("tick", self.tick);
        o.set(
            "nodes",
            Json::Arr(self.nodes.iter().map(NodeScrape::to_json).collect()),
        );
        o
    }

    /// Parses journalled inputs back.
    pub fn from_json(j: &Json) -> Result<TickInputs, String> {
        let tick = j
            .get("tick")
            .and_then(Json::as_f64)
            .ok_or("inputs need 'tick'")? as u64;
        let mut nodes = Vec::new();
        for n in j
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("inputs need 'nodes'")?
        {
            nodes.push(NodeScrape::from_json(n)?);
        }
        Ok(TickInputs { tick, nodes })
    }
}

/// What the controller decided to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Keep the tier as it is.
    Hold,
    /// Grow the tier.
    ScaleUp,
    /// Shrink the tier.
    ScaleDown,
}

impl ActionKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ActionKind::Hold => "hold",
            ActionKind::ScaleUp => "scale_up",
            ActionKind::ScaleDown => "scale_down",
        }
    }
}

/// The chosen action with its replica transition and reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Hold, scale up, or scale down.
    pub kind: ActionKind,
    /// Replica count before.
    pub from: u32,
    /// Replica count after (equals `from` for holds).
    pub to: u32,
    /// Why (stable, journalled string).
    pub reason: String,
}

/// A what-if validation verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfVerdict {
    /// The mode that produced the verdict.
    pub mode: WhatIfMode,
    /// The proposed share cleared every goal under the check.
    pub ok: bool,
    /// Checked workload mean response time, ms (when the check produced
    /// one).
    pub mrt_ms: Option<f64>,
}

/// One tick's full decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Tick index.
    pub tick: u64,
    /// Tier-wide smoothed arrival rate, req/s.
    pub total_rps: f64,
    /// Buy fraction of the arrival mix, `[0, 1]`.
    pub buy_share: f64,
    /// Observed mean `/predict` latency across live nodes, ms.
    pub observed_mrt_ms: f64,
    /// Little's-law client population estimate.
    pub est_clients: u32,
    /// The planner's proposed replica count.
    pub target: u32,
    /// The proposed count meets every goal per the planning model.
    pub feasible: bool,
    /// Planning model's predicted workload mrt at the proposed count, ms.
    pub predicted_mrt_ms: Option<f64>,
    /// Validation verdict (only when an action was proposed and a
    /// what-if mode is on).
    pub whatif: Option<WhatIfVerdict>,
    /// The action taken.
    pub action: Action,
    /// Live nodes whose admission threshold disagrees with the
    /// configured one (the actuator re-pushes it to these).
    pub threshold_syncs: Vec<String>,
    /// Hysteresis state after this tick.
    pub state_after: CtlState,
}

impl Decision {
    /// Renders the decision for the journal.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("tick", self.tick);
        o.set("total_rps", self.total_rps);
        o.set("buy_share", self.buy_share);
        o.set("observed_mrt_ms", self.observed_mrt_ms);
        o.set("est_clients", u64::from(self.est_clients));
        o.set("target", u64::from(self.target));
        o.set("feasible", self.feasible);
        match self.predicted_mrt_ms {
            Some(v) => o.set("predicted_mrt_ms", v),
            None => o.set("predicted_mrt_ms", Json::Null),
        };
        match &self.whatif {
            Some(w) => {
                let mut wo = Json::obj();
                wo.set("mode", w.mode.name());
                wo.set("ok", w.ok);
                match w.mrt_ms {
                    Some(v) => wo.set("mrt_ms", v),
                    None => wo.set("mrt_ms", Json::Null),
                };
                o.set("whatif", wo)
            }
            None => o.set("whatif", Json::Null),
        };
        let mut a = Json::obj();
        a.set("kind", self.action.kind.name());
        a.set("from", u64::from(self.action.from));
        a.set("to", u64::from(self.action.to));
        a.set("reason", self.action.reason.as_str());
        o.set("action", a);
        o.set(
            "threshold_syncs",
            Json::Arr(
                self.threshold_syncs
                    .iter()
                    .map(|s| Json::from(s.as_str()))
                    .collect(),
            ),
        );
        o.set("state_after", self.state_after.to_json());
        o
    }
}

/// Derived load picture for one tick.
fn observe(inputs: &TickInputs) -> (f64, f64, f64) {
    let live: Vec<&NodeScrape> = inputs
        .nodes
        .iter()
        .filter(|n| n.ok && !n.draining)
        .collect();
    let total_rps: f64 = live.iter().map(|n| n.total_rps).sum();
    let browse: f64 = live.iter().map(|n| n.browse_rps).sum();
    let buy: f64 = live.iter().map(|n| n.buy_rps).sum();
    let buy_share = if browse + buy > 0.0 {
        buy / (browse + buy)
    } else {
        0.0
    };
    // Rate-weighted observed latency; plain mean when the tier is idle.
    let observed_mrt_ms = if total_rps > 0.0 {
        live.iter()
            .map(|n| n.predict_p50_ms * n.total_rps)
            .sum::<f64>()
            / total_rps
    } else if live.is_empty() {
        0.0
    } else {
        live.iter().map(|n| n.predict_p50_ms).sum::<f64>() / live.len() as f64
    };
    (total_rps, buy_share, observed_mrt_ms)
}

/// The workload the planner sizes for: the estimated population split
/// into browse/buy classes by the observed arrival mix, every class
/// carrying the configured SLA goal and think time.
pub fn control_workload(cfg: &CtlConfig, est_clients: u32, buy_share: f64) -> Workload {
    let buy = ((f64::from(est_clients) * buy_share).round() as u32).min(est_clients);
    let class = |name: &str, request_type, clients| ClassLoad {
        class: ServiceClass {
            name: name.into(),
            request_type,
            think_time_ms: cfg.think_ms,
            rt_goal_ms: Some(cfg.goal_ms),
        },
        clients,
    };
    Workload {
        classes: vec![
            class("browse", RequestType::Browse, est_clients - buy),
            class("buy", RequestType::Buy, buy),
        ],
    }
}

/// Runs the configured what-if check on the proposed per-replica share.
fn run_whatif(
    cfg: &CtlConfig,
    checker: Option<&dyn PerformanceModel>,
    server: &ServerArch,
    share: &Workload,
    tick: u64,
) -> Option<WhatIfVerdict> {
    match cfg.whatif {
        WhatIfMode::Off => None,
        WhatIfMode::Predict => {
            let checker = checker?;
            match checker.predict(server, share) {
                Ok(p) => Some(WhatIfVerdict {
                    mode: WhatIfMode::Predict,
                    ok: meets_goals(share, &p, cfg.threshold),
                    mrt_ms: Some(p.mrt_ms),
                }),
                Err(_) => Some(WhatIfVerdict {
                    mode: WhatIfMode::Predict,
                    ok: false,
                    mrt_ms: None,
                }),
            }
        }
        WhatIfMode::Sim => {
            // A short deterministic simulation: the seed is a pure
            // function of the tick, so replay reproduces the verdict.
            let opts = perfpred_tradesim::SimOptions {
                seed: perfpred_desim_seed(tick),
                warmup_ms: 2_000.0,
                measure_ms: 8_000.0,
                ..Default::default()
            };
            let gt = perfpred_tradesim::GroundTruth::default();
            let point = perfpred_tradesim::run(&gt, server, share, &opts);
            let bar = cfg.goal_ms * (1.0 - cfg.threshold);
            let ok =
                share.classes.iter().zip(&point.classes).all(|(load, m)| {
                    load.clients == 0 || (m.mrt_ms.is_finite() && m.mrt_ms <= bar)
                });
            Some(WhatIfVerdict {
                mode: WhatIfMode::Sim,
                ok,
                mrt_ms: Some(point.mrt_ms),
            })
        }
    }
}

/// SplitMix64 of the tick index: a deterministic, well-spread simulation
/// seed without touching a clock or RNG.
fn perfpred_desim_seed(tick: u64) -> u64 {
    // Constant offset so tick 0 doesn't seed with 0.
    0x9e37_79b9_7f4a_7c15u64.wrapping_add(tick)
}

/// The §9 control decision for one tick. Pure: equal `(cfg, state,
/// inputs)` (and models — the paper-mode models are deterministic) give
/// equal `(Decision, CtlState)`.
pub fn decide(
    cfg: &CtlConfig,
    planner: &dyn PerformanceModel,
    checker: Option<&dyn PerformanceModel>,
    state: &CtlState,
    inputs: &TickInputs,
) -> (Decision, CtlState) {
    let server = cfg.server_arch().expect("config was validated at build");
    let (total_rps, buy_share, observed_mrt_ms) = observe(inputs);
    let est_clients = (total_rps * (cfg.think_ms + observed_mrt_ms) / 1_000.0)
        .round()
        .max(0.0) as u32;
    let workload = control_workload(cfg, est_clients, buy_share);

    let mut next = *state;
    next.up_cooldown = next.up_cooldown.saturating_sub(1);
    next.down_cooldown = next.down_cooldown.saturating_sub(1);

    let threshold_syncs: Vec<String> = inputs
        .nodes
        .iter()
        .filter(|n| n.ok && !n.draining && (n.threshold - cfg.threshold).abs() > 1e-9)
        .map(|n| n.addr.clone())
        .collect();

    let (target, feasible, predicted_mrt_ms, share) =
        match plan_replicas(planner, &server, &workload, cfg.bounds, cfg.threshold) {
            Ok(plan) => (
                plan.replicas,
                plan.feasible,
                plan.prediction.as_ref().map(|p| p.mrt_ms),
                plan.per_replica.clone(),
            ),
            Err(e) => {
                // Unplannable tick: hold, record why, reset streaks.
                next.up_streak = 0;
                next.down_streak = 0;
                let decision = Decision {
                    tick: inputs.tick,
                    total_rps,
                    buy_share,
                    observed_mrt_ms,
                    est_clients,
                    target: state.replicas,
                    feasible: false,
                    predicted_mrt_ms: None,
                    whatif: None,
                    action: Action {
                        kind: ActionKind::Hold,
                        from: state.replicas,
                        to: state.replicas,
                        reason: format!("plan_error: {e}"),
                    },
                    threshold_syncs,
                    state_after: next,
                };
                return (decision, next);
            }
        };

    // Streak bookkeeping.
    if target > state.replicas {
        next.up_streak += 1;
        next.down_streak = 0;
    } else if target < state.replicas {
        next.down_streak += 1;
        next.up_streak = 0;
    } else {
        next.up_streak = 0;
        next.down_streak = 0;
    }

    let mut whatif = None;
    let mut action = Action {
        kind: ActionKind::Hold,
        from: state.replicas,
        to: state.replicas,
        reason: "steady".into(),
    };

    if target > state.replicas {
        if next.up_streak < cfg.scale_up_ticks {
            action.reason = format!("up_streak {}/{}", next.up_streak, cfg.scale_up_ticks);
        } else if next.up_cooldown > 0 {
            action.reason = format!("up_cooldown {}", next.up_cooldown);
        } else {
            // Adding capacity can only relax response times; the what-if
            // is recorded but cannot veto a scale-up.
            whatif = run_whatif(cfg, checker, &server, &share, inputs.tick);
            action = Action {
                kind: ActionKind::ScaleUp,
                from: state.replicas,
                to: target,
                reason: if feasible {
                    "plan".into()
                } else {
                    "plan_infeasible_max".into()
                },
            };
            next.replicas = target;
            next.up_streak = 0;
            next.up_cooldown = cfg.up_cooldown_ticks;
        }
    } else if target < state.replicas {
        if next.down_streak < cfg.scale_down_ticks {
            action.reason = format!("down_streak {}/{}", next.down_streak, cfg.scale_down_ticks);
        } else if next.down_cooldown > 0 {
            action.reason = format!("down_cooldown {}", next.down_cooldown);
        } else {
            whatif = run_whatif(cfg, checker, &server, &share, inputs.tick);
            let vetoed = whatif.as_ref().is_some_and(|w| !w.ok);
            if vetoed {
                action.reason = "whatif_veto".into();
                next.down_streak = 0;
            } else {
                action = Action {
                    kind: ActionKind::ScaleDown,
                    from: state.replicas,
                    to: target,
                    reason: "plan".into(),
                };
                next.replicas = target;
                next.down_streak = 0;
                next.down_cooldown = cfg.down_cooldown_ticks;
            }
        }
    }

    let decision = Decision {
        tick: inputs.tick,
        total_rps,
        buy_share,
        observed_mrt_ms,
        est_clients,
        target,
        feasible,
        predicted_mrt_ms,
        whatif,
        action,
        threshold_syncs,
        state_after: next,
    };
    (decision, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_core::{PredictError, Prediction};

    /// mrt = base + per_client × clients, per class.
    pub struct LinearModel {
        pub base_ms: f64,
        pub per_client_ms: f64,
    }

    impl PerformanceModel for LinearModel {
        fn method_name(&self) -> &str {
            "linear-test"
        }
        fn predict(
            &self,
            _server: &ServerArch,
            workload: &Workload,
        ) -> Result<Prediction, PredictError> {
            let per_class: Vec<f64> = workload
                .classes
                .iter()
                .map(|c| self.base_ms + self.per_client_ms * f64::from(c.clients))
                .collect();
            let mrt = per_class.iter().copied().fold(0.0f64, f64::max);
            Ok(Prediction {
                mrt_ms: mrt,
                per_class_mrt_ms: per_class,
                throughput_rps: 0.0,
                utilization: None,
                saturated: false,
            })
        }
    }

    fn scrape(rps: f64) -> NodeScrape {
        NodeScrape {
            ok: true,
            total_rps: rps,
            browse_rps: rps,
            threshold: 0.05,
            ..NodeScrape::down("n:1")
        }
    }

    fn cfg() -> CtlConfig {
        CtlConfig {
            goal_ms: 100.0,
            threshold: 0.0,
            think_ms: 7_000.0,
            scale_up_ticks: 2,
            scale_down_ticks: 2,
            up_cooldown_ticks: 2,
            down_cooldown_ticks: 2,
            whatif: WhatIfMode::Off,
            ..CtlConfig::default()
        }
    }

    // Capacity: goal 100, base 10, slope 1 ⇒ ≤ 90 clients per replica.
    fn model() -> LinearModel {
        LinearModel {
            base_ms: 10.0,
            per_client_ms: 1.0,
        }
    }

    #[test]
    fn scale_up_needs_a_streak_and_then_fires() {
        let cfg = cfg();
        let m = model();
        let mut state = CtlState::starting_at(1);
        // 30 req/s × 7 s ⇒ ~210 clients ⇒ ceil(210/r) ≤ 90 ⇒ target 3.
        let inputs = |tick| TickInputs {
            tick,
            nodes: vec![scrape(30.0)],
        };
        let (d1, s1) = decide(&cfg, &m, None, &state, &inputs(0));
        assert_eq!(d1.target, 3);
        assert_eq!(d1.action.kind, ActionKind::Hold);
        assert_eq!(s1.up_streak, 1);
        state = s1;
        let (d2, s2) = decide(&cfg, &m, None, &state, &inputs(1));
        assert_eq!(d2.action.kind, ActionKind::ScaleUp);
        assert_eq!(d2.action.to, 3);
        assert_eq!(s2.replicas, 3);
        assert_eq!(s2.up_cooldown, cfg.up_cooldown_ticks);
    }

    #[test]
    fn scale_down_respects_streak_and_cooldown() {
        let cfg = cfg();
        let m = model();
        let mut state = CtlState::starting_at(3);
        state.down_cooldown = 1;
        let idle = |tick| TickInputs {
            tick,
            nodes: vec![scrape(1.0)],
        };
        // Tick 0: cooldown just expired this tick, streak 1/2 ⇒ hold.
        let (d0, s0) = decide(&cfg, &m, None, &state, &idle(0));
        assert_eq!(d0.action.kind, ActionKind::Hold);
        state = s0;
        let (d1, s1) = decide(&cfg, &m, None, &state, &idle(1));
        assert_eq!(d1.action.kind, ActionKind::ScaleDown);
        assert_eq!(d1.action.to, 1);
        assert_eq!(s1.replicas, 1);
    }

    #[test]
    fn whatif_predict_vetoes_a_scale_down_the_checker_rejects() {
        let mut cfg = cfg();
        cfg.whatif = WhatIfMode::Predict;
        cfg.scale_down_ticks = 1;
        let planner = model(); // thinks 1 replica is plenty
        let pessimist = LinearModel {
            base_ms: 500.0, // checker: nothing fits
            per_client_ms: 1.0,
        };
        let state = CtlState::starting_at(3);
        let inputs = TickInputs {
            tick: 0,
            nodes: vec![scrape(1.0)],
        };
        let (d, s) = decide(&cfg, &planner, Some(&pessimist), &state, &inputs);
        assert_eq!(d.action.kind, ActionKind::Hold);
        assert_eq!(d.action.reason, "whatif_veto");
        assert_eq!(s.replicas, 3, "veto keeps the tier");
        assert!(d.whatif.as_ref().is_some_and(|w| !w.ok));
    }

    #[test]
    fn threshold_drift_is_flagged_for_sync() {
        let cfg = cfg(); // cfg.threshold = 0.0
        let m = model();
        let state = CtlState::starting_at(1);
        let mut n = scrape(1.0);
        n.threshold = 0.2;
        let (d, _) = decide(
            &cfg,
            &m,
            None,
            &state,
            &TickInputs {
                tick: 0,
                nodes: vec![n],
            },
        );
        assert_eq!(d.threshold_syncs, vec!["n:1".to_string()]);
    }

    #[test]
    fn config_and_state_round_trip_through_json() {
        let cfg = CtlConfig::default();
        assert_eq!(CtlConfig::from_json(&cfg.to_json()).unwrap(), cfg);
        let state = CtlState {
            replicas: 4,
            up_streak: 1,
            down_streak: 0,
            up_cooldown: 2,
            down_cooldown: 0,
        };
        assert_eq!(CtlState::from_json(&state.to_json()).unwrap(), state);
        let inputs = TickInputs {
            tick: 9,
            nodes: vec![scrape(12.5), NodeScrape::down("b:2")],
        };
        assert_eq!(TickInputs::from_json(&inputs.to_json()).unwrap(), inputs);
    }
}
