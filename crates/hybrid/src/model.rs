//! The assembled hybrid model.

use crate::pseudo::generate_observations;
use perfpred_core::{PerformanceModel, PredictError, Prediction, ServerArch, Workload};
use perfpred_hydra::HistoricalModel;
use perfpred_lqns::LqnPredictor;
use std::time::{Duration, Instant};

/// Options for hybrid calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridOptions {
    /// Pseudo points for the lower equation per server (§6: max 4).
    pub n_lower: usize,
    /// Pseudo points for the upper equation per server.
    pub n_upper: usize,
    /// Buy percentages at which relationship 3 is calibrated from the LQN.
    /// The paper calibrates at 0 % and 25 % on AppServF; the default here
    /// covers the full range because the resource manager's greedy
    /// allocation creates pure-buy servers, where a 0–25 % line
    /// extrapolates poorly.
    pub r3_buy_pcts: Vec<f64>,
    /// Mean client think time, ms.
    pub think_ms: f64,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            n_lower: 2,
            n_upper: 2,
            r3_buy_pcts: vec![0.0, 25.0, 50.0, 100.0],
            think_ms: 7_000.0,
        }
    }
}

/// Accounting for the hybrid method's one-off start-up cost (§8.5: "as
/// short as an 11 second delay" on the paper's hardware; afterwards
/// "predictions are almost instantaneous").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupReport {
    /// LQN solves performed during calibration.
    pub lqn_solves: usize,
    /// Pseudo data points generated.
    pub pseudo_points: usize,
    /// Wall-clock calibration time.
    pub elapsed: Duration,
}

/// The hybrid model: a [`HistoricalModel`] whose "historical" data came
/// from a layered queuing model.
#[derive(Debug, Clone)]
pub struct HybridModel {
    historical: HistoricalModel,
    startup: StartupReport,
    advanced: bool,
}

impl HybridModel {
    /// Builds an **advanced** hybrid model (§6): pseudo data is generated
    /// for every *target* architecture, so each is treated as established.
    pub fn advanced(
        predictor: &LqnPredictor,
        target_servers: &[ServerArch],
        opts: &HybridOptions,
    ) -> Result<Self, PredictError> {
        Self::build(predictor, target_servers, opts, true)
    }

    /// Builds a **basic** hybrid model: pseudo data only for the
    /// `established_servers`; other architectures go through
    /// relationship 2.
    pub fn basic(
        predictor: &LqnPredictor,
        established_servers: &[ServerArch],
        opts: &HybridOptions,
    ) -> Result<Self, PredictError> {
        Self::build(predictor, established_servers, opts, false)
    }

    fn build(
        predictor: &LqnPredictor,
        servers: &[ServerArch],
        opts: &HybridOptions,
        advanced: bool,
    ) -> Result<Self, PredictError> {
        if servers.is_empty() {
            return Err(PredictError::Calibration(
                "hybrid calibration needs at least one server".into(),
            ));
        }
        let start = Instant::now();
        let mut solves = 0usize;
        let mut points = 0usize;
        let mut builder = HistoricalModel::builder().think_time_ms(opts.think_ms);

        for server in servers {
            let (obs, s) = generate_observations(
                predictor,
                server,
                opts.n_lower,
                opts.n_upper,
                opts.think_ms,
            )?;
            solves += s;
            points += obs.point_count();
            builder = builder.observations(obs);
        }

        // Relationship 3 from LQN max throughputs at the configured buy
        // mixes on the first (reference) server.
        if opts.r3_buy_pcts.len() >= 2 {
            let reference = &servers[0];
            let mut r3 = Vec::with_capacity(opts.r3_buy_pcts.len());
            for &b in &opts.r3_buy_pcts {
                let template = Workload::with_buy_pct(1_000, b);
                let mx = predictor.max_throughput_rps(reference, &template)?;
                solves += 16;
                r3.push((b, mx));
            }
            builder = builder.r3_points(&r3);
        }

        // Class deviation factors from one two-class LQN solve at a
        // moderate load on the reference server.
        {
            let reference = &servers[0];
            let w = Workload::with_buy_pct(800, 25.0);
            let p = predictor.predict(reference, &w)?;
            solves += 1;
            if p.mrt_ms > 0.0 && p.per_class_mrt_ms.len() == 2 {
                builder = builder.class_deviation(
                    p.per_class_mrt_ms[0] / p.mrt_ms,
                    p.per_class_mrt_ms[1] / p.mrt_ms,
                );
            }
        }

        let historical = builder.build()?;
        Ok(HybridModel {
            historical,
            startup: StartupReport {
                lqn_solves: solves,
                pseudo_points: points,
                elapsed: start.elapsed(),
            },
            advanced,
        })
    }

    /// The start-up cost incurred building this model.
    pub fn startup(&self) -> StartupReport {
        self.startup
    }

    /// Whether this is the advanced variant.
    pub fn is_advanced(&self) -> bool {
        self.advanced
    }

    /// The underlying historical model.
    pub fn historical(&self) -> &HistoricalModel {
        &self.historical
    }
}

impl PerformanceModel for HybridModel {
    fn method_name(&self) -> &str {
        "hybrid"
    }

    fn predict(
        &self,
        server: &ServerArch,
        workload: &Workload,
    ) -> Result<Prediction, PredictError> {
        self.historical.predict(server, workload)
    }

    fn max_clients(
        &self,
        server: &ServerArch,
        template: &Workload,
        rt_goal_ms: f64,
    ) -> Result<u32, PredictError> {
        self.historical.max_clients(server, template, rt_goal_ms)
    }

    /// The pseudo data is generated from *mean-value* LQN solutions, so
    /// direct percentile recording is impossible (§8.2: a limitation the
    /// hybrid method inherits from the layered queuing method).
    fn supports_direct_percentiles(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_core::accuracy_pct;
    use perfpred_lqns::trade::TradeLqnConfig;

    fn predictor() -> LqnPredictor {
        LqnPredictor::new(TradeLqnConfig::paper_table2())
    }

    fn servers() -> Vec<ServerArch> {
        ServerArch::case_study_servers()
    }

    #[test]
    fn advanced_hybrid_tracks_the_lqn() {
        let pred = predictor();
        let hybrid = HybridModel::advanced(&pred, &servers(), &HybridOptions::default()).unwrap();
        assert!(hybrid.is_advanced());
        // The paper reports hybrid accuracy similar to the LQN's; compare
        // the two methods directly across the operating range.
        for server in servers() {
            for frac in [0.3, 0.6, 1.3] {
                let n_star = pred
                    .max_throughput_rps(&server, &Workload::typical(100))
                    .unwrap()
                    * 7.0;
                let n = (n_star * frac) as u32;
                let lqn = pred.predict(&server, &Workload::typical(n)).unwrap().mrt_ms;
                let hyb = hybrid
                    .predict(&server, &Workload::typical(n))
                    .unwrap()
                    .mrt_ms;
                assert!(
                    accuracy_pct(hyb, lqn) > 60.0,
                    "{} at {n}: hybrid {hyb} vs lqn {lqn}",
                    server.name
                );
            }
        }
    }

    #[test]
    fn startup_report_counts_work() {
        let hybrid =
            HybridModel::advanced(&predictor(), &servers(), &HybridOptions::default()).unwrap();
        let s = hybrid.startup();
        // 3 servers × 4 points + R3 + deviation solves.
        assert!(s.pseudo_points >= 12, "points {}", s.pseudo_points);
        assert!(s.lqn_solves > s.pseudo_points);
        assert!(s.elapsed.as_nanos() > 0);
    }

    #[test]
    fn basic_hybrid_extrapolates_new_architecture() {
        let pred = predictor();
        let established = vec![ServerArch::app_serv_f(), ServerArch::app_serv_vf()];
        let hybrid = HybridModel::basic(&pred, &established, &HybridOptions::default()).unwrap();
        assert!(!hybrid.is_advanced());
        // AppServS was never given pseudo data: relationship 2 handles it.
        let p = hybrid
            .predict(&ServerArch::app_serv_s(), &Workload::typical(300))
            .unwrap();
        assert!(p.mrt_ms > 0.0);
        assert!(p.throughput_rps > 0.0);
    }

    #[test]
    fn heterogeneous_predictions_supported() {
        let hybrid =
            HybridModel::advanced(&predictor(), &servers(), &HybridOptions::default()).unwrap();
        let w = Workload::with_buy_pct(1_000, 25.0);
        let p = hybrid.predict(&ServerArch::app_serv_s(), &w).unwrap();
        assert_eq!(p.per_class_mrt_ms.len(), 2);
        // Buy class slower than browse (deviation factors from the LQN).
        assert!(p.per_class_mrt_ms[1] > p.per_class_mrt_ms[0]);
    }

    #[test]
    fn no_direct_percentiles() {
        let hybrid =
            HybridModel::advanced(&predictor(), &servers()[..1], &HybridOptions::default())
                .unwrap();
        assert!(!hybrid.supports_direct_percentiles());
        assert_eq!(hybrid.method_name(), "hybrid");
    }

    #[test]
    fn empty_server_list_rejected() {
        assert!(HybridModel::advanced(&predictor(), &[], &HybridOptions::default()).is_err());
    }

    #[test]
    fn max_clients_is_closed_form_consistent() {
        let hybrid =
            HybridModel::advanced(&predictor(), &servers(), &HybridOptions::default()).unwrap();
        let f = ServerArch::app_serv_f();
        let n = hybrid
            .max_clients(&f, &Workload::typical(100), 200.0)
            .unwrap();
        let at = hybrid.predict(&f, &Workload::typical(n)).unwrap().mrt_ms;
        assert!(at <= 200.0 + 1e-6);
    }
}
