//! Pseudo-historical data generation from a layered queuing model.

use perfpred_core::{PerformanceModel, PredictError, ServerArch, Workload};
use perfpred_hydra::{ServerObservations, TRANSITION_HIGH, TRANSITION_LOW};
use perfpred_lqns::LqnPredictor;

/// Placement of generated points, as fractions of the max-throughput load:
/// lower-equation points end at the transition edge (66 %), upper-equation
/// points start at the other edge (110 %) — the anchor choice §4.2's
/// supporting experiments use.
const LOWER_START: f64 = 0.15;
const UPPER_END: f64 = 1.60;

/// Generates a [`ServerObservations`] set for `server` by evaluating the
/// layered queuing model at `n_lower` points below the transition region
/// and `n_upper` points above it (the paper's advanced model uses "a
/// maximum of 4 historical data points for the lower and upper relationship
/// 1 equations", §6).
///
/// Returns the observations and the number of LQN solves performed (the
/// quantity behind the hybrid start-up delay).
pub fn generate_observations(
    predictor: &LqnPredictor,
    server: &ServerArch,
    n_lower: usize,
    n_upper: usize,
    think_ms: f64,
) -> Result<(ServerObservations, usize), PredictError> {
    if n_lower < 2 || n_upper < 2 {
        return Err(PredictError::Calibration(
            "need at least two pseudo points per equation".into(),
        ));
    }
    let mut solves = 0usize;

    // Benchmark the architecture's max throughput with the LQN itself.
    let template = Workload::typical(100);
    let mx = predictor.max_throughput_rps(server, &template)?;
    solves += 16; // the search budget (upper bound; see LqnPredictor docs)

    let m = 1_000.0 / think_ms; // the §4.1 think-time-derived gradient
    let n_star = mx / m;

    let mut obs = ServerObservations::new(server.name.clone(), mx);
    for i in 0..n_lower {
        let frac = LOWER_START + (TRANSITION_LOW - LOWER_START) * i as f64 / (n_lower as f64 - 1.0);
        let clients = (frac * n_star).round().max(1.0);
        let p = predictor.predict(server, &Workload::typical(clients as u32))?;
        solves += 1;
        obs.lower_points
            .push(perfpred_hydra::DataPoint::new(clients, p.mrt_ms));
        obs.throughput_points.push((clients, p.throughput_rps));
    }
    for i in 0..n_upper {
        let frac =
            TRANSITION_HIGH + (UPPER_END - TRANSITION_HIGH) * i as f64 / (n_upper as f64 - 1.0);
        let clients = (frac * n_star).round();
        let p = predictor.predict(server, &Workload::typical(clients as u32))?;
        solves += 1;
        obs.upper_points
            .push(perfpred_hydra::DataPoint::new(clients, p.mrt_ms));
    }
    Ok((obs, solves))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_lqns::trade::TradeLqnConfig;

    fn predictor() -> LqnPredictor {
        LqnPredictor::new(TradeLqnConfig::paper_table2())
    }

    #[test]
    fn generates_requested_point_counts() {
        let (obs, solves) =
            generate_observations(&predictor(), &ServerArch::app_serv_f(), 2, 2, 7_000.0).unwrap();
        assert_eq!(obs.lower_points.len(), 2);
        assert_eq!(obs.upper_points.len(), 2);
        assert!(solves >= 4);
        // Max throughput benchmarked near the Table 2 CPU bound (≈222).
        assert!(
            (obs.max_throughput_rps - 222.0).abs() < 8.0,
            "mx {}",
            obs.max_throughput_rps
        );
    }

    #[test]
    fn lower_points_below_transition_upper_above() {
        let (obs, _) =
            generate_observations(&predictor(), &ServerArch::app_serv_f(), 3, 3, 7_000.0).unwrap();
        let n_star = obs.max_throughput_rps / (1_000.0 / 7_000.0);
        for p in &obs.lower_points {
            assert!(p.clients <= TRANSITION_LOW * n_star + 1.0);
        }
        for p in &obs.upper_points {
            assert!(p.clients >= TRANSITION_HIGH * n_star - 1.0);
        }
        // Response times increase with load.
        assert!(obs.upper_points[0].mrt_ms > obs.lower_points[0].mrt_ms);
    }

    #[test]
    fn rejects_insufficient_points() {
        assert!(
            generate_observations(&predictor(), &ServerArch::app_serv_f(), 1, 2, 7_000.0).is_err()
        );
    }
}
