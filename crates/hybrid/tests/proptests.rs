//! Property-style tests for the hybrid method: its predictions must be
//! physical (finite, positive, monotone in load) for arbitrary plausible
//! LQN calibrations, and its throughput must saturate at the LQN's own
//! capacity bound.

use perfpred_core::{PerformanceModel, ServerArch, Workload};
use perfpred_hybrid::{HybridModel, HybridOptions};
use perfpred_lqns::solve::SolverOptions;
use perfpred_lqns::trade::{RequestTypeParams, TradeLqnConfig};
use perfpred_lqns::LqnPredictor;

/// Minimal xorshift64* generator for deterministic case sweeps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

fn config(browse_app: f64, buy_factor: f64, db_demand: f64) -> TradeLqnConfig {
    TradeLqnConfig {
        browse: RequestTypeParams {
            app_demand_ms: browse_app,
            db_demand_ms: db_demand,
            db_calls: 1.14,
            disk_demand_ms: 0.0,
        },
        buy: RequestTypeParams {
            app_demand_ms: browse_app * buy_factor,
            db_demand_ms: db_demand * 1.9,
            db_calls: 2.0,
            disk_demand_ms: 0.0,
        },
        app_threads: 50,
        db_connections: 20,
        reference_speed: 1.0,
        solver: SolverOptions::default(),
    }
}

/// For random calibrations, the advanced hybrid is buildable and its
/// predictions behave physically across the operating range.
#[test]
fn hybrid_predictions_stay_physical() {
    let mut rng = Rng::new(0x8B_0001);
    for _ in 0..8 {
        let browse_app = rng.range(2.0, 12.0);
        let buy_factor = rng.range(1.2, 3.0);
        let db_demand = rng.range(0.2, 2.0);
        let lqn = LqnPredictor::new(config(browse_app, buy_factor, db_demand));
        let server = ServerArch::app_serv_f();
        let hybrid = HybridModel::advanced(
            &lqn,
            std::slice::from_ref(&server),
            &HybridOptions {
                r3_buy_pcts: vec![],
                ..Default::default()
            },
        )
        .unwrap();

        let capacity = 1_000.0 / browse_app.max(db_demand * 1.14); // app or db bound
        let n_star = capacity * 7.0;
        let mut last = 0.0;
        for frac in [0.2, 0.5, 0.8, 1.2, 1.5] {
            let n = (n_star * frac) as u32;
            let p = hybrid.predict(&server, &Workload::typical(n)).unwrap();
            assert!(p.mrt_ms.is_finite() && p.mrt_ms > 0.0, "mrt {}", p.mrt_ms);
            assert!(p.mrt_ms >= last * 0.9, "mrt fell {} -> {}", last, p.mrt_ms);
            last = p.mrt_ms;
            assert!(
                p.throughput_rps <= capacity * 1.1,
                "X {} above capacity {}",
                p.throughput_rps,
                capacity
            );
        }
    }
}

/// The start-up report grows with the number of target architectures.
#[test]
fn startup_scales_with_servers() {
    let mut rng = Rng::new(0x8B_0002);
    for _ in 0..4 {
        let browse_app = rng.range(3.0, 8.0);
        let lqn = LqnPredictor::new(config(browse_app, 1.9, 1.0));
        let opts = HybridOptions {
            r3_buy_pcts: vec![],
            ..Default::default()
        };
        let one = HybridModel::advanced(&lqn, &[ServerArch::app_serv_f()], &opts).unwrap();
        let three = HybridModel::advanced(&lqn, &ServerArch::case_study_servers(), &opts).unwrap();
        assert!(three.startup().pseudo_points > one.startup().pseudo_points);
        assert!(three.startup().lqn_solves > one.startup().lqn_solves);
    }
}
