//! The parallel scheduler's headline guarantee: a run with `--jobs N`
//! produces byte-identical reports to a serial run. Each experiment is a
//! pure function of the shared context (per-cell sweep seeds, scoped
//! metrics, no cross-experiment solver state), so worker count and
//! completion order must not leak into any report.

use perfpred_bench::{runner, Experiments};

/// A representative subset: `table1` drives simulator measurement
/// campaigns (parallel sweeps inside a scheduled experiment), `table2`
/// the LQN calibration and solver, `open` the mixed open/closed solver
/// against simulated open traffic.
const IDS: [&str; 3] = ["table1", "table2", "open"];

fn reports(jobs: usize) -> Vec<(String, String)> {
    // A fresh context per run: nothing carries over, not even lazy
    // calibrations, so the comparison covers those campaigns too.
    let ctx = Experiments::quick(42);
    let summary = runner::run_experiments(&ctx, &IDS, jobs, |_| {});
    assert_eq!(summary.jobs, jobs.min(IDS.len()));
    summary
        .outcomes
        .into_iter()
        .map(|o| {
            let report = o.report.unwrap_or_else(|| panic!("{} must run", o.id));
            (o.id, report)
        })
        .collect()
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let serial = reports(1);
    let parallel = reports(4);
    assert_eq!(
        serial.len(),
        parallel.len(),
        "same experiments must complete"
    );
    for ((sid, sreport), (pid, preport)) in serial.iter().zip(&parallel) {
        assert_eq!(sid, pid, "paper order must be preserved");
        assert_eq!(
            sreport, preport,
            "{sid}: --jobs 4 report differs from serial"
        );
    }
}
