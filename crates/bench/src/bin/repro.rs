//! `repro` — regenerates every table and figure of the paper against the
//! simulated testbed.
//!
//! ```text
//! repro all              # everything, in paper order
//! repro fig2 table1      # just these
//! repro --list           # available experiment ids
//! ```
//!
//! Reports are printed and mirrored under `results/<id>.txt`. The RNG seed
//! can be overridden with `PERFPRED_SEED`.

use perfpred_bench::experiments;
use perfpred_bench::report::save;
use perfpred_bench::Experiments;
use perfpred_core::metrics;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let seed = std::env::var("PERFPRED_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(perfpred_bench::context::DEFAULT_SEED);
    let ctx = Experiments::new(seed);
    println!("perfpred repro (seed {seed})\n");

    let mut failed = false;
    for id in ids {
        // Per-experiment instrumentation window. Note the shared context's
        // calibrations are lazy, so the first experiment's report includes
        // the calibration campaign's solver/simulator activity.
        metrics::reset();
        let start = Instant::now();
        match experiments::run(&ctx, id) {
            Some(report) => {
                println!("================ {id} ================");
                println!("{report}");
                let snap = metrics::snapshot();
                if !snap.is_empty() {
                    println!("---- metrics ----");
                    print!("{}", snap.render());
                }
                println!("[{id} completed in {:.1?}]\n", start.elapsed());
                save(id, &report);
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
