//! `repro` — regenerates every table and figure of the paper against the
//! simulated testbed.
//!
//! ```text
//! repro all              # everything, in paper order
//! repro fig2 table1      # just these
//! repro --list           # available experiment ids
//! repro all --jobs 4     # schedule experiments on 4 workers
//! repro all --quick      # smoke mode: short simulations, temp results
//! ```
//!
//! Independent experiments are scheduled on a work-stealing thread pool
//! (`--jobs N`, or `PERFPRED_JOBS`, default = available parallelism);
//! reports are printed and mirrored under `results/<id>.txt` in paper
//! order regardless of completion order, and are byte-identical for any
//! worker count. The RNG seed can be overridden with `PERFPRED_SEED`;
//! `PERFPRED_RESULTS_DIR` redirects the report mirror. Wall-clock and
//! per-experiment solver/cache activity land in the `section.repro` slice
//! of `BENCH.json` (path override: `PERFPRED_BENCH_JSON`).

use perfpred_bench::json::Json;
use perfpred_bench::report::save;
use perfpred_bench::timing::{available_parallelism, bench_json_path, Recorder};
use perfpred_bench::{experiments, runner, Experiments};

fn main() {
    let mut jobs_arg: Option<usize> = None;
    let mut quick = false;
    let mut list = false;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--quick" => quick = true,
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs_arg = Some(n),
                None => {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            },
            _ => {
                if let Some(n) = arg.strip_prefix("--jobs=").and_then(|v| v.parse().ok()) {
                    jobs_arg = Some(n);
                } else {
                    ids.push(arg);
                }
            }
        }
    }
    if list {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let all = ids.is_empty() || ids.iter().any(|a| a == "all");
    let ids: Vec<&str> = if all {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let seed = std::env::var("PERFPRED_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(perfpred_bench::context::DEFAULT_SEED);
    let jobs = runner::resolve_jobs(jobs_arg);
    let ctx = if quick {
        // Smoke mode: short simulations, and (unless the caller already
        // redirected it) keep the measurement-grade results/ mirror
        // untouched.
        if std::env::var_os("PERFPRED_RESULTS_DIR").is_none() {
            std::env::set_var(
                "PERFPRED_RESULTS_DIR",
                std::env::temp_dir().join("perfpred-quick-results"),
            );
        }
        Experiments::quick(seed)
    } else {
        Experiments::new(seed)
    };
    println!(
        "perfpred repro (seed {seed}, jobs {jobs}{})\n",
        if quick { ", quick" } else { "" }
    );

    // Per-experiment metrics come from each experiment's own scope (see
    // runner); the shared context's calibrations are lazy, so whichever
    // experiment first needs one includes that campaign's activity.
    let mut failed = false;
    let summary = runner::run_experiments(&ctx, &ids, jobs, |outcome| match &outcome.report {
        Some(report) => {
            println!("================ {} ================", outcome.id);
            println!("{report}");
            if !outcome.metrics.is_empty() {
                println!("---- metrics ----");
                print!("{}", outcome.metrics.render());
            }
            println!("[{} completed in {:.1?}]\n", outcome.id, outcome.duration);
            save(&outcome.id, report);
        }
        None => {
            eprintln!("unknown experiment id: {} (try --list)", outcome.id);
            failed = true;
        }
    });
    println!(
        "[{} experiments in {:.1?} on {} worker(s)]",
        summary.outcomes.len(),
        summary.wall,
        summary.jobs
    );

    write_trajectory(&summary, all, quick);
    if failed {
        std::process::exit(2);
    }
}

/// Records the run into `section.repro` of BENCH.json: per-experiment
/// wall-clock and solver/cache counters, plus — for full-suite runs —
/// wall-clock keyed by worker count (carried across invocations so a
/// serial and a parallel run yield a measured speedup).
fn write_trajectory(summary: &runner::RunSummary, full_suite: bool, quick: bool) {
    let mut rec = Recorder::new("repro");
    rec.note("jobs", summary.jobs);
    rec.note("quick", quick);
    rec.note("full_suite", full_suite);
    rec.note("wall_s", summary.wall.as_secs_f64());
    rec.note("available_parallelism", available_parallelism());

    let mut rows = Vec::new();
    let mut solves = 0u64;
    let mut amva_iterations = 0u64;
    let (mut hits, mut misses) = (0u64, 0u64);
    for o in &summary.outcomes {
        if o.report.is_none() {
            continue;
        }
        let m = &o.metrics;
        let mut row = Json::obj();
        row.set("id", o.id.as_str());
        row.set("wall_s", o.duration.as_secs_f64());
        row.set("lqns_solves", m.counter("lqns.solves"));
        row.set("mva_solves", m.counter("lqns.mva_solves"));
        row.set("amva_iterations", m.counter("lqns.amva_iterations"));
        row.set("sim_runs", m.counter("tradesim.runs"));
        let (h, mi) = (m.counter("predcache.hits"), m.counter("predcache.misses"));
        row.set("cache_hits", h);
        row.set("cache_misses", mi);
        if h + mi > 0 {
            row.set("cache_hit_rate", h as f64 / (h + mi) as f64);
        }
        solves += m.counter("lqns.solves");
        amva_iterations += m.counter("lqns.amva_iterations");
        hits += h;
        misses += mi;
        rows.push(row);
    }
    rec.note("experiments", Json::Arr(rows));
    rec.note("total_lqns_solves", solves);
    rec.note("total_amva_iterations", amva_iterations);
    if hits + misses > 0 {
        rec.note("cache_hit_rate", hits as f64 / (hits + misses) as f64);
    }

    // Serial-vs-parallel trajectory: only comparable across full-suite
    // measurement-grade runs, keyed by worker count and carried over from
    // the existing file.
    if full_suite && !quick {
        let mut by_jobs = std::fs::read_to_string(bench_json_path())
            .ok()
            .and_then(|t| Json::parse(&t).ok())
            .and_then(|doc| doc.get("section.repro")?.get("wall_s_by_jobs").cloned())
            .filter(|v| matches!(v, Json::Obj(_)))
            .unwrap_or_else(Json::obj);
        by_jobs.set(&summary.jobs.to_string(), summary.wall.as_secs_f64());
        if let Some(serial) = by_jobs.get("1").and_then(Json::as_f64) {
            let best_parallel = by_jobs
                .as_obj_mut()
                .map(|m| {
                    m.iter()
                        .filter(|(k, _)| k.as_str() != "1")
                        .filter_map(|(_, v)| v.as_f64())
                        .fold(f64::INFINITY, f64::min)
                })
                .unwrap_or(f64::INFINITY);
            if best_parallel.is_finite() && best_parallel > 0.0 {
                rec.note("speedup_vs_serial", serial / best_parallel);
            }
        }
        rec.note("wall_s_by_jobs", by_jobs);
    }
    rec.write();
}
