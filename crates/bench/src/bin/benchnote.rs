//! Merges free-form notes into one `BENCH.json` section from the shell.
//!
//! [`perfpred_bench::timing::Recorder`] replaces its section wholesale,
//! which is right for a bench binary that owns its slice but wrong for
//! an orchestrating script that wants to *annotate* a section another
//! process just wrote (the autoscale smoke adds the observed replica
//! trajectory and the journal-replay verdict to the `ctl` section the
//! phased loadgen run created). This tool reads the file, merges the
//! given keys into the named section, and writes it back through the
//! same [`perfpred_core::Json`] renderer, so the file's byte style never
//! depends on which writer touched it last.
//!
//! Usage: `benchnote SECTION KEY=VAL [KEY=VAL ...]`
//!
//! Values that parse as numbers record as numbers, `true`/`false` as
//! booleans, everything else as strings — the same convention as
//! loadgen's `--note`.

use perfpred_bench::timing::bench_json_path;
use perfpred_core::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(section) = args.next().filter(|s| !s.starts_with('-')) else {
        eprintln!("usage: benchnote SECTION KEY=VAL [KEY=VAL ...]");
        std::process::exit(2);
    };
    let pairs: Vec<(String, String)> = args
        .map(|raw| {
            raw.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .unwrap_or_else(|| {
                    eprintln!("benchnote: want KEY=VAL, got '{raw}'");
                    std::process::exit(2);
                })
        })
        .collect();
    if pairs.is_empty() {
        eprintln!("usage: benchnote SECTION KEY=VAL [KEY=VAL ...]");
        std::process::exit(2);
    }

    let path = bench_json_path();
    let mut doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .filter(|d| matches!(d, Json::Obj(_)))
        .unwrap_or_else(Json::obj);
    let key = format!("section.{section}");
    let mut sec = match doc.get(&key) {
        Some(existing @ Json::Obj(_)) => existing.clone(),
        _ => Json::obj(),
    };
    for (k, v) in &pairs {
        match v.as_str() {
            "true" => {
                sec.set(k, true);
            }
            "false" => {
                sec.set(k, false);
            }
            other => match other.parse::<f64>() {
                Ok(n) => {
                    sec.set(k, n);
                }
                Err(_) => {
                    sec.set(k, other);
                }
            },
        }
    }
    doc.set(&key, sec);
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("benchnote: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("[{section} +{} notes -> {}]", pairs.len(), path.display());
}
