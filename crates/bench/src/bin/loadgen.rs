//! Load generator for the `perfpred-serve` daemon: closed-loop by
//! default, open-loop with `--rate`.
//!
//! **Closed loop** — N client threads each run the classic cycle: think
//! (exponential, [`SimRng::exp`]) → `POST /predict` over a keep-alive
//! connection → record the response latency. The key space is a small set
//! of client counts, so after a warm-up pass every request rides the
//! daemon's cache-hit path — the §8.5 "historical predictions answer
//! online" regime the daemon exists for.
//!
//! **Open loop** (`--rate R`) — arrivals follow a seeded Poisson process
//! at R req/s, split evenly across the sender threads, each round-robining
//! over its share of `--connections` keep-alive sockets. Latency is
//! measured from each request's *scheduled* arrival instant, not from the
//! moment the sender got around to writing it, so a stalled server inflates
//! the recorded tail instead of silently pausing the clock (the
//! coordinated-omission trap closed loops fall into). `--idle-connections`
//! additionally parks that many accepted keep-alive sockets for the whole
//! run — the "p99 with 10k idle connections multiplexed" measurement the
//! reactor core exists for. `--phases "rate@secs,..."` generalises the
//! schedule to a piecewise-constant rate — the surge-then-recede shape
//! the autoscaling control plane is demonstrated against — with each
//! phase's p50/p95/p99 reported separately (a sample belongs to the
//! phase its *scheduled* arrival falls in, so attribution is
//! deterministic even when a slow server makes the sender late).
//!
//! Results (throughput, exact p50/p95/p99 from the merged samples,
//! rejection and error rates) are printed and merged into `BENCH.json`
//! under `section.serve` via [`perfpred_bench::timing::Recorder`].
//!
//! With `--report-observations` the generator also closes the daemon's
//! continuous-refit loop: the key space spreads across 0.15–1.55 of the
//! server's saturation point, each prediction's `(clients, mrt_ms,
//! throughput_rps)` is fed back to `POST /observe` in batches, and the
//! run ends by reading `GET /models` to report how many model versions
//! the ingested observations produced.
//!
//! The client speaks raw HTTP/1.1 over `TcpStream` on purpose: the bench
//! crate must not depend on `perfpred-serve` (the daemon depends on this
//! crate for calibration), and a generator that hand-rolls its protocol
//! also exercises the daemon's parser from the outside.

use perfpred_bench::timing::Recorder;
use perfpred_core::Json;
use perfpred_desim::SimRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
loadgen — closed-loop load generator for perfpred-serve

USAGE: loadgen --port N [OPTIONS]

  --addr HOST:PORT     daemon address (default 127.0.0.1:<--port>)
  --port N             daemon port on 127.0.0.1
  --port-file PATH     read the port from a file the daemon wrote
  --clients N          concurrent closed-loop clients, or sender threads
                       in open-loop mode (default 32)
  --duration-s X       measured seconds after warm-up (default 10)
  --think-ms X         mean exponential think time, 0 = none (default 0.5)
  --rate R             OPEN-LOOP mode: Poisson arrivals at R req/s total
                       (seeded, split across sender threads); latency is
                       measured from each request's scheduled arrival
                       instant, so queueing delay shows up in the tail
                       instead of being coordinated-omitted away
  --phases R@S,R@S,... OPEN-LOOP mode with a time-varying schedule: each
                       phase offers R req/s (Poisson) for S seconds, in
                       order. Total duration is the sum of the phases
                       (--duration-s is ignored); latencies are reported
                       per phase (p50/p95/p99) as well as merged. The
                       autoscaling demo drives its 1 -> 3 -> 1 replica
                       cycle with this flag
  --connections N      keep-alive connections round-robined by the open-
                       loop senders (default: one per sender thread)
  --idle-connections N park N extra accepted keep-alive sockets for the
                       whole run (measures multiplexing cost at high
                       connection counts)
  --bench-section NAME BENCH.json section to record under (default serve,
                       serve.observe or serve.chaos by mode)
  --note KEY=VAL       attach an extra note to the BENCH.json section
                       (repeatable; VAL records as a number when it parses
                       as one — lets an orchestrating script embed
                       companion measurements, e.g. a baseline's req/s)
  --method NAME        prediction method to request (default lqns)
  --server NAME        server architecture to ask about (default AppServF)
  --key-space N        distinct client-count keys cycled through (default 4)
  --goal-ms X          attach an SLA goal to every request (exercises
                       admission control; rejections are counted, not errors)
  --seed N             think-time RNG seed (default 1)
  --quick              2 s / 16 clients smoke settings
  --min-rps X          exit 1 unless measured throughput reaches X
  --report-observations
                       feed each prediction back to POST /observe (keys
                       then span 0.15-1.55 of the server's saturation
                       point, and admission control is bypassed so
                       saturated points still answer)
  --min-refits N       exit 1 unless at least N refits were triggered
                       (implies --report-observations)
  --chaos              chaos mode: clients retry transport resets (the
                       daemon may be running with PERFPRED_FAULTS), count
                       degraded-mode answers, and a probe thread fires
                       malformed/oversized requests at fresh connections
                       checking every byte the daemon answers is valid
                       HTTP; results land in BENCH.json under serve.chaos
  --min-availability X exit 1 unless the fraction of requests answered 200
                       reaches X (chaos mode's success-rate floor; with
                       --targets it gates the run without implying chaos)
  --targets A,B,...    CLUSTER mode: closed-loop clients fan out across
                       several daemon addresses (e.g. a router plus the
                       nodes behind it). A transport failure retries the
                       next target — counted as a retry, not an error —
                       so a node death costs latency, not availability.
                       Per-target requests/errors/retries/p99 land in the
                       summary and in BENCH.json (default section:
                       cluster), plus the primary's replication lag read
                       from GET /cluster at the end of the run
  --help               print this text
";

#[derive(Debug, Clone)]
struct Config {
    addr: String,
    clients: usize,
    duration: Duration,
    think_ms: f64,
    method: String,
    server: String,
    key_space: usize,
    goal_ms: Option<f64>,
    seed: u64,
    min_rps: Option<f64>,
    report_observations: bool,
    min_refits: Option<u64>,
    chaos: bool,
    min_availability: Option<f64>,
    rate: Option<f64>,
    /// Open-loop `(rate_rps, seconds)` schedule; empty unless `--phases`.
    phases: Vec<(f64, f64)>,
    connections: usize,
    idle_connections: usize,
    bench_section: Option<String>,
    notes: Vec<(String, String)>,
    targets: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: String::new(),
            clients: 32,
            duration: Duration::from_secs(10),
            think_ms: 0.5,
            method: "lqns".into(),
            server: "AppServF".into(),
            key_space: 4,
            goal_ms: None,
            seed: 1,
            min_rps: None,
            report_observations: false,
            min_refits: None,
            chaos: false,
            min_availability: None,
            rate: None,
            phases: Vec::new(),
            connections: 0,
            idle_connections: 0,
            bench_section: None,
            notes: Vec::new(),
            targets: Vec::new(),
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut args = std::env::args().skip(1);
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn parsed<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag}: cannot parse '{raw}'"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--addr" => cfg.addr = value(&mut args, "--addr")?,
            "--port" => {
                let port: u16 = parsed(&value(&mut args, "--port")?, "--port")?;
                cfg.addr = format!("127.0.0.1:{port}");
            }
            "--port-file" => {
                let path = value(&mut args, "--port-file")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read port file {path}: {e}"))?;
                let port: u16 = parsed(text.trim(), "--port-file")?;
                cfg.addr = format!("127.0.0.1:{port}");
            }
            "--clients" => {
                cfg.clients =
                    parsed::<usize>(&value(&mut args, "--clients")?, "--clients")?.clamp(1, 4096);
            }
            "--duration-s" => {
                let s: f64 = parsed(&value(&mut args, "--duration-s")?, "--duration-s")?;
                if !s.is_finite() || s <= 0.0 {
                    return Err("--duration-s must be positive".into());
                }
                cfg.duration = Duration::from_secs_f64(s);
            }
            "--think-ms" => {
                let t: f64 = parsed(&value(&mut args, "--think-ms")?, "--think-ms")?;
                if !t.is_finite() || t < 0.0 {
                    return Err("--think-ms must be non-negative".into());
                }
                cfg.think_ms = t;
            }
            "--method" => cfg.method = value(&mut args, "--method")?,
            "--server" => cfg.server = value(&mut args, "--server")?,
            "--key-space" => {
                cfg.key_space =
                    parsed::<usize>(&value(&mut args, "--key-space")?, "--key-space")?.clamp(1, 64);
            }
            "--goal-ms" => {
                cfg.goal_ms = Some(parsed(&value(&mut args, "--goal-ms")?, "--goal-ms")?);
            }
            "--seed" => cfg.seed = parsed(&value(&mut args, "--seed")?, "--seed")?,
            "--quick" => {
                // Smoke settings: short, and no think time — the smoke
                // job measures the daemon's cached-key serving rate, and
                // sleep() granularity on small-HZ kernels would otherwise
                // dominate the closed loop (order-of-10 ms overshoot on a
                // 0.5 ms think).
                cfg.duration = Duration::from_secs(2);
                cfg.clients = 16;
                cfg.think_ms = 0.0;
            }
            "--min-rps" => {
                cfg.min_rps = Some(parsed(&value(&mut args, "--min-rps")?, "--min-rps")?);
            }
            "--report-observations" => cfg.report_observations = true,
            "--min-refits" => {
                cfg.min_refits = Some(parsed(&value(&mut args, "--min-refits")?, "--min-refits")?);
                cfg.report_observations = true;
            }
            "--chaos" => cfg.chaos = true,
            "--min-availability" => {
                let a: f64 = parsed(
                    &value(&mut args, "--min-availability")?,
                    "--min-availability",
                )?;
                if !(0.0..=1.0).contains(&a) {
                    return Err("--min-availability must be in [0, 1]".into());
                }
                cfg.min_availability = Some(a);
            }
            "--targets" => {
                cfg.targets = value(&mut args, "--targets")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if cfg.targets.is_empty() {
                    return Err("--targets wants ADDR,ADDR,...".into());
                }
            }
            "--rate" => {
                let r: f64 = parsed(&value(&mut args, "--rate")?, "--rate")?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rate must be positive".into());
                }
                cfg.rate = Some(r);
            }
            "--phases" => {
                let raw = value(&mut args, "--phases")?;
                cfg.phases = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|part| {
                        let (r, s) = part
                            .split_once('@')
                            .ok_or_else(|| format!("--phases wants RATE@SECS,..., got '{part}'"))?;
                        let rate: f64 = parsed(r.trim(), "--phases")?;
                        let secs: f64 = parsed(s.trim(), "--phases")?;
                        if !rate.is_finite() || rate <= 0.0 || !secs.is_finite() || secs <= 0.0 {
                            return Err(format!(
                                "--phases rates and durations must be positive, got '{part}'"
                            ));
                        }
                        Ok((rate, secs))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                if cfg.phases.is_empty() {
                    return Err("--phases wants RATE@SECS,RATE@SECS,...".into());
                }
            }
            "--connections" => {
                cfg.connections =
                    parsed::<usize>(&value(&mut args, "--connections")?, "--connections")?
                        .clamp(1, 65_536);
            }
            "--idle-connections" => {
                cfg.idle_connections = parsed::<usize>(
                    &value(&mut args, "--idle-connections")?,
                    "--idle-connections",
                )?
                .min(60_000);
            }
            "--bench-section" => {
                cfg.bench_section = Some(value(&mut args, "--bench-section")?);
            }
            "--note" => {
                let raw = value(&mut args, "--note")?;
                let (key, val) = raw
                    .split_once('=')
                    .ok_or_else(|| format!("--note wants KEY=VAL, got '{raw}'"))?;
                cfg.notes.push((key.to_string(), val.to_string()));
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    // Outside cluster mode, an availability floor implies the chaos
    // harness (retries + probe thread) exactly as it always has; with
    // --targets the floor gates the fan-out run on its own.
    if cfg.min_availability.is_some() && cfg.targets.is_empty() {
        cfg.chaos = true;
    }
    let open_loop = cfg.rate.is_some() || !cfg.phases.is_empty();
    if cfg.rate.is_some() && !cfg.phases.is_empty() {
        return Err("--rate and --phases are both open-loop schedules (pick one)".into());
    }
    if !cfg.targets.is_empty() {
        if open_loop {
            return Err("--targets is closed-loop only (drop --rate/--phases)".into());
        }
        if cfg.chaos || cfg.report_observations {
            return Err(
                "--targets cannot be combined with --chaos or --report-observations".into(),
            );
        }
        if cfg.addr.is_empty() {
            cfg.addr = cfg.targets[0].clone();
        }
    }
    if cfg.addr.is_empty() {
        return Err("need --addr, --port, --port-file or --targets (try --help)".into());
    }
    if open_loop && (cfg.report_observations || cfg.chaos) {
        return Err(
            "open loop (--rate/--phases) cannot be combined with --report-observations or --chaos"
                .into(),
        );
    }
    if cfg.connections > 0 && !open_loop {
        return Err("--connections only applies to open-loop mode (add --rate or --phases)".into());
    }
    // A phased schedule defines its own total duration.
    if !cfg.phases.is_empty() {
        let total: f64 = cfg.phases.iter().map(|&(_, s)| s).sum();
        cfg.duration = Duration::from_secs_f64(total);
    }
    Ok(cfg)
}

/// The client count behind one key. Plain runs use small distinct cache
/// keys; observation-reporting runs spread keys across 0.15–1.55 of the
/// server's saturation point so the refitter sees both sides of the
/// transition region (the §4.2 two-points-per-equation minimum).
fn clients_for(cfg: &Config, key: usize) -> u32 {
    if !cfg.report_observations {
        return 50 + 50 * (key as u32); // 50, 100, 150, ...
    }
    let mx = perfpred_core::ServerArch::case_study_servers()
        .iter()
        .find(|s| s.name == cfg.server)
        .map_or(186.0, |s| s.max_throughput_rps);
    let n_star = mx / (1_000.0 / 7_020.0);
    let steps = cfg.key_space.max(2) - 1;
    let frac = 0.15 + 1.40 * (key as f64) / steps as f64;
    ((frac * n_star).round() as u32).max(1)
}

/// The request body for one key in the key space.
fn body_for(cfg: &Config, key: usize) -> String {
    let clients = clients_for(cfg, key);
    let goal = cfg
        .goal_ms
        .map(|g| format!(", \"goal_ms\": {g}"))
        .unwrap_or_default();
    // Reporting runs drive saturated operating points on purpose —
    // admission control would 503 them, so it is bypassed.
    let admission = if cfg.report_observations {
        ", \"admission\": false"
    } else {
        ""
    };
    format!(
        "{{\"method\": \"{}\", \"server\": \"{}\", \"clients\": {clients}{goal}{admission}}}",
        cfg.method, cfg.server
    )
}

/// One client's tally.
#[derive(Debug, Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    ok: u64,
    rejected: u64,
    errors: u64,
    observations: u64,
    refits: u64,
    /// 200s served by the degraded ladder (`"mode": "degraded"`).
    degraded: u64,
    /// Transport failures retried in chaos mode (reconnect + resend).
    retries: u64,
    /// Latency samples bucketed by `--phases` index (empty otherwise).
    /// A sample is attributed to the phase its *scheduled* arrival falls
    /// in, so phase boundaries are deterministic under sender lag.
    phase_latencies: Vec<Vec<f64>>,
}

/// A persistent keep-alive connection that reconnects on failure.
struct Connection {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
}

impl Connection {
    fn new(addr: &str) -> Connection {
        Connection {
            addr: addr.to_string(),
            stream: None,
        }
    }

    fn ensure(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(35)))?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    /// Sends one POST and reads the response; returns the status code.
    fn post(&mut self, path: &str, body: &str) -> std::io::Result<u16> {
        self.post_capture(path, body).map(|(status, _)| status)
    }

    /// Sends one POST and returns `(status, body)`.
    fn post_capture(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.roundtrip(&request)
    }

    /// Sends one GET and returns `(status, body)`.
    fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.roundtrip(&format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n"))
    }

    fn roundtrip(&mut self, request: &str) -> std::io::Result<(u16, String)> {
        let reader = self.ensure()?;
        if let Err(e) = reader.get_mut().write_all(request.as_bytes()) {
            self.stream = None; // force reconnect next call
            return Err(e);
        }
        match read_response(reader) {
            Ok(found) => Ok(found),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one response (status line + headers + Content-Length body).
/// Returns the status code and the body text.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Observations a reporting client has predicted but not yet fed back:
/// `(clients, mrt_ms, throughput_rps)`.
type Pending = Vec<(u32, f64, f64)>;

/// How many predictions a reporting client accumulates before one
/// `POST /observe` batch.
const OBSERVE_BATCH: usize = 32;

/// Feeds accumulated predictions back to `POST /observe` as one batch,
/// counting accepted observations and triggered refits into the tally.
fn flush_observations(
    conn: &mut Connection,
    cfg: &Config,
    pending: &mut Pending,
    tally: &mut Tally,
) {
    if pending.is_empty() {
        return;
    }
    let items: Vec<String> = pending
        .iter()
        .map(|(clients, mrt, tput)| {
            format!(
                "{{\"server\": \"{}\", \"clients\": {clients}, \
                 \"mrt_ms\": {mrt}, \"throughput_rps\": {tput}}}",
                cfg.server
            )
        })
        .collect();
    let body = format!("{{\"batch\": [{}]}}", items.join(", "));
    pending.clear();
    match conn.post_capture("/observe", &body) {
        Ok((200, text)) => {
            if let Ok(j) = Json::parse(&text) {
                if let Some(n) = j.get("accepted").and_then(Json::as_f64) {
                    tally.observations += n as u64;
                }
                if let Some(refits) = j.get("refits").and_then(Json::as_arr) {
                    tally.refits += refits.len() as u64;
                }
            }
        }
        _ => tally.errors += 1,
    }
}

/// One client thread's closed loop.
fn client_loop(cfg: &Config, id: usize, stop: &AtomicBool) -> Tally {
    let mut rng = SimRng::seed_from(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(id as u64));
    let mut conn = Connection::new(&cfg.addr);
    let mut tally = Tally::default();
    let mut key = id % cfg.key_space;
    let mut pending: Pending = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        if cfg.think_ms > 0.0 {
            let think = rng.exp(cfg.think_ms);
            std::thread::sleep(Duration::from_secs_f64(think / 1e3));
        }
        let body = body_for(cfg, key);
        let clients = clients_for(cfg, key);
        key = (key + 1) % cfg.key_space;
        let started = Instant::now();
        // Chaos mode injects accept-time connection resets on purpose;
        // a reset before any response bytes is retryable by definition,
        // so spend up to two reconnects before scoring an error.
        let mut outcome = conn.post_capture("/predict", &body);
        if cfg.chaos {
            let mut attempts = 0;
            while outcome.is_err() && attempts < 2 && !stop.load(Ordering::Relaxed) {
                attempts += 1;
                tally.retries += 1;
                std::thread::sleep(Duration::from_millis(2));
                outcome = conn.post_capture("/predict", &body);
            }
        }
        match outcome {
            Ok((status, text)) => {
                tally
                    .latencies_ms
                    .push(started.elapsed().as_secs_f64() * 1e3);
                match status {
                    200 => {
                        tally.ok += 1;
                        if text.contains("\"mode\": \"degraded\"") {
                            tally.degraded += 1;
                        }
                        if cfg.report_observations {
                            if let Some(p) = Json::parse(&text)
                                .ok()
                                .as_ref()
                                .and_then(|j| j.get("prediction"))
                            {
                                if let (Some(mrt), Some(tput)) = (
                                    p.get("mrt_ms").and_then(Json::as_f64),
                                    p.get("throughput_rps").and_then(Json::as_f64),
                                ) {
                                    pending.push((clients, mrt, tput));
                                }
                            }
                            if pending.len() >= OBSERVE_BATCH {
                                flush_observations(&mut conn, cfg, &mut pending, &mut tally);
                            }
                        }
                    }
                    503 => tally.rejected += 1,
                    _ => tally.errors += 1,
                }
            }
            Err(_) => {
                tally.errors += 1;
                // Brief backoff so a dead daemon doesn't spin the loop.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    flush_observations(&mut conn, cfg, &mut pending, &mut tally);
    tally
}

/// Per-target slice of a cluster-mode run. `requests` counts outcomes
/// charged to this target (answers plus final transport give-ups);
/// `errors` is HTTP-level failures plus give-ups; `retries` is transport
/// failures that were retried on the next target — kept apart from
/// errors so a node death under failover shows up as retries (latency
/// cost) rather than lost requests.
#[derive(Debug, Default, Clone)]
struct TargetStats {
    requests: u64,
    errors: u64,
    retries: u64,
    latencies_ms: Vec<f64>,
}

/// One client thread's closed loop in `--targets` cluster mode: requests
/// round-robin across the target set, and a transport failure fails over
/// to the next target within the same logical request. Latency is
/// measured across the whole attempt chain, so failover cost lands in
/// the tail of the merged distribution, not in the error count.
fn cluster_loop(cfg: &Config, id: usize, stop: &AtomicBool) -> (Tally, Vec<TargetStats>) {
    let mut rng = SimRng::seed_from(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(id as u64));
    let n = cfg.targets.len();
    let mut conns: Vec<Connection> = cfg.targets.iter().map(|a| Connection::new(a)).collect();
    let mut per = vec![TargetStats::default(); n];
    let mut tally = Tally::default();
    let mut key = id % cfg.key_space;
    let mut turn = id; // stagger threads across the target set
    while !stop.load(Ordering::Relaxed) {
        if cfg.think_ms > 0.0 {
            let think = rng.exp(cfg.think_ms);
            std::thread::sleep(Duration::from_secs_f64(think / 1e3));
        }
        let body = body_for(cfg, key);
        key = (key + 1) % cfg.key_space;
        let first = turn % n;
        turn += 1;
        let started = Instant::now();
        // At least two attempts even against a single target (a router in
        // front of a failing-over cluster resets once, then recovers).
        let attempts = n.max(2);
        let mut outcome = None;
        let mut slot = first;
        for attempt in 0..attempts {
            slot = (first + attempt) % n;
            match conns[slot].post_capture("/predict", &body) {
                Ok(found) => {
                    outcome = Some(found);
                    break;
                }
                Err(_) => {
                    if stop.load(Ordering::Relaxed) || attempt + 1 == attempts {
                        break;
                    }
                    per[slot].retries += 1;
                    tally.retries += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        match outcome {
            Some((status, text)) => {
                let latency_ms = started.elapsed().as_secs_f64() * 1e3;
                tally.latencies_ms.push(latency_ms);
                per[slot].requests += 1;
                per[slot].latencies_ms.push(latency_ms);
                match status {
                    200 => {
                        tally.ok += 1;
                        if text.contains("\"mode\": \"degraded\"") {
                            tally.degraded += 1;
                        }
                    }
                    503 => tally.rejected += 1,
                    _ => {
                        tally.errors += 1;
                        per[slot].errors += 1;
                    }
                }
            }
            None => {
                if stop.load(Ordering::Relaxed) {
                    break; // an abandoned attempt chain is not an error
                }
                tally.errors += 1;
                per[slot].requests += 1;
                per[slot].errors += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    (tally, per)
}

/// Reads `GET /cluster` on every target and returns the worst replication
/// lag visible anywhere: a follower's own lag, or the laggiest entry in
/// the primary's follower list. Targets without the route (a router, a
/// standalone daemon) are skipped.
fn probe_replication_lag(targets: &[String]) -> Option<u64> {
    let mut worst: Option<u64> = None;
    for addr in targets {
        let mut conn = Connection::new(addr);
        let Ok((200, text)) = conn.get("/cluster") else {
            continue;
        };
        let Ok(j) = Json::parse(&text) else { continue };
        if let Some(lag) = j.get("lag").and_then(Json::as_f64) {
            worst = Some(worst.unwrap_or(0).max(lag as u64));
        }
        if let Some(followers) = j.get("followers").and_then(Json::as_arr) {
            for f in followers {
                if let Some(lag) = f.get("lag").and_then(Json::as_f64) {
                    worst = Some(worst.unwrap_or(0).max(lag as u64));
                }
            }
        }
    }
    worst
}

/// Sleeps until `deadline` in short slices so a raised stop flag is
/// honoured within ~50 ms even when Poisson gaps are long.
fn sleep_until(deadline: Instant, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(50)));
    }
}

/// One open-loop sender thread: a seeded Poisson arrival schedule at this
/// thread's share of `--rate`, round-robined over its share of
/// `--connections` keep-alive sockets.
///
/// Coordinated-omission safety is the whole design: each request's
/// arrival instant is drawn from the schedule *before* the send, and the
/// latency sample is `completion - scheduled`. If the server (or a busy
/// connection) makes the sender late, the lateness is charged to the
/// request — the schedule never stretches to match a slow server the way
/// a closed loop's does.
fn open_loop_worker(
    cfg: &Config,
    id: usize,
    workers: usize,
    n_conns: usize,
    epoch: Instant,
    stop: &AtomicBool,
) -> Tally {
    let mut rng = SimRng::seed_from(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(id as u64));
    let plan = phase_plan(cfg);
    // Arrival times are the running sum of per-phase exponential gaps,
    // the gap drawn from whichever phase the schedule cursor sits in —
    // a piecewise-homogeneous Poisson process over the --phases steps
    // (one homogeneous phase for plain --rate).
    let phase_of = |t_ms: f64| {
        plan.iter()
            .position(|&(_, end)| t_ms < end)
            .unwrap_or(plan.len() - 1)
    };
    let mut conns: Vec<Connection> = (0..n_conns.max(1))
        .map(|_| Connection::new(&cfg.addr))
        .collect();
    let mut tally = Tally {
        phase_latencies: vec![Vec::new(); plan.len()],
        ..Tally::default()
    };
    let mut key = id % cfg.key_space;
    let mut turn = 0usize;
    let mut next_ms = 0.0;
    while !stop.load(Ordering::Relaxed) {
        let mean_gap_ms = 1e3 * workers as f64 / plan[phase_of(next_ms)].0;
        next_ms += rng.exp(mean_gap_ms);
        let phase = phase_of(next_ms);
        let scheduled = epoch + Duration::from_secs_f64(next_ms / 1e3);
        sleep_until(scheduled, stop);
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let body = body_for(cfg, key);
        key = (key + 1) % cfg.key_space;
        let slot = turn % conns.len();
        let conn = &mut conns[slot];
        turn += 1;
        let outcome = conn.post_capture("/predict", &body);
        // From the *scheduled* arrival, not the send: queueing delay in
        // the sender counts against the server that caused it.
        let latency_ms = scheduled.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok((status, _)) => {
                tally.latencies_ms.push(latency_ms);
                tally.phase_latencies[phase].push(latency_ms);
                match status {
                    200 => tally.ok += 1,
                    503 => tally.rejected += 1,
                    _ => tally.errors += 1,
                }
            }
            Err(_) => tally.errors += 1, // connection reconnects on next use
        }
    }
    tally
}

/// The open-loop schedule as `(rate_rps, cumulative_end_ms)` steps: the
/// `--phases` list, or plain `--rate` as a single phase spanning the run.
fn phase_plan(cfg: &Config) -> Vec<(f64, f64)> {
    if cfg.phases.is_empty() {
        let rate = cfg.rate.expect("open loop requires --rate or --phases");
        return vec![(rate, cfg.duration.as_secs_f64() * 1e3)];
    }
    let mut end_ms = 0.0;
    cfg.phases
        .iter()
        .map(|&(rate, secs)| {
            end_ms += secs * 1e3;
            (rate, end_ms)
        })
        .collect()
}
#[derive(Debug, Default)]
struct ProbeReport {
    sent: u64,
    malformed: u64,
}

/// The chaos probe: fires deliberately hostile requests — garbage
/// framing, an oversized Content-Length, a header flood — each on a
/// fresh connection, and verifies that every byte the daemon sends back
/// is a well-formed HTTP response (or a clean close with no bytes at
/// all). Any other answer is exactly the malformed-response bug class
/// the chaos harness exists to catch.
fn chaos_probe(addr: &str, stop: &AtomicBool) -> ProbeReport {
    let mut report = ProbeReport::default();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        i += 1;
        let probe = match i % 3 {
            0 => "NONSENSE\r\n\r\n".to_string(),
            1 => format!(
                "POST /predict HTTP/1.1\r\nHost: probe\r\nContent-Length: {}\r\n\r\n",
                64 * 1024 * 1024
            ),
            _ => {
                let mut s = String::from("GET /healthz HTTP/1.1\r\nHost: probe\r\n");
                for h in 0..100 {
                    s.push_str(&format!("X-Flood-{h}: v\r\n"));
                }
                s.push_str("\r\n");
                s
            }
        };
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                report.sent += 1;
                let _ = stream.set_nodelay(true);
                // Short timeout: under full load the closed-loop clients
                // hold every connection worker, so a probe can sit in the
                // accept queue a while — recycle instead of waiting.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                if stream.write_all(probe.as_bytes()).is_ok() {
                    // Half-close so the server's post-reject drain sees
                    // EOF immediately instead of waiting out its timeout.
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    // Drain whatever comes back until close or timeout;
                    // an injected accept-reset (empty read) is fine, raw
                    // non-HTTP bytes are not.
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 4096];
                    loop {
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        }
                    }
                    if !buf.is_empty() && !buf.starts_with(b"HTTP/1.1 ") {
                        report.malformed += 1;
                    }
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    report
}

/// Nearest-rank percentile over sorted samples.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            let is_help = msg.contains("USAGE");
            eprintln!("{msg}");
            std::process::exit(i32::from(!is_help));
        }
    };

    // Warm-up: solve every key once so the measured window exercises the
    // daemon's cache-hit path (lqns misses cost ms; hits cost µs). Chaos
    // daemons may reset accepted connections, so give each key a few
    // tries before concluding the daemon is unreachable.
    let warm_addrs: Vec<String> = if cfg.targets.is_empty() {
        vec![cfg.addr.clone()]
    } else {
        cfg.targets.clone() // every node's cache gets hot, not just one
    };
    let mut warm = Connection::new(&cfg.addr);
    for addr in &warm_addrs {
        let mut conn = Connection::new(addr);
        for key in 0..cfg.key_space {
            // Chaos daemons reset connections on purpose, and cluster
            // nodes may still be settling after a (re)start — give those
            // modes a few tries before concluding the daemon is gone.
            let tries = if cfg.chaos {
                10
            } else if !cfg.targets.is_empty() {
                5
            } else {
                1
            };
            let mut last_err = None;
            for _ in 0..tries {
                match conn.post("/predict", &body_for(&cfg, key)) {
                    Ok(_) => {
                        last_err = None;
                        break;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
            if let Some(e) = last_err {
                eprintln!("loadgen: cannot reach {addr}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Idle keep-alive sockets, parked for the whole run: the daemon must
    // hold every one open (accepted, registered, swept past) while the
    // active load runs — the high-connection-count multiplexing cost the
    // reactor core is built to flatten. One probe request on the last
    // socket confirms the accept queue actually drained.
    let mut parked: Vec<TcpStream> = Vec::with_capacity(cfg.idle_connections);
    if cfg.idle_connections > 0 {
        for i in 0..cfg.idle_connections {
            match TcpStream::connect(&cfg.addr) {
                Ok(s) => parked.push(s),
                Err(e) => {
                    eprintln!(
                        "loadgen: FAIL — idle connection {}/{} refused: {e}",
                        i + 1,
                        cfg.idle_connections
                    );
                    std::process::exit(1);
                }
            }
        }
        let mut probe = Connection::new(&cfg.addr);
        if !matches!(probe.get("/healthz"), Ok((200, _))) {
            eprintln!("loadgen: FAIL — daemon unhealthy after parking idle connections");
            std::process::exit(1);
        }
        println!(
            "loadgen: parked {} idle keep-alive connections",
            parked.len()
        );
    }

    if !cfg.targets.is_empty() {
        println!(
            "loadgen: CLUSTER {} clients x {:.1}s across {} targets [{}] \
             ({} / {}, {} keys, think {} ms)",
            cfg.clients,
            cfg.duration.as_secs_f64(),
            cfg.targets.len(),
            cfg.targets.join(", "),
            cfg.method,
            cfg.server,
            cfg.key_space,
            cfg.think_ms,
        );
    } else if !cfg.phases.is_empty() {
        let schedule: Vec<String> = cfg
            .phases
            .iter()
            .map(|&(r, s)| format!("{r}rps@{s}s"))
            .collect();
        println!(
            "loadgen: OPEN LOOP phased [{}] x {:.1}s against {} \
             ({} senders, {} connections, {} / {}, {} keys)",
            schedule.join(", "),
            cfg.duration.as_secs_f64(),
            cfg.addr,
            cfg.clients,
            cfg.connections.max(cfg.clients),
            cfg.method,
            cfg.server,
            cfg.key_space,
        );
    } else if let Some(rate) = cfg.rate {
        println!(
            "loadgen: OPEN LOOP {rate} req/s Poisson x {:.1}s against {} \
             ({} senders, {} connections, {} idle, {} / {}, {} keys)",
            cfg.duration.as_secs_f64(),
            cfg.addr,
            cfg.clients,
            cfg.connections.max(cfg.clients),
            cfg.idle_connections,
            cfg.method,
            cfg.server,
            cfg.key_space,
        );
    } else {
        println!(
            "loadgen: {} clients x {:.1}s against {} ({} / {}, {} keys, think {} ms)",
            cfg.clients,
            cfg.duration.as_secs_f64(),
            cfg.addr,
            cfg.method,
            cfg.server,
            cfg.key_space,
            cfg.think_ms,
        );
    }
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let probe = cfg.chaos.then(|| {
        let addr = cfg.addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || chaos_probe(&addr, &stop))
    });
    let mut handles: Vec<std::thread::JoinHandle<(Tally, Vec<TargetStats>)>> =
        Vec::with_capacity(cfg.clients);
    if cfg.rate.is_some() || !cfg.phases.is_empty() {
        // Distribute --connections across the sender threads; every
        // sender gets at least one socket.
        let workers = cfg.clients;
        let total_conns = cfg.connections.max(workers);
        for id in 0..workers {
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let n_conns = total_conns / workers + usize::from(id < total_conns % workers);
            handles.push(std::thread::spawn(move || {
                (
                    open_loop_worker(&cfg, id, workers, n_conns, started, &stop),
                    Vec::new(),
                )
            }));
        }
    } else if !cfg.targets.is_empty() {
        for id in 0..cfg.clients {
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || cluster_loop(&cfg, id, &stop)));
        }
    } else {
        for id in 0..cfg.clients {
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                (client_loop(&cfg, id, &stop), Vec::new())
            }));
        }
    }
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut merged = Tally::default();
    let mut phase_latencies: Vec<Vec<f64>> = vec![Vec::new(); cfg.phases.len()];
    let mut per_target = vec![TargetStats::default(); cfg.targets.len()];
    for h in handles {
        let (t, per) = h.join().expect("client thread");
        merged.latencies_ms.extend(t.latencies_ms);
        for (agg, got) in phase_latencies.iter_mut().zip(t.phase_latencies) {
            agg.extend(got);
        }
        merged.ok += t.ok;
        merged.rejected += t.rejected;
        merged.errors += t.errors;
        merged.observations += t.observations;
        merged.refits += t.refits;
        merged.degraded += t.degraded;
        merged.retries += t.retries;
        for (agg, p) in per_target.iter_mut().zip(per) {
            agg.requests += p.requests;
            agg.errors += p.errors;
            agg.retries += p.retries;
            agg.latencies_ms.extend(p.latencies_ms);
        }
    }
    let probe_report = probe.map(|h| h.join().expect("probe thread"));
    let elapsed = started.elapsed().as_secs_f64();

    // The end-of-run model state, when this run fed the refit loop.
    let model_version = if cfg.report_observations {
        let version = warm
            .get("/models")
            .ok()
            .filter(|(status, _)| *status == 200)
            .and_then(|(_, text)| Json::parse(&text).ok())
            .and_then(|j| j.get("current").and_then(Json::as_f64))
            .map_or(0, |v| v as u64);
        println!(
            "loadgen: reported {} observations -> {} refits, model version {}",
            merged.observations, merged.refits, version
        );
        Some(version)
    } else {
        None
    };

    let total = merged.ok + merged.rejected + merged.errors;
    let throughput = merged.latencies_ms.len() as f64 / elapsed;
    merged
        .latencies_ms
        .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&merged.latencies_ms, 0.50),
        percentile(&merged.latencies_ms, 0.95),
        percentile(&merged.latencies_ms, 0.99),
    );
    let rejection_rate = if total > 0 {
        merged.rejected as f64 / total as f64
    } else {
        0.0
    };

    let availability = if total > 0 {
        merged.ok as f64 / total as f64
    } else {
        0.0
    };

    println!(
        "loadgen: {total} requests in {elapsed:.2}s -> {throughput:.0} req/s \
         (ok {}, rejected {}, errors {})",
        merged.ok, merged.rejected, merged.errors
    );
    println!("loadgen: latency p50 {p50:.3} ms   p95 {p95:.3} ms   p99 {p99:.3} ms");

    // Phased runs: each phase's percentiles come from its own samples, so
    // the tail of a heavy phase is visible instead of being averaged away
    // by the quiet ones on either side of it.
    let mut phase_stats: Vec<(u64, f64, f64, f64)> = Vec::new();
    for (i, lat) in phase_latencies.iter_mut().enumerate() {
        lat.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let (p50, p95, p99) = (
            percentile(lat, 0.50),
            percentile(lat, 0.95),
            percentile(lat, 0.99),
        );
        let (rate, secs) = cfg.phases[i];
        println!(
            "loadgen: phase {i} ({rate} req/s x {secs}s) — {} requests, \
             p50 {p50:.3} ms   p95 {p95:.3} ms   p99 {p99:.3} ms",
            lat.len()
        );
        phase_stats.push((lat.len() as u64, p50, p95, p99));
    }
    if let Some(probe) = &probe_report {
        println!(
            "loadgen: chaos — availability {:.4}, degraded {}, retries {}, \
             probes {} (malformed responses {})",
            availability, merged.degraded, merged.retries, probe.sent, probe.malformed
        );
    }

    // Cluster mode: the per-target breakdown (errors apart from transport
    // retries — a failed-over request is a retry, not a lost request) and
    // the replication lag left behind after the run.
    let mut target_p99 = vec![f64::NAN; per_target.len()];
    let replication_lag = if cfg.targets.is_empty() {
        None
    } else {
        for (i, stats) in per_target.iter_mut().enumerate() {
            stats
                .latencies_ms
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            target_p99[i] = percentile(&stats.latencies_ms, 0.99);
            println!(
                "loadgen: target {} — {} answered, {} errors, {} transport retries, \
                 p99 {:.3} ms",
                cfg.targets[i], stats.requests, stats.errors, stats.retries, target_p99[i]
            );
        }
        println!(
            "loadgen: cluster — availability {:.4}, errors {}, transport retries {}",
            availability, merged.errors, merged.retries
        );
        let lag = probe_replication_lag(&cfg.targets);
        match lag {
            Some(l) => println!("loadgen: replication lag {l} records (worst across targets)"),
            None => println!("loadgen: no target exposes GET /cluster (lag not recorded)"),
        }
        lag
    };

    // Observation-reporting, chaos and open-loop runs are different
    // workloads — each keeps its own BENCH.json slice so the plain serving
    // trajectory stays comparable across runs. --bench-section overrides
    // (the CI reactor leg lands under serve.reactor this way).
    let section = cfg.bench_section.clone().unwrap_or_else(|| {
        if !cfg.targets.is_empty() {
            "cluster".into()
        } else if cfg.chaos {
            "serve.chaos".into()
        } else if cfg.report_observations {
            "serve.observe".into()
        } else if !cfg.phases.is_empty() {
            "serve.phased".into()
        } else if cfg.rate.is_some() {
            "serve.open".into()
        } else {
            "serve".into()
        }
    });
    let mut rec = Recorder::new(&section);
    rec.note("clients", cfg.clients);
    rec.note("duration_s", elapsed);
    rec.note("think_ms", cfg.think_ms);
    if cfg.rate.is_some() || !cfg.phases.is_empty() {
        rec.note("open_loop", true);
        rec.note("connections", cfg.connections.max(cfg.clients));
    }
    if let Some(rate) = cfg.rate {
        rec.note("offered_rate_rps", rate);
    }
    if !cfg.phases.is_empty() {
        rec.note("phases", cfg.phases.len() as u64);
        for (i, &(rate, secs)) in cfg.phases.iter().enumerate() {
            let (n, p50, p95, p99) = phase_stats[i];
            rec.note(&format!("phase.{i}.rate_rps"), rate);
            rec.note(&format!("phase.{i}.duration_s"), secs);
            rec.note(&format!("phase.{i}.requests"), n);
            rec.note(&format!("phase.{i}.p50_ms"), p50);
            rec.note(&format!("phase.{i}.p95_ms"), p95);
            rec.note(&format!("phase.{i}.p99_ms"), p99);
        }
    }
    if cfg.idle_connections > 0 {
        rec.note("idle_connections", cfg.idle_connections);
    }
    for (key, val) in &cfg.notes {
        match val.parse::<f64>() {
            Ok(n) => rec.note(key, n),
            Err(_) => rec.note(key, val.as_str()),
        }
    }
    rec.note("method", cfg.method.as_str());
    rec.note("server", cfg.server.as_str());
    rec.note("key_space", cfg.key_space);
    rec.note("requests", total);
    rec.note("throughput_rps", throughput);
    rec.note("p50_ms", p50);
    rec.note("p95_ms", p95);
    rec.note("p99_ms", p99);
    rec.note("rejected", merged.rejected);
    rec.note("rejection_rate", rejection_rate);
    rec.note("errors", merged.errors);
    if let Some(version) = model_version {
        rec.note("report_observations", true);
        rec.note("observations_reported", merged.observations);
        rec.note("refits_triggered", merged.refits);
        rec.note("model_version", version);
    }
    if let Some(probe) = &probe_report {
        rec.note("availability", availability);
        rec.note("degraded", merged.degraded);
        rec.note("retries", merged.retries);
        rec.note("probes_sent", probe.sent);
        rec.note("probe_malformed_responses", probe.malformed);
    }
    if !cfg.targets.is_empty() {
        rec.note("targets", cfg.targets.len() as u64);
        rec.note("availability", availability);
        rec.note("transport_retries", merged.retries);
        for (i, stats) in per_target.iter().enumerate() {
            rec.note(&format!("target.{i}.addr"), cfg.targets[i].as_str());
            rec.note(&format!("target.{i}.requests"), stats.requests);
            rec.note(&format!("target.{i}.errors"), stats.errors);
            rec.note(&format!("target.{i}.retries"), stats.retries);
            rec.note(&format!("target.{i}.p99_ms"), target_p99[i]);
        }
        if let Some(lag) = replication_lag {
            rec.note("replication_lag_records", lag);
        }
    }
    rec.write();

    if let Some(probe) = &probe_report {
        if probe.malformed > 0 {
            eprintln!(
                "loadgen: FAIL — {} malformed HTTP responses to chaos probes",
                probe.malformed
            );
            std::process::exit(1);
        }
        println!(
            "loadgen: PASS — all {} probe responses were well-formed HTTP",
            probe.sent
        );
    }
    // Runs with an availability floor gate on that floor instead: there,
    // transport-level give-ups after retries are what's being scored.
    if !cfg.chaos && cfg.min_availability.is_none() && merged.errors > total / 100 {
        eprintln!("loadgen: FAIL — more than 1% errors");
        std::process::exit(1);
    }
    if let Some(min) = cfg.min_availability {
        if availability < min {
            eprintln!("loadgen: FAIL — availability {availability:.4} below the {min} floor");
            std::process::exit(1);
        }
        println!("loadgen: PASS — availability {availability:.4} >= {min}");
    }
    if let Some(min) = cfg.min_rps {
        if throughput < min {
            eprintln!("loadgen: FAIL — {throughput:.0} req/s below the {min:.0} req/s floor");
            std::process::exit(1);
        }
        println!("loadgen: PASS — {throughput:.0} req/s >= {min:.0} req/s");
    }
    if let Some(min) = cfg.min_refits {
        if merged.refits < min {
            eprintln!(
                "loadgen: FAIL — {} refits below the {min} refit floor",
                merged.refits
            );
            std::process::exit(1);
        }
        println!("loadgen: PASS — {} refits >= {min}", merged.refits);
    }
}
