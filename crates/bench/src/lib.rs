#![warn(missing_docs)]

//! # perfpred-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures against the simulated testbed, plus wall-clock
//! benchmarks for the §8.5 prediction-delay comparison.
//!
//! The `repro` binary drives it:
//!
//! ```text
//! cargo run --release -p perfpred-bench --bin repro -- all
//! cargo run --release -p perfpred-bench --bin repro -- fig2
//! ```
//!
//! Each experiment prints a plain-text table mirroring the paper's artefact
//! and writes a copy under `results/`. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured commentary.

pub mod cachecheck;
pub mod context;
pub mod experiments;
pub mod json;
pub mod report;
pub mod runner;
pub mod timing;

pub use context::Experiments;
