//! The parallel experiment scheduler: runs independent experiments on a
//! work-stealing [`std::thread::scope`] pool while keeping every
//! user-visible output in deterministic paper order.
//!
//! Each experiment executes under its own fresh [`metrics::Scope`], so
//! concurrent experiments never clobber each other's counters; the
//! snapshot each one returns covers exactly the work performed on its
//! worker thread (plus any lazy context calibration that experiment
//! happened to trigger first — see DESIGN.md).
//!
//! Reports are pure functions of the shared [`Experiments`] context, so a
//! run with `jobs = 1` and a run with `jobs = N` produce byte-identical
//! report strings — the `determinism` integration test and the CI smoke
//! job both assert this.

use crate::context::Experiments;
use crate::experiments;
use perfpred_core::metrics::{self, MetricsSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The outcome of one scheduled experiment.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// The experiment id.
    pub id: String,
    /// The rendered report, or `None` for an unknown id.
    pub report: Option<String>,
    /// Metrics recorded while the experiment ran, scoped to it.
    pub metrics: MetricsSnapshot,
    /// The experiment's own wall-clock time.
    pub duration: Duration,
}

/// A whole scheduled run, outcomes in request (paper) order.
#[derive(Debug)]
pub struct RunSummary {
    /// Per-experiment outcomes, in the order the ids were given.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// The worker count actually used.
    pub jobs: usize,
}

/// Resolves the worker count: an explicit request wins, else
/// `PERFPRED_JOBS`, else the host's available parallelism.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| {
            std::env::var("PERFPRED_JOBS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or_else(crate::timing::available_parallelism)
        .max(1)
}

/// Runs `ids` against the shared context on `jobs` workers, invoking
/// `on_done` on the *calling* thread for each finished experiment in
/// request order (streaming: an outcome is delivered as soon as it and all
/// its predecessors are complete). Returns all outcomes in request order.
///
/// Work-stealing: workers repeatedly claim the next unclaimed id from a
/// shared atomic cursor, so a slow experiment never stalls the queue
/// behind it. With `jobs = 1` the single worker runs the ids strictly in
/// order, matching the previous serial driver.
pub fn run_experiments(
    ctx: &Experiments,
    ids: &[&str],
    jobs: usize,
    mut on_done: impl FnMut(&ExperimentOutcome),
) -> RunSummary {
    let started = Instant::now();
    let jobs = jobs.clamp(1, ids.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, ExperimentOutcome)>();
    // If a caller ever runs the scheduler under an entered scope, workers
    // re-enter it as the parent of their per-experiment scopes' metrics
    // (the per-experiment Scope still wins while entered).
    let outer = metrics::current_scope();

    let mut outcomes: Vec<Option<ExperimentOutcome>> = std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let outer = outer.clone();
            scope.spawn(move || {
                let _outer_guard = outer.as_ref().map(metrics::Scope::enter);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(id) = ids.get(i) else { break };
                    let outcome = run_one(ctx, id);
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Collect on the scheduler thread, releasing outcomes to the
        // callback in request order as soon as the prefix is complete.
        let mut slots: Vec<Option<ExperimentOutcome>> = (0..ids.len()).map(|_| None).collect();
        let mut released = 0;
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
            while released < slots.len() {
                let Some(ready) = slots[released].as_ref() else {
                    break;
                };
                on_done(ready);
                released += 1;
            }
        }
        slots
    });

    RunSummary {
        outcomes: outcomes
            .iter_mut()
            .map(|slot| slot.take().expect("worker completed every claimed id"))
            .collect(),
        wall: started.elapsed(),
        jobs,
    }
}

/// Runs a single experiment under a fresh metrics scope.
fn run_one(ctx: &Experiments, id: &str) -> ExperimentOutcome {
    let scope = metrics::Scope::new();
    let start = Instant::now();
    let report = {
        let _guard = scope.enter();
        experiments::run(ctx, id)
    };
    ExperimentOutcome {
        id: id.to_string(),
        report,
        metrics: scope.snapshot(),
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_jobs_prefers_explicit_request() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn unknown_ids_are_reported_not_dropped() {
        let ctx = Experiments::quick(7);
        let summary = run_experiments(&ctx, &["no-such-experiment"], 2, |_| {});
        assert_eq!(summary.outcomes.len(), 1);
        assert_eq!(summary.outcomes[0].id, "no-such-experiment");
        assert!(summary.outcomes[0].report.is_none());
    }

    #[test]
    fn outcomes_stream_in_request_order() {
        // `table2` is pure solver work and much faster than `table1`'s
        // three measurement campaigns; order must still be preserved.
        let ctx = Experiments::quick(11);
        let ids = ["table1", "table2"];
        let mut seen = Vec::new();
        let summary = run_experiments(&ctx, &ids, 2, |o| seen.push(o.id.clone()));
        assert_eq!(seen, vec!["table1".to_string(), "table2".to_string()]);
        assert_eq!(summary.jobs, 2);
        for (o, id) in summary.outcomes.iter().zip(ids) {
            assert_eq!(o.id, id);
            assert!(o.report.is_some(), "{id} should produce a report");
        }
    }
}
