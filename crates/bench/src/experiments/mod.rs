//! One module per reproduced artefact. Every experiment takes the shared
//! [`crate::Experiments`] context and returns a plain-text report.

pub mod ablation;
pub mod caching;
pub mod cluster;
pub mod cost;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5_6;
pub mod fig7_8;
pub mod open;
pub mod percentiles;
pub mod priority;
pub mod rel1m;
pub mod table1;
pub mod table2;
pub mod uniform;

use crate::Experiments;

/// All experiment ids, in presentation order.
pub const ALL: [&str; 18] = [
    "table1",
    "table2",
    "rel1m",
    "fig2",
    "fig3",
    "fig4",
    "percentiles",
    "caching",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "uniform",
    // Extensions beyond the paper's evaluation (see DESIGN.md).
    "open",
    "priority",
    "cost",
    "cluster",
    "ablation",
];

/// Runs one experiment by id, returning its report.
pub fn run(ctx: &Experiments, id: &str) -> Option<String> {
    let report = match id {
        "table1" => table1::run(ctx),
        "table2" => table2::run(ctx),
        "rel1m" => rel1m::run(ctx),
        "fig2" => fig2::run(ctx),
        "fig3" => fig3::run(ctx),
        "fig4" => fig4::run(ctx),
        "percentiles" => percentiles::run(ctx),
        "caching" => caching::run(ctx),
        "fig5" => fig5_6::run_fig5(ctx),
        "fig6" => fig5_6::run_fig6(ctx),
        "fig7" => fig7_8::run_fig7(ctx),
        "fig8" => fig7_8::run_fig8(ctx),
        "uniform" => uniform::run(ctx),
        "open" => open::run(ctx),
        "priority" => priority::run(ctx),
        "cost" => cost::run(ctx),
        "cluster" => cluster::run(ctx),
        "ablation" => ablation::run(ctx),
        _ => return None,
    };
    Some(report)
}
