//! Extension experiment (§8.1): "some or all clients sending requests at a
//! constant rate" — open Poisson arrivals instead of a closed client
//! population.
//!
//! The simulator generates open browse traffic against AppServF; the
//! layered queuing model predicts it with an open reference task (mixed
//! open/closed solution). The response-time gap at low rates is the same
//! unmodelled infrastructure latency as in fig 2; the *shape* — the
//! M/M/1-style blow-up toward the 186 req/s capacity — is the thing to
//! reproduce.

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, ServerArch, ServiceClass, Workload};
use perfpred_lqns::model::LqnModel;
use perfpred_lqns::solve::solve;
use perfpred_tradesim::engine::TradeSim;
use std::fmt::Write as _;

/// Open arrival rates to test, requests/second.
const RATES: [f64; 6] = [20.0, 60.0, 100.0, 140.0, 165.0, 180.0];

/// Builds the open-workload LQN from the calibrated Trade parameters.
fn open_model(ctx: &Experiments, rate_rps: f64) -> LqnModel {
    let cfg = ctx.lqn().config();
    let mut b = LqnModel::builder();
    let cp = b.processor("src-cpu").infinite().finish();
    let ap = b.processor("app-cpu").finish();
    let dp = b.processor("db-cpu").finish();
    let disk = b.processor("db-disk").finish();
    let app = b.task("app", ap).multiplicity(cfg.app_threads).finish();
    let db = b.task("db", dp).multiplicity(cfg.db_connections).finish();
    let disk_task = b.task("disk", disk).finish();
    let serve = b
        .entry("serve", app)
        .demand_ms(cfg.browse.app_demand_ms)
        .finish();
    let query = b
        .entry("query", db)
        .demand_ms(cfg.browse.db_demand_ms)
        .finish();
    let read = b
        .entry("read", disk_task)
        .demand_ms(cfg.browse.disk_demand_ms.max(1e-6))
        .finish();
    b.call(serve, query, cfg.browse.db_calls);
    b.call(query, read, 1.0);
    let src = b.open_reference_task("source", cp, rate_rps).finish();
    let arrive = b.entry("arrive", src).finish();
    b.call(arrive, serve, 1.0);
    b.build().expect("open trade model")
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let server = ServerArch::app_serv_f();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§8.1 extension — open (Poisson) workload on {}: simulated vs layered queuing\n",
        server.name
    );

    let mut table = Table::new(&[
        "rate (req/s)",
        "measured mrt",
        "lq open mrt",
        "measured rps",
        "app util (sim)",
        "app util (lq)",
    ]);
    let mut rep = AccuracyReport::new();
    for (i, &rate) in RATES.iter().enumerate() {
        let sim = TradeSim::new(
            &ctx.gt,
            &server,
            &Workload::typical(0),
            &ctx.sim.with_seed(ctx.sim.seed ^ (0x09E4 + i as u64)),
        )
        .with_open_traffic(ServiceClass::browse().named("open"), rate)
        .run();
        let measured_mrt = sim.per_class[1].rt.mean();
        let measured_rps = sim.per_class[1].completed as f64 / (sim.measure_ms / 1_000.0);

        let model = open_model(ctx, rate);
        let sol = solve(&model, &ctx.lqn().config().solver).expect("open solve");
        let lq_mrt = sol.open_response_ms[0];
        let app = model.processor_by_name("app-cpu").unwrap();

        table.row(&[
            f(rate, 0),
            f(measured_mrt, 1),
            f(lq_mrt, 1),
            f(measured_rps, 1),
            f(sim.app_cpu_utilization, 2),
            f(sol.processor_utilization[app.0], 2),
        ]);
        rep.push(lq_mrt, measured_mrt);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nlayered queuing open-class mrt accuracy: {:.1} % (same blind spot as fig 2: \
         infrastructure latency)",
        rep.mean_accuracy()
    );
    let _ = writeln!(
        out,
        "shape check: both columns blow up toward the 186 req/s capacity; utilisations track"
    );
    out
}
