//! Figures 7 and 8: balancing the two §9.1 costs as the slack falls.
//!
//! Fig 7 sweeps the slack from 1.1 (the minimum giving 0 % SLA failures;
//! the paper's SUmax = 62.7 % there) down to 0, reporting the *average %
//! SLA failures* and *average % server-usage saving* across loads before
//! 100 % usage. Fig 8 zooms into slack 1.1 → 0.9, the region where the
//! first saving is cheap ("during the first 0.1 reduction in slack, the
//! increase in average % SLA failures is smaller than the increase in the
//! average % server usage saving").

use crate::cachecheck::{cache_line, checked_slack_sweep, PlannerCalls};
use crate::experiments::fig5_6::loads;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_resman::costs::SweepConfig;
use perfpred_resman::runtime::RuntimeOptions;
use perfpred_resman::scenario::{paper_pool, paper_workload};
use std::fmt::Write as _;

const REFERENCE_SLACK: f64 = 1.1;

fn run_sweep(
    ctx: &Experiments,
    slacks: &[f64],
) -> (f64, Vec<perfpred_resman::costs::SlackCurve>, PlannerCalls) {
    let config = SweepConfig {
        loads: loads(),
        runtime: RuntimeOptions::default(),
    };
    checked_slack_sweep(
        ctx,
        &paper_pool(),
        &paper_workload(1_000),
        &config,
        slacks,
        REFERENCE_SLACK,
    )
}

/// Fig 7: slack 1.1 → 0.
pub fn run_fig7(ctx: &Experiments) -> String {
    let slacks: Vec<f64> = (0..=11).rev().map(|i| f64::from(i) / 10.0).collect();
    let (su_max, curves, calls) = run_sweep(ctx, &slacks);
    // The sweep revisits the same (server, workload) operating points
    // across slacks and bisection probes; memoisation must cut the
    // underlying model solves at least fivefold.
    assert!(
        calls.requests >= 5 * calls.solves,
        "fig7 cache reuse below 5x: {} requests for {} solves",
        calls.requests,
        calls.solves,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — average % SLA failures and % server-usage saving, slack 1.1 -> 0\n"
    );
    let _ = writeln!(
        out,
        "SUmax (usage at slack 1.1) = {:.1} % (paper: 62.7 %)\n",
        su_max
    );
    let mut table = Table::new(&["slack", "avg % SLA failures", "avg % server usage saving"]);
    for c in &curves {
        table.row(&[
            f(c.slack, 1),
            f(c.avg_sla_failure_pct, 2),
            f(c.avg_usage_saving_pct, 2),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "\n{}", cache_line(&calls));
    let _ = writeln!(
        out,
        "\npaper shape: first 0.1 of slack reduction saves more usage than it costs in \
         failures; between 1.0 and 0.9 the two rates are almost identical; below that \
         failures outpace savings until 100 % failures / SUmax saving at slack 0"
    );
    out
}

/// Fig 8: the failure/saving trade-off, slack 1.1 → 0.9.
pub fn run_fig8(ctx: &Experiments) -> String {
    let slacks: Vec<f64> = (0..=8).map(|i| 1.1 - 0.025 * f64::from(i)).collect();
    let (su_max, curves, calls) = run_sweep(ctx, &slacks);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — SLA failures vs server-usage saving as slack falls 1.1 -> 0.9\n"
    );
    let _ = writeln!(out, "SUmax = {:.1} %\n", su_max);
    let mut table = Table::new(&[
        "slack",
        "avg % SLA failures",
        "avg % usage saving",
        "saving - failures",
    ]);
    for c in &curves {
        table.row(&[
            f(c.slack, 3),
            f(c.avg_sla_failure_pct, 2),
            f(c.avg_usage_saving_pct, 2),
            f(c.avg_usage_saving_pct - c.avg_sla_failure_pct, 2),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "\n{}", cache_line(&calls));
    let _ = writeln!(
        out,
        "\npaper: in this window the saving initially outpaces the failures, then the two \
         grow at nearly the same rate — the sweet spot for a cost-balancing operator"
    );
    out
}
