//! Figure 3: predictive accuracy for the new server as the number of
//! clients `x` between the two calibration data points grows.
//!
//! Following §4.2's supporting experiments exactly: the layered queuing
//! model (at the paper's 20 ms convergence criterion) generates the
//! historical data points — for the lower equation, one point fixed at
//! 66 % of the max-throughput load and one `x` clients below it; for the
//! upper equation, one fixed at 110 % and one `x` clients above. `x` is
//! scaled per established server so the *fraction* of the max-throughput
//! load between the points is constant. Relationship 2 then extrapolates
//! to the new architecture, whose accuracy is judged against LQN-generated
//! truth.
//!
//! Expected shape: the lower (exponential) equation's accuracy rises
//! roughly linearly with `x` and fluctuates; the upper (linear) equation's
//! accuracy rises then levels off; tiny `x` is unreliable because the
//! 20 ms convergence criterion can invert the two points' response times.

use crate::context::M_NOMINAL;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, PerformanceModel, Workload};
use perfpred_hydra::{Relationship1, Relationship2, ServerObservations};
use std::fmt::Write as _;

/// `x` values, expressed on the reference server AppServF.
const X_VALUES: [f64; 8] = [10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 900.0];

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let lqn = ctx.lqn();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — new-server accuracy vs clients between calibration points (LQN-generated data)\n"
    );

    // LQN max throughputs (pseudo-benchmark) per server.
    let servers = Experiments::servers();
    let mut mx = Vec::new();
    for s in &servers {
        mx.push(lqn.max_throughput_rps(s, &Workload::typical(100)).unwrap());
    }
    let new_server = &servers[0];
    let mx_new = mx[0];
    let n_star_new = mx_new / M_NOMINAL;
    let mx_f = mx[1];

    // LQN-generated "truth" for the new server over both regions.
    let lower_eval: Vec<u32> = [0.2, 0.3, 0.4, 0.5, 0.6]
        .iter()
        .map(|fr| (fr * n_star_new) as u32)
        .collect();
    let upper_eval: Vec<u32> = [1.15, 1.25, 1.4, 1.55]
        .iter()
        .map(|fr| (fr * n_star_new) as u32)
        .collect();
    let truth_lower = Experiments::predict_grid(lqn, new_server, &lower_eval);
    let truth_upper = Experiments::predict_grid(lqn, new_server, &upper_eval);

    let mut table = Table::new(&[
        "x (clients on F)",
        "lower eq acc %",
        "upper eq acc %",
        "overall %",
    ]);
    for &x in &X_VALUES {
        let frac = x / (mx_f / M_NOMINAL); // fraction of F's knee load
        let mut r1s: Vec<Relationship1> = Vec::new();
        let mut degenerate = false;
        for (i, server) in servers.iter().enumerate().skip(1) {
            let n_star = mx[i] / M_NOMINAL;
            let x_scaled = frac * n_star;
            let n66 = 0.66 * n_star;
            let n110 = 1.10 * n_star;
            let pts = [(n66 - x_scaled).max(2.0), n66, n110, n110 + x_scaled];
            let mut obs = ServerObservations::new(server.name.clone(), mx[i]);
            for (j, &n) in pts.iter().enumerate() {
                let p = lqn
                    .predict(server, &Workload::typical(n.round() as u32))
                    .unwrap();
                if j < 2 {
                    obs = obs.with_lower(n.round(), p.mrt_ms);
                } else {
                    obs = obs.with_upper(n.round(), p.mrt_ms);
                }
            }
            match Relationship1::calibrate(&obs, M_NOMINAL) {
                Ok(r1) => r1s.push(r1),
                Err(_) => {
                    // The 20 ms convergence criterion produced inverted
                    // points — the paper's small-x pathology.
                    degenerate = true;
                }
            }
        }
        if degenerate || r1s.len() < 2 {
            table.row(&[
                f(x, 0),
                "degenerate".into(),
                "degenerate".into(),
                "-".into(),
            ]);
            continue;
        }
        let r2 = match Relationship2::calibrate(&r1s) {
            Ok(r2) => r2,
            Err(_) => {
                table.row(&[
                    f(x, 0),
                    "degenerate".into(),
                    "degenerate".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let r1_new = match r2.r1_for_max_throughput(mx_new) {
            Ok(r1) => r1,
            Err(_) => {
                table.row(&[
                    f(x, 0),
                    "degenerate".into(),
                    "degenerate".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let mut lower_rep = AccuracyReport::new();
        for (i, &n) in lower_eval.iter().enumerate() {
            if let Ok(pred) = r1_new.predict_mrt(f64::from(n)) {
                lower_rep.push(pred, truth_lower[i].0);
            }
        }
        let mut upper_rep = AccuracyReport::new();
        for (i, &n) in upper_eval.iter().enumerate() {
            if let Ok(pred) = r1_new.predict_mrt(f64::from(n)) {
                upper_rep.push(pred, truth_upper[i].0);
            }
        }
        table.row(&[
            f(x, 0),
            f(lower_rep.mean_accuracy(), 1),
            f(upper_rep.mean_accuracy(), 1),
            f(AccuracyReport::paired_mean(&lower_rep, &upper_rep), 1),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npaper shape: lower accuracy grows ~linearly with x (with fluctuations); upper \
         accuracy levels off; x below ~30 unreliable at the 20 ms convergence criterion"
    );
    out
}
