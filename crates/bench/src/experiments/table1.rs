//! Table 1: the historical method's relationship-1 parameters per server,
//! calibrated with the paper's minimal data volume (nldp = nudp = 2).
//!
//! Paper values (its 2004 testbed):
//!
//! | server | cL (ms) | λL     |
//! |--------|---------|--------|
//! | S      | 138.9   | 4e-06  |
//! | F      | 84.1    | 1e-04  |
//! | VF     | 10.7    | 9e-04  |
//!
//! Absolute values depend on the testbed; the *shape* to reproduce is that
//! `cL` falls as max throughput rises (eq 3) while the established fits
//! interpolate their own data exactly.

use crate::report::{f, Table};
use crate::Experiments;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let historical = ctx.historical();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — historical relationship-1 parameters (nldp = nudp = 2)\n"
    );
    let mut table = Table::new(&[
        "server",
        "mx (req/s)",
        "cL (ms)",
        "lambdaL",
        "lambdaU",
        "cU (ms)",
        "source",
    ]);
    for server in Experiments::servers() {
        let (r1, source) = match historical.established_r1(&server.name) {
            Some(r1) => (*r1, "measured (established)"),
            None => (
                historical
                    .r2()
                    .expect("two established servers")
                    .r1_for_max_throughput(server.max_throughput_rps)
                    .expect("within calibrated range"),
                "relationship 2 (new)",
            ),
        };
        table.row(&[
            server.name.clone(),
            f(r1.max_throughput_rps, 1),
            f(r1.lower.c, 1),
            format!("{:.2e}", r1.lower.lambda),
            format!("{:.4}", r1.upper.slope),
            f(r1.upper.intercept, 0),
            source.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npaper (2004 testbed): cL = 138.9 / 84.1 / 10.7 ms, lambdaL = 4e-06 / 1e-04 / 9e-04"
    );
    let _ = writeln!(
        out,
        "shape check: cL decreases with max throughput; lambdaU scales ~1/mx; cU ~ -think time"
    );
    out
}
