//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. the §4.1 *transition* relationship (exponential phasing between the
//!    lower and upper equations, 66–110 % of the max-throughput load)
//!    versus a hard switch at max throughput;
//! 2. calibration data volume — `nldp = nudp` of 2 (the paper's minimum)
//!    versus 3 and 4 points per equation;
//! 3. the basic versus advanced hybrid variants (§6) on the new
//!    architecture.

use crate::context::{GRID_FRACTIONS, M_NOMINAL};
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, PerformanceModel, ServerArch, Workload};
use perfpred_hybrid::{HybridModel, HybridOptions};
use perfpred_hydra::Relationship1;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablations\n");

    // --- 1. transition phasing vs hard switch, on AppServF ---
    let server = ServerArch::app_serv_f();
    let grid = ctx.grid(&server);
    let measured = ctx.measure_grid(&server, &grid, false);
    let r1 = *ctx
        .historical()
        .established_r1(&server.name)
        .expect("F is established");
    let hard_switch = |r1: &Relationship1, n: f64| -> f64 {
        if n < r1.clients_at_max() {
            r1.lower.eval(n)
        } else {
            r1.upper.eval(n).max(0.0)
        }
    };
    let mut with_t = AccuracyReport::new();
    let mut without_t = AccuracyReport::new();
    for (i, point) in measured.iter().enumerate() {
        let n = f64::from(grid[i]);
        with_t.push(r1.predict_mrt(n).unwrap(), point.mrt_ms);
        without_t.push(hard_switch(&r1, n), point.mrt_ms);
    }
    let _ = writeln!(
        out,
        "1. transition phasing ({}, all grid points):",
        server.name
    );
    let _ = writeln!(
        out,
        "   with transition {:.1} %  |  hard switch at N* {:.1} %",
        with_t.mean_accuracy(),
        without_t.mean_accuracy()
    );
    let _ = writeln!(
        out,
        "   (§4.1 reports the transition \"can increase predictive accuracy\" on its \
         testbed; our simulated knee is sharper than an exponential phase-in, so here the \
         hard switch wins — which choice helps is testbed-dependent, exactly why HYDRA \
         validates relationships against recorded data before trusting them)\n"
    );

    // --- 2. calibration data volume ---
    let _ = writeln!(
        out,
        "2. calibration data volume (AppServF, mean accuracy on the grid):"
    );
    let mut table = Table::new(&["nldp = nudp", "accuracy %", "data points"]);
    for n_points in [2usize, 3, 4] {
        let obs = ctx.measure_observations(&server, n_points, n_points);
        let r1n = Relationship1::calibrate(&obs, M_NOMINAL).expect("calibration");
        let mut rep = AccuracyReport::new();
        for (i, point) in measured.iter().enumerate() {
            rep.push(r1n.predict_mrt(f64::from(grid[i])).unwrap(), point.mrt_ms);
        }
        table.row(&[
            n_points.to_string(),
            f(rep.mean_accuracy(), 1),
            obs.point_count().to_string(),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "   (paper §4.2: \"accurate predictions can be made even when nudp and nldp are \
         both reduced to 2\")\n"
    );

    // --- 3. basic vs advanced hybrid on the new server ---
    let new_server = ServerArch::app_serv_s();
    let lqn = ctx.lqn();
    let advanced = ctx.hybrid();
    let basic = HybridModel::basic(
        lqn,
        &[ServerArch::app_serv_f(), ServerArch::app_serv_vf()],
        &HybridOptions::default(),
    )
    .expect("basic hybrid");
    let s_grid = ctx.grid(&new_server);
    let s_measured = ctx.measure_grid(&new_server, &s_grid, false);
    let mut adv_rep = (AccuracyReport::new(), AccuracyReport::new()); // (lower, upper)
    let mut bas_rep = (AccuracyReport::new(), AccuracyReport::new());
    for (i, point) in s_measured.iter().enumerate() {
        let w = Workload::typical(s_grid[i]);
        let frac = GRID_FRACTIONS[i];
        let a = advanced
            .predict(&new_server, &w)
            .map(|p| p.mrt_ms)
            .unwrap_or(f64::NAN);
        let b = basic
            .predict(&new_server, &w)
            .map(|p| p.mrt_ms)
            .unwrap_or(f64::NAN);
        if frac <= 0.66 {
            adv_rep.0.push(a, point.mrt_ms);
            bas_rep.0.push(b, point.mrt_ms);
        } else if frac >= 1.10 {
            adv_rep.1.push(a, point.mrt_ms);
            bas_rep.1.push(b, point.mrt_ms);
        }
    }
    let _ = writeln!(
        out,
        "3. hybrid variants on {} (lower/upper mean, §4.2 style):",
        new_server.name
    );
    let _ = writeln!(
        out,
        "   advanced (pseudo data for the target architecture): {:.1} %",
        AccuracyReport::paired_mean(&adv_rep.0, &adv_rep.1)
    );
    let _ = writeln!(
        out,
        "   basic (relationship 2 from established pseudo data): {:.1} %",
        AccuracyReport::paired_mean(&bas_rep.0, &bas_rep.1)
    );
    let _ = writeln!(
        out,
        "   (§6: the advanced model exists because generating data for the target \
         architecture \"increases\" the basic model's accuracy)"
    );
    out
}
