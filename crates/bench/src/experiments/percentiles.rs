//! §7.1 — response-time distribution predictions: converting each method's
//! *mean* prediction into a 90th-percentile prediction via the
//! exponential / double-exponential distributions (eqs 6–7), plus the
//! historical method's ability to record and predict the percentile
//! *directly*.
//!
//! Paper: percentile (p = 90 %) accuracies — historical 80 %/88 %, layered
//! queuing 77 %/69 %, hybrid 77 %/70 % (new/established), at most 4.6 %
//! below the corresponding mean accuracies; eq 7's scale `b` calibrated at
//! 204.1 and constant across architectures.

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, PerformanceModel, RtDistribution, Workload};
use perfpred_hydra::HistoricalModel;
use perfpred_tradesim::harness::sweep;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§7.1 — 90th-percentile predictions from mean predictions (eqs 6–7)\n"
    );

    // Calibrate the double-exponential scale b on an established server at
    // a saturated operating point (the paper finds it constant across
    // architectures).
    let f_server = &Experiments::servers()[1];
    let n_sat = (1.25 * ctx.n_star(f_server)).round() as u32;
    let mut cal_opts = ctx.sim.with_seed(ctx.sim.seed ^ 0xB);
    cal_opts.store_samples = true;
    let cal = sweep(
        &ctx.gt,
        f_server,
        &Workload::typical(100),
        &[n_sat],
        &cal_opts,
    );
    let b_scale = cal[0].classes[0].mad_ms.unwrap_or(204.1);
    let _ = writeln!(
        out,
        "calibrated double-exponential scale b = {:.1} ms on {} (paper: 204.1 on its testbed)\n",
        b_scale, f_server.name
    );

    // Direct-percentile historical model: relationship machinery fitted to
    // measured p90 observations on the established servers.
    let direct = build_direct_percentile_model(ctx);

    let methods: [(&str, &dyn PerformanceModel); 3] = [
        ("historical", ctx.historical()),
        ("layered-q", ctx.lqn()),
        ("hybrid", ctx.hybrid()),
    ];
    let mut reps = vec![(AccuracyReport::new(), AccuracyReport::new()); 4]; // 3 methods + direct

    for server in Experiments::servers() {
        let is_new = server.name == "AppServS";
        let grid = ctx.grid(&server);
        let measured = ctx.measure_grid(&server, &grid, true);
        let _ = writeln!(out, "{}", server.name);
        let mut table = Table::new(&[
            "clients",
            "measured p90",
            "hist p90",
            "lq p90",
            "hyb p90",
            "hist direct",
        ]);
        for (i, point) in measured.iter().enumerate() {
            let measured_p90 = match point.p90_ms() {
                Some(p) => p,
                None => continue,
            };
            let w = Workload::typical(grid[i]);
            let mut row = vec![grid[i].to_string(), f(measured_p90, 1)];
            for (mi, (_, model)) in methods.iter().enumerate() {
                let p90 = model
                    .predict(&server, &w)
                    .ok()
                    .and_then(|p| {
                        RtDistribution::from_mean_prediction(p.mrt_ms, p.saturated, b_scale)
                            .ok()
                            .map(|d| d.percentile(90.0))
                    })
                    .unwrap_or(f64::NAN);
                row.push(f(p90, 1));
                if p90.is_finite() {
                    let (est, new) = &mut reps[mi];
                    if is_new {
                        new.push(p90, measured_p90)
                    } else {
                        est.push(p90, measured_p90)
                    }
                }
            }
            let d90 = direct
                .as_ref()
                .and_then(|m| m.predict_percentile(&server, &w, 90.0).ok())
                .unwrap_or(f64::NAN);
            row.push(f(d90, 1));
            if d90.is_finite() {
                let (est, new) = &mut reps[3];
                if is_new {
                    new.push(d90, measured_p90)
                } else {
                    est.push(d90, measured_p90)
                }
            }
            table.row(&row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    let mut summary = Table::new(&[
        "method",
        "p90 acc est. %",
        "p90 acc new %",
        "paper est.",
        "paper new",
    ]);
    let paper = [("88", "80"), ("69", "77"), ("70", "77"), ("-", "-")];
    let names = [
        "historical (eq 6-7)",
        "layered-q (eq 6-7)",
        "hybrid (eq 6-7)",
        "historical (direct)",
    ];
    for (i, name) in names.iter().enumerate() {
        let (est, new) = &reps[i];
        summary.row(&[
            name.to_string(),
            f(est.mean_accuracy(), 1),
            f(new.mean_accuracy(), 1),
            paper[i].0.into(),
            paper[i].1.into(),
        ]);
    }
    out.push_str(&summary.render());
    let _ = writeln!(
        out,
        "\npaper: percentile accuracy at most 4.6 % below the mean accuracy; the historical \
         method can avoid even that by recording percentiles directly (§8.2)"
    );
    out
}

/// Builds a historical model with direct p90 observations on F and VF.
fn build_direct_percentile_model(ctx: &Experiments) -> Option<HistoricalModel> {
    let mut builder = HistoricalModel::builder().think_time_ms(7_000.0);
    let mut p90_obs = Vec::new();
    for server in Experiments::established() {
        // Mean observations (required for the base model).
        builder = builder.observations(ctx.measure_observations(&server, 2, 2));
        // p90 observations at the same anchors.
        let mx = ctx.measured_mx_of(&server);
        let n_star = ctx.n_star(&server);
        let grid: Vec<u32> = [0.15, 0.66, 1.10, 1.55]
            .iter()
            .map(|fr| (fr * n_star).round() as u32)
            .collect();
        let mut opts = ctx.sim.with_seed(ctx.sim.seed ^ 0xD1);
        opts.store_samples = true;
        let points = sweep(&ctx.gt, &server, &Workload::typical(100), &grid, &opts);
        let mut obs = perfpred_hydra::ServerObservations::new(server.name.clone(), mx);
        for (i, p) in points.iter().enumerate() {
            let p90 = p.p90_ms()?;
            if i < 2 {
                obs = obs.with_lower(f64::from(p.clients), p90);
            } else {
                obs = obs.with_upper(f64::from(p.clients), p90);
            }
        }
        p90_obs.push(obs);
    }
    builder.percentile_observations(90.0, p90_obs).build().ok()
}
