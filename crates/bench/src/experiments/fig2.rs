//! Figure 2: mean response time vs number of clients for the typical
//! workload on all three architectures — measured (simulated) against the
//! three prediction methods — plus the paper's headline accuracy numbers.
//!
//! Accuracy follows §4.2's definition: "the overall predictive accuracy is
//! defined as the mean of the lower equation accuracy and the upper
//! equation accuracy" — i.e. points in the lower region (≤ 66 % of the
//! max-throughput load) and the upper region (≥ 110 %), with the
//! transition region excluded from the headline number (we also report the
//! all-points mean).
//!
//! Paper: historical 89.1 % (established) / 83 % (new); layered queuing
//! mrt 68.8 % / 73.4 % and throughput 97.8 % / 97.1 %; hybrid mrt
//! 67.1 % / 74.9 %.

use crate::context::GRID_FRACTIONS;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, PerformanceModel};
use std::fmt::Write as _;

/// Accuracy accumulators for one method on one server group.
#[derive(Default)]
struct Acc {
    lower_mrt: AccuracyReport,
    upper_mrt: AccuracyReport,
    all_mrt: AccuracyReport,
    tput: AccuracyReport,
}

impl Acc {
    fn paper_accuracy(&self) -> f64 {
        AccuracyReport::paired_mean(&self.lower_mrt, &self.upper_mrt)
    }
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let methods: [(&str, &dyn PerformanceModel); 3] = [
        ("historical", ctx.historical()),
        ("layered-q", ctx.lqn()),
        ("hybrid", ctx.hybrid()),
    ];
    // [method][established=0 | new=1]
    let mut acc: Vec<[Acc; 2]> = (0..3).map(|_| [Acc::default(), Acc::default()]).collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2 — mean response time vs clients, typical workload (measured vs predicted)\n"
    );

    for server in Experiments::servers() {
        let gi = usize::from(server.name == "AppServS"); // 1 = new
        let grid = ctx.grid(&server);
        let measured = ctx.measure_grid(&server, &grid, false);
        let _ = writeln!(
            out,
            "{} ({})",
            server.name,
            if gi == 1 { "new" } else { "established" }
        );
        let mut table = Table::new(&[
            "clients",
            "region",
            "measured mrt",
            "hist mrt",
            "lq mrt",
            "hyb mrt",
            "measured rps",
            "hist rps",
            "lq rps",
        ]);
        let grids: [Vec<(f64, f64)>; 3] = [
            Experiments::predict_grid(methods[0].1, &server, &grid),
            Experiments::predict_grid(methods[1].1, &server, &grid),
            Experiments::predict_grid(methods[2].1, &server, &grid),
        ];
        for (i, point) in measured.iter().enumerate() {
            let frac = GRID_FRACTIONS[i];
            let region = if frac <= 0.66 {
                "lower"
            } else if frac >= 1.10 {
                "upper"
            } else {
                "transition"
            };
            table.row(&[
                grid[i].to_string(),
                region.to_string(),
                f(point.mrt_ms, 1),
                f(grids[0][i].0, 1),
                f(grids[1][i].0, 1),
                f(grids[2][i].0, 1),
                f(point.throughput_rps, 1),
                f(grids[0][i].1, 1),
                f(grids[1][i].1, 1),
            ]);
            for mi in 0..3 {
                let a = &mut acc[mi][gi];
                let (mrt, tput) = grids[mi][i];
                a.all_mrt.push(mrt, point.mrt_ms);
                a.tput.push(tput, point.throughput_rps);
                match region {
                    "lower" => a.lower_mrt.push(mrt, point.mrt_ms),
                    "upper" => a.upper_mrt.push(mrt, point.mrt_ms),
                    _ => {}
                }
            }
        }
        out.push_str(&table.render());
        out.push('\n');
    }

    let _ = writeln!(
        out,
        "accuracy summary (%%; 'mrt' = mean of lower-eq and upper-eq accuracies, §4.2):"
    );
    let mut summary = Table::new(&[
        "method",
        "mrt est.",
        "mrt new",
        "mrt est. (all pts)",
        "mrt new (all pts)",
        "tput est.",
        "tput new",
        "paper mrt est./new",
    ]);
    let paper = ["89.1 / 83.0", "68.8 / 73.4", "67.1 / 74.9"];
    for (mi, (name, _)) in methods.iter().enumerate() {
        let est = &acc[mi][0];
        let new = &acc[mi][1];
        summary.row(&[
            name.to_string(),
            f(est.paper_accuracy(), 1),
            f(new.paper_accuracy(), 1),
            f(est.all_mrt.mean_accuracy(), 1),
            f(new.all_mrt.mean_accuracy(), 1),
            f(est.tput.mean_accuracy(), 1),
            f(new.tput.mean_accuracy(), 1),
            paper[mi].to_string(),
        ]);
    }
    out.push_str(&summary.render());
    let _ = writeln!(
        out,
        "\npaper throughput accuracies (layered queuing): 97.8 % est. / 97.1 % new"
    );
    out
}
