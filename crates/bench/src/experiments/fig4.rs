//! Figure 4: heterogeneous-workload mean response time predictions for the
//! new server architecture — relationship 3 extrapolates the max
//! throughput at each buy percentage (eq 5) and relationship 2 rebuilds
//! the response curve around it.
//!
//! The paper shows "a good prediction for the shapes of the mean workload
//! response time graphs" at 0 %/25 % buy; we sweep 0/10/25 % and compare
//! the historical method (and the layered queuing model) against the
//! simulated truth.

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, PerformanceModel, Workload};
use perfpred_tradesim::harness::sweep;
use std::fmt::Write as _;

const BUY_PCTS: [f64; 3] = [0.0, 10.0, 25.0];
const FRACS: [f64; 8] = [0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.3, 1.5];

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let server = &Experiments::servers()[0]; // AppServS, the new one
    let historical = ctx.historical();
    let lqn = ctx.lqn();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — heterogeneous workload mrt predictions for {} (new architecture)\n",
        server.name
    );

    let mut hist_rep = AccuracyReport::new();
    let mut lq_rep = AccuracyReport::new();
    for &b in &BUY_PCTS {
        // The mix-specific knee: relationship 3 says max throughput falls
        // with b; keep the grid relative to the *typical* knee so the
        // curves shift visibly, as in the paper's figure.
        let n_star = ctx.n_star(server);
        let grid: Vec<u32> = FRACS
            .iter()
            .map(|fr| (fr * n_star).round() as u32)
            .collect();
        let template = Workload::with_buy_pct(1_000, b);
        let measured = sweep(
            &ctx.gt,
            server,
            &template,
            &grid,
            &ctx.sim.with_seed(ctx.sim.seed ^ (b as u64 + 17)),
        );
        let _ = writeln!(out, "buy = {b} %");
        let mut table = Table::new(&[
            "clients",
            "measured mrt",
            "historical",
            "layered-q",
            "measured rps",
        ]);
        for (i, point) in measured.iter().enumerate() {
            let w = template.scaled(f64::from(grid[i]) / 1_000.0);
            let hist = historical
                .predict(server, &w)
                .map(|p| p.mrt_ms)
                .unwrap_or(f64::NAN);
            let lq = lqn
                .predict(server, &w)
                .map(|p| p.mrt_ms)
                .unwrap_or(f64::NAN);
            table.row(&[
                point.clients.to_string(),
                f(point.mrt_ms, 1),
                f(hist, 1),
                f(lq, 1),
                f(point.throughput_rps, 1),
            ]);
            if hist.is_finite() {
                hist_rep.push(hist, point.mrt_ms);
            }
            if lq.is_finite() {
                lq_rep.push(lq, point.mrt_ms);
            }
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "mean accuracy across mixes: historical {:.1} %, layered queuing {:.1} %",
        hist_rep.mean_accuracy(),
        lq_rep.mean_accuracy()
    );
    let _ = writeln!(
        out,
        "paper: \"a good prediction for the shapes\"; scalability lines nearly linear before \
         max throughput (small lambdaL)"
    );
    out
}
