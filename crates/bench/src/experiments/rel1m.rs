//! §4.1's throughput relationship: the clients→throughput gradient `m` is
//! the same for every architecture (it depends on the think time, not the
//! CPU speed), `m ≈ 0.14` in the case study, and predicting each server's
//! below-saturation throughput with the *pooled* `m` is accurate to ~1.3 %.

use crate::context::M_NOMINAL;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::Workload;
use perfpred_hydra::ThroughputRelation;
use perfpred_tradesim::harness::sweep;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§4.1 — clients→throughput gradient m across architectures\n"
    );

    // Unsaturated measurement points per server (20..60 % of the knee).
    /// (server name, its own fitted m, its (clients, throughput) samples).
    type ServerFit = (String, f64, Vec<(f64, f64)>);
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut per_server: Vec<ServerFit> = Vec::new();
    for server in Experiments::servers() {
        let n_star = ctx.n_star(&server);
        let grid: Vec<u32> = [0.2, 0.4, 0.6]
            .iter()
            .map(|frac| (frac * n_star).round() as u32)
            .collect();
        let points = sweep(&ctx.gt, &server, &Workload::typical(100), &grid, &ctx.sim);
        let samples: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (f64::from(p.clients), p.throughput_rps))
            .collect();
        let own_m = ThroughputRelation::fit(&samples).unwrap().m;
        pooled.extend_from_slice(&samples);
        per_server.push((server.name.clone(), own_m, samples));
    }
    let m = ThroughputRelation::fit(&pooled).unwrap().m;

    let mut table = Table::new(&["server", "own m", "pooled m", "tput err % (pooled m)"]);
    let mut worst_err = 0.0f64;
    for (name, own_m, samples) in &per_server {
        let mut err_acc = 0.0;
        for &(n, x) in samples {
            err_acc += 100.0 * (m * n - x).abs() / x;
        }
        let err = err_acc / samples.len() as f64;
        worst_err = worst_err.max(err);
        table.row(&[name.clone(), f(*own_m, 4), f(m, 4), f(err, 2)]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npooled m = {:.4} (paper: 0.14); nominal 1/(think + light rt) = {:.4}",
        m, M_NOMINAL
    );
    let _ = writeln!(
        out,
        "worst per-server throughput error with the shared gradient: {:.2} % (paper: 1.3 %)",
        worst_err
    );
    out
}
