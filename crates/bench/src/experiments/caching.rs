//! §7.2 — modelling caching: when the application server's memory acts as
//! an LRU cache over per-client session data, a cache miss adds a database
//! call, and the miss probability depends on the (load-dependent) arrival
//! process — a feedback the layered queuing method cannot express because
//! its per-class call counts are fixed inputs.
//!
//! We sweep the client count on AppServS (128 MB heap, 64 MB usable cache,
//! ~512 KB sessions ⇒ ~128 resident sessions): below that the cache hits
//! and the plain LQN stays accurate; above it the workload thrashes,
//! per-request database work grows, and the static LQN (calibrated without
//! caching) drifts. The historical method simply records the cached
//! system's own curve and stays accurate (§8.1).

use crate::context::M_NOMINAL;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{AccuracyReport, PerformanceModel, Workload};
use perfpred_hydra::{HistoricalModel, ServerObservations};
use perfpred_tradesim::config::CacheOptions;
use perfpred_tradesim::harness::{find_max_throughput, sweep};
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let server = &Experiments::servers()[0]; // AppServS: smallest heap
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§7.2 — caching: LRU session cache on {} (usable {} MB, ~512 KB sessions)\n",
        server.name,
        CacheOptions::default().capacity_for(server) / (1024 * 1024)
    );

    let mut cached_opts = ctx.sim;
    cached_opts.cache = Some(CacheOptions::default());

    // Measured max throughput of the *cached* system, for the cache-aware
    // historical calibration.
    let mx_cached = find_max_throughput(
        &ctx.gt,
        server,
        &Workload::typical(100),
        &cached_opts.with_seed(ctx.sim.seed ^ 0xCAC4E),
    );
    let n_star = mx_cached / M_NOMINAL;

    // Cache-aware historical model: record the cached system's own data
    // (cache size is just another recorded variable, §7.2).
    let cal_grid: Vec<u32> = [0.15, 0.66, 1.10, 1.55]
        .iter()
        .map(|fr| (fr * n_star).round() as u32)
        .collect();
    let cal = sweep(
        &ctx.gt,
        server,
        &Workload::typical(100),
        &cal_grid,
        &cached_opts.with_seed(ctx.sim.seed ^ 0xCA11),
    );
    let mut obs = ServerObservations::new(server.name.clone(), mx_cached);
    for (i, p) in cal.iter().enumerate() {
        if i < 2 {
            obs = obs
                .with_lower(f64::from(p.clients), p.mrt_ms)
                .with_throughput(f64::from(p.clients), p.throughput_rps);
        } else {
            obs = obs.with_upper(f64::from(p.clients), p.mrt_ms);
        }
    }
    let hist_cached = HistoricalModel::builder().observations(obs).build();

    // Evaluation sweep on the cached system.
    let grid: Vec<u32> = [0.2, 0.35, 0.5, 0.66, 0.8, 0.95, 1.1, 1.3]
        .iter()
        .map(|fr| (fr * n_star).round() as u32)
        .collect();
    let measured = sweep(
        &ctx.gt,
        server,
        &Workload::typical(100),
        &grid,
        &cached_opts.with_seed(ctx.sim.seed ^ 0xCA55),
    );

    let lqn = ctx.lqn(); // calibrated WITHOUT caching (static call counts)
    let mut table = Table::new(&[
        "clients",
        "miss ratio",
        "measured mrt",
        "lq (static) mrt",
        "hist (cache-aware) mrt",
    ]);
    let mut lq_rep = AccuracyReport::new();
    let mut hist_rep = AccuracyReport::new();
    for (i, point) in measured.iter().enumerate() {
        let w = Workload::typical(grid[i]);
        let lq = lqn
            .predict(server, &w)
            .map(|p| p.mrt_ms)
            .unwrap_or(f64::NAN);
        let hist = hist_cached
            .as_ref()
            .ok()
            .and_then(|m| m.predict(server, &w).ok())
            .map(|p| p.mrt_ms)
            .unwrap_or(f64::NAN);
        table.row(&[
            grid[i].to_string(),
            f(point.cache_miss_ratio.unwrap_or(0.0), 2),
            f(point.mrt_ms, 1),
            f(lq, 1),
            f(hist, 1),
        ]);
        if lq.is_finite() {
            lq_rep.push(lq, point.mrt_ms);
        }
        if hist.is_finite() {
            hist_rep.push(hist, point.mrt_ms);
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\ncached-system max throughput: {:.1} req/s (uncached benchmark: {:.1} req/s)",
        mx_cached,
        ctx.measured_mx_of(server)
    );
    let _ = writeln!(
        out,
        "accuracy on the cached system: layered queuing (static call counts) {:.1} %, \
         historical (cache-aware recalibration) {:.1} %",
        lq_rep.mean_accuracy(),
        hist_rep.mean_accuracy()
    );
    let _ = writeln!(
        out,
        "paper: the LQN's per-class DB-call count would have to depend on the model's own \
         solution (miss probability <- arrival rates <- response times), which the layered \
         queuing solution technique does not support; the historical method records the \
         memory size as a variable and recalibrates"
    );
    out
}
