//! Figures 5 and 6: resource-manager performance at different loads and
//! slack levels — % SLA failures (fig 5) and % server usage (fig 6).
//!
//! As in §9.1, the *hybrid* model plays the (less accurate) planner and the
//! *historical* model represents the real system response times. The pool
//! is 16 servers (8 × AppServS, 4 × AppServF, 4 × AppServVF); the workload
//! is 10 % buy (goal 150 ms), 45 % high-priority browse (300 ms), 45 %
//! low-priority browse (600 ms).

use crate::cachecheck::checked_sweep_loads;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_resman::costs::SweepConfig;
use perfpred_resman::runtime::RuntimeOptions;
use perfpred_resman::scenario::{paper_pool, paper_workload};
use std::fmt::Write as _;

/// The slack levels both figures plot.
pub const SLACKS: [f64; 3] = [1.0, 1.05, 1.1];

/// The load grid (total clients).
pub fn loads() -> Vec<u32> {
    (1..=12).map(|i| i * 1_000).collect()
}

fn sweep_all(ctx: &Experiments) -> Vec<(f64, Vec<perfpred_resman::costs::LoadPoint>)> {
    let pool = paper_pool();
    let template = paper_workload(1_000);
    let config = SweepConfig {
        loads: loads(),
        runtime: RuntimeOptions::default(),
    };
    SLACKS
        .iter()
        .map(|&s| {
            let (points, _) = checked_sweep_loads(ctx, &pool, &template, &config, s);
            (s, points)
        })
        .collect()
}

/// Fig 5: % SLA failures vs load.
pub fn run_fig5(ctx: &Experiments) -> String {
    let data = sweep_all(ctx);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — % SLA failures vs total clients (planner: hybrid, truth: historical)\n"
    );
    let mut table = Table::new(&["clients", "slack 1.0", "slack 1.05", "slack 1.1"]);
    for (i, &load) in loads().iter().enumerate() {
        table.row(&[
            load.to_string(),
            f(data[0].1[i].sla_failure_pct, 2),
            f(data[1].1[i].sla_failure_pct, 2),
            f(data[2].1[i].sla_failure_pct, 2),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npaper: slack 1.1 is the minimum giving 0 % SLA failures before 100 % server usage \
         (average predictive accuracy 92.5 %, y = 1.075; the gap is because the algorithm \
         uses some predictions more than others)"
    );
    out
}

/// Fig 6: % server usage vs load.
pub fn run_fig6(ctx: &Experiments) -> String {
    let data = sweep_all(ctx);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — % server usage vs total clients (pool processing power = 100 %)\n"
    );
    let mut table = Table::new(&["clients", "slack 1.0", "slack 1.05", "slack 1.1"]);
    for (i, &load) in loads().iter().enumerate() {
        table.row(&[
            load.to_string(),
            f(data[0].1[i].server_usage_pct, 1),
            f(data[1].1[i].server_usage_pct, 1),
            f(data[2].1[i].server_usage_pct, 1),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npaper: usage steps up as the greedy plan obtains servers; higher slack obtains \
         more processing power at the same load; irregularities come from the runtime \
         optimisations re-using leftover capacity"
    );
    out
}
