//! Extension experiment — end-to-end validation of the §9 pipeline against
//! the simulated testbed, something the paper could not do (its runtime
//! was the historical model itself).
//!
//! The hybrid model plans an allocation for a 4-server tier (2×AppServS,
//! AppServF, AppServVF) sharing one database; the *cluster simulator* then
//! runs the allocated clients and we check, per class, whether the SLA
//! goals actually hold. The shared database — which every per-server
//! prediction method quietly assumes away — is also measured, and the
//! experiment reports the load at which it becomes the real bottleneck.

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::{PerformanceModel, ServerArch, Workload};
use perfpred_resman::algorithm::allocate;
use perfpred_resman::scenario::paper_workload;
use perfpred_tradesim::cluster::ClusterSim;
use std::fmt::Write as _;

fn tier() -> Vec<ServerArch> {
    vec![
        ServerArch::app_serv_s(),
        ServerArch::app_serv_s(),
        ServerArch::app_serv_f(),
        ServerArch::app_serv_vf(),
    ]
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let planner = ctx.hybrid();
    let servers = tier();
    let slack = 1.1;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§9 extension — allocations validated in the fig-1 cluster simulator \
         (4-server tier, shared DB, slack {slack})\n"
    );

    for &total in &[1_500u32, 3_000, 4_200] {
        let template = paper_workload(total);
        let alloc = match allocate(planner, &servers, &template, slack) {
            Ok(a) => a,
            Err(e) => {
                let _ = writeln!(out, "load {total}: allocation failed: {e}");
                continue;
            }
        };
        let assignments: Vec<Workload> = (0..servers.len())
            .map(|si| alloc.server_workload(&template, si))
            .collect();
        let sim = ClusterSim::new(&ctx.gt, &servers, &assignments, 1.0, &ctx.sim).run();

        let _ = writeln!(
            out,
            "load {total} clients (rejected by plan: {}):",
            alloc.total_rejected_real()
        );
        let mut table = Table::new(&[
            "class",
            "goal (ms)",
            "sim mrt (ms)",
            "planner mrt (ms)",
            "met in sim",
        ]);
        for (ci, load) in template.classes.iter().enumerate() {
            let goal = load.class.rt_goal_ms.unwrap();
            let sim_mrt = sim.per_class[ci].rt.mean();
            // Planner's view: client-weighted mean across its assignments.
            let mut acc = 0.0;
            let mut weight = 0.0;
            for (si, w) in assignments.iter().enumerate() {
                if w.classes[ci].clients == 0 {
                    continue;
                }
                if let Ok(p) = planner.predict(&servers[si], w) {
                    let c = f64::from(w.classes[ci].clients);
                    acc += p.per_class_mrt_ms[ci] * c;
                    weight += c;
                }
            }
            let planned = if weight > 0.0 { acc / weight } else { f64::NAN };
            table.row(&[
                load.class.name.clone(),
                f(goal, 0),
                f(sim_mrt, 1),
                f(planned, 1),
                if sim_mrt <= goal { "yes" } else { "NO" }.to_string(),
            ]);
        }
        out.push_str(&table.render());
        let _ = writeln!(
            out,
            "app CPU utilisation: {:?}; shared DB CPU: {:.2}, disk: {:.2}\n",
            sim.app_cpu_utilization
                .iter()
                .map(|u| (u * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            sim.db_cpu_utilization,
            sim.disk_utilization
        );
    }
    let _ = writeln!(
        out,
        "reading: at moderate loads the model-planned allocation holds its goals in full \
         simulation; as the tier's aggregate throughput approaches the shared database's \
         capacity the per-server models' independence assumption (and with it the plan) \
         degrades — the scaling limit §2's single-database system model hides"
    );
    out
}
