//! §9.1's uniform-error control experiment: when the planner's error is
//! *uniform* — predictions equal the truth evaluated at `y ×` the actual
//! client count — setting the slack to exactly `y` yields 0 % SLA failures
//! below 100 % server usage, and the server usage at a given load is
//! constant in `y`.

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_resman::costs::{sweep_loads, SweepConfig};
use perfpred_resman::runtime::RuntimeOptions;
use perfpred_resman::scenario::{paper_pool, paper_workload, UniformErrorModel};
use std::fmt::Write as _;

const YS: [f64; 3] = [1.05, 1.075, 1.25];

/// Runs the experiment. The truth is the historical model; the planner is
/// the same model wrapped with uniform error `y`.
pub fn run(ctx: &Experiments) -> String {
    let truth = ctx.historical();
    let pool = paper_pool();
    let template = paper_workload(1_000);
    let loads: Vec<u32> = (1..=8).map(|i| i * 1_000).collect();
    // No runtime threshold/optimiser: isolate the slack-vs-error algebra.
    let config = SweepConfig {
        loads: loads.clone(),
        runtime: RuntimeOptions {
            threshold: 0.0,
            optimize: false,
        },
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "§9.1 — uniform predictive error y compensated by slack = y (truth: historical)\n"
    );
    let mut table = Table::new(&[
        "y",
        "slack",
        "max % SLA failures",
        "avg % usage",
        "usage vs y=1 (pp)",
    ]);
    // Baseline usage with a perfect planner.
    let base = sweep_loads(truth, truth, &pool, &template, &config, 1.0).unwrap();
    let base_usage: f64 = base.iter().map(|p| p.server_usage_pct).sum::<f64>() / base.len() as f64;

    for &y in &YS {
        let planner = UniformErrorModel::new(ctx.historical().clone(), y);
        for &slack in &[1.0, y] {
            let pts = sweep_loads(&planner, truth, &pool, &template, &config, slack).unwrap();
            let max_fail = pts.iter().map(|p| p.sla_failure_pct).fold(0.0f64, f64::max);
            let avg_usage = pts.iter().map(|p| p.server_usage_pct).sum::<f64>() / pts.len() as f64;
            table.row(&[
                f(y, 3),
                f(slack, 3),
                f(max_fail, 2),
                f(avg_usage, 1),
                f(avg_usage - base_usage, 1),
            ]);
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nexpected: slack = y rows show 0 % failures and (near-)constant server usage \
         across y — the paper's \"straightforward\" uniform case; slack 1.0 rows fail"
    );
    out
}
