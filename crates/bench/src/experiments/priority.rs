//! Extension experiment (§8.1): "priority queuing disciplines" — the
//! application server admits requests to its thread pool by service-class
//! priority instead of FIFO.
//!
//! The simulator runs a saturated AppServF with a gold (tight-goal) and a
//! bronze (loose-goal) browse class under both disciplines. The historical
//! method handles the priority system by recalibrating per class on its
//! own recorded curves (§8.1: all three methods can model the variation,
//! but our layered solver implements FIFO/PS mean-value analysis only —
//! priority scheduling is calibration data for the historical method,
//! an unsupported discipline for the analytic one).

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::workload::ClassLoad;
use perfpred_core::{ServiceClass, Workload};
use perfpred_tradesim::engine::TradeSim;
use std::fmt::Write as _;

fn workload(total: u32) -> Workload {
    Workload {
        classes: vec![
            ClassLoad {
                class: ServiceClass::browse().named("gold").with_goal(100.0),
                clients: total / 2,
            },
            ClassLoad {
                class: ServiceClass::browse().named("bronze").with_goal(2_000.0),
                clients: total / 2,
            },
        ],
    }
}

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let server = &Experiments::servers()[1]; // AppServF
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§8.1 extension — priority thread admission on a saturated {}\n",
        server.name
    );

    let mut table = Table::new(&[
        "clients",
        "discipline",
        "gold mrt",
        "bronze mrt",
        "bronze/gold",
        "total rps",
    ]);
    for &total in &[1_600u32, 2_200, 2_800] {
        for (label, priority) in [("fifo", false), ("priority", true)] {
            let mut opts = ctx.sim.with_seed(ctx.sim.seed ^ (total as u64));
            opts.priority_admission = priority;
            let r = TradeSim::new(&ctx.gt, server, &workload(total), &opts).run();
            let gold = r.per_class[0].rt.mean();
            let bronze = r.per_class[1].rt.mean();
            let rps = r.per_class.iter().map(|c| c.completed).sum::<u64>() as f64
                / (r.measure_ms / 1_000.0);
            table.row(&[
                total.to_string(),
                label.to_string(),
                f(gold, 1),
                f(bronze, 1),
                f(bronze / gold, 2),
                f(rps, 1),
            ]);
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nexpected: identical class means under FIFO; under priority admission the gold \
         class stays near its unsaturated response while bronze absorbs the queueing — at \
         unchanged total throughput (admission is work-conserving)"
    );
    out
}
