//! Extension experiment — §9.1's closing direction: "cost functions ...
//! could map SLA failure and server usage metrics to their associated
//! costs. Given such functions the y-axis of figure 7 could become a
//! single cost axis ... Slack setting(s) with the lowest cost could then
//! be determined."
//!
//! We run the fig-7 slack sweep once, then evaluate three cost regimes —
//! penalty-dominated, balanced, and hardware-dominated — and report each
//! regime's optimal slack.

use crate::cachecheck::{cache_line, checked_slack_sweep};
use crate::experiments::fig5_6::loads;
use crate::report::{f, Table};
use crate::Experiments;
use perfpred_resman::costs::{CostModel, SweepConfig};
use perfpred_resman::runtime::RuntimeOptions;
use perfpred_resman::scenario::{paper_pool, paper_workload};
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let config = SweepConfig {
        loads: loads(),
        runtime: RuntimeOptions::default(),
    };
    let slacks: Vec<f64> = (0..=22).rev().map(|i| f64::from(i) / 20.0).collect(); // 1.1 → 0
    let (su_max, curves, calls) = checked_slack_sweep(
        ctx,
        &paper_pool(),
        &paper_workload(1_000),
        &config,
        &slacks,
        1.1,
    );

    let regimes = [
        (
            "SLA-dominated (penalties 20:1)",
            CostModel {
                sla_penalty_per_pct: 20.0,
                server_cost_per_pct: 1.0,
            },
        ),
        (
            "balanced (1:1)",
            CostModel {
                sla_penalty_per_pct: 1.0,
                server_cost_per_pct: 1.0,
            },
        ),
        (
            "hardware-dominated (1:20)",
            CostModel {
                sla_penalty_per_pct: 1.0,
                server_cost_per_pct: 20.0,
            },
        ),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "§9.1 extension — single-axis cost and optimal slack (SUmax = {su_max:.1} %)\n"
    );
    let mut table = Table::new(&[
        "slack",
        "avg % fail",
        "avg % saving",
        "cost 20:1",
        "cost 1:1",
        "cost 1:20",
    ]);
    for c in &curves {
        table.row(&[
            f(c.slack, 2),
            f(c.avg_sla_failure_pct, 2),
            f(c.avg_usage_saving_pct, 2),
            f(regimes[0].1.total_cost(c, su_max), 1),
            f(regimes[1].1.total_cost(c, su_max), 1),
            f(regimes[2].1.total_cost(c, su_max), 1),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let _ = writeln!(out, "{}\n", cache_line(&calls));
    for (name, model) in &regimes {
        let best = model
            .optimal_slack(&curves, su_max)
            .expect("non-empty sweep");
        let _ = writeln!(
            out,
            "optimal slack under {name}: {:.2} (fail {:.1} %, saving {:.1} %)",
            best.slack, best.avg_sla_failure_pct, best.avg_usage_saving_pct
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: expensive SLAs keep the slack at/near the zero-failure setting; \
         expensive hardware pushes it down the fig-7 curve"
    );
    out
}
