//! Table 2: layered queuing processing-time parameters calibrated on
//! AppServF by dedicated single-request-type runs (§5).
//!
//! Paper values: browse 4.505 ms (app) / 0.8294 ms (DB), buy 8.761 / 1.613,
//! with 1.14 / 2 database calls per request. Our testbed's CPU demands
//! differ in absolute terms (they are chosen so max throughput lands at
//! 186 req/s); the reproduced shape is the buy/browse ratio (~1.94 on the
//! app tier, ~1.95 on the DB tier) and the calibration's agreement with
//! the simulator's ground-truth demands.

use crate::report::{f, Table};
use crate::Experiments;
use perfpred_core::RequestType;
use std::fmt::Write as _;

/// Runs the experiment.
pub fn run(ctx: &Experiments) -> String {
    let cfg = ctx.lqn().config();
    let gt = &ctx.gt;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — layered queuing processing times calibrated on AppServF\n"
    );
    let mut table = Table::new(&[
        "request type",
        "app (ms)",
        "app truth",
        "db/call (ms)",
        "db truth",
        "db calls",
        "disk/call (ms)",
    ]);
    for rt in RequestType::ALL {
        let p = cfg.params(rt);
        let (app_truth, db_truth) = match rt {
            RequestType::Browse => (gt.browse_app_demand_ms, gt.browse_db_demand_ms),
            RequestType::Buy => (gt.buy_app_demand_ms, gt.buy_db_demand_ms),
        };
        table.row(&[
            rt.label().to_string(),
            f(p.app_demand_ms, 3),
            f(app_truth, 3),
            f(p.db_demand_ms, 3),
            f(db_truth, 3),
            f(p.db_calls, 2),
            f(p.disk_demand_ms, 3),
        ]);
    }
    out.push_str(&table.render());
    let ratio_app = cfg.buy.app_demand_ms / cfg.browse.app_demand_ms;
    let ratio_db = cfg.buy.db_demand_ms / cfg.browse.db_demand_ms;
    let _ = writeln!(
        out,
        "\nbuy/browse demand ratios: app {:.2} (paper {:.2}), db {:.2} (paper {:.2})",
        ratio_app,
        8.761 / 4.505,
        ratio_db,
        1.613 / 0.8294
    );
    let _ = writeln!(
        out,
        "paper absolute values: browse 4.505/0.8294 ms, buy 8.761/1.613 ms (its hardware)"
    );
    out
}
