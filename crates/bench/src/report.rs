//! Plain-text tables and result-file output.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable items.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Writes a report under `<dir>/<id>.txt` where `<dir>` is
/// `PERFPRED_RESULTS_DIR` when set, else `results/` (relative to the
/// workspace root when run from there, else the current directory).
/// Failures to write are reported but not fatal — the report was already
/// printed.
pub fn save(id: &str, body: &str) {
    let mut dir = std::env::var_os("PERFPRED_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    if !dir.exists() && std::fs::create_dir_all(&dir).is_err() {
        dir = std::env::temp_dir();
    }
    let path = dir.join(format!("{id}.txt"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x".into(), "1.5".into()]);
        t.row(&["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with('-'));
        assert!(s.contains("longer-name"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 1), "10.0");
    }
}
