//! Cached-vs-uncached equivalence checks for the resource-manager
//! experiments.
//!
//! The fig 5–8 and cost reports route the hybrid planner through a
//! [`perfpred_core::PredictionCache`]. Because the cache keys on the exact
//! bit pattern of the workload (`client_quantum = 1`), a cached sweep must
//! reproduce the uncached sweep *bit for bit* — these helpers run both and
//! assert it, so every published row doubles as a regression check of the
//! cache, and report how many underlying model solves the cache saved.

use crate::Experiments;
use perfpred_core::{ServerArch, Workload};
use perfpred_resman::costs::{slack_sweep, sweep_loads, LoadPoint, SlackCurve, SweepConfig};

/// Planner-call accounting for one cached sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerCalls {
    /// Predictions the sweep requested from the planner.
    pub requests: u64,
    /// Predictions that reached the underlying model (cache misses).
    pub solves: u64,
}

impl PlannerCalls {
    /// Requests-per-solve reduction factor (1.0 = no reuse).
    pub fn reduction(&self) -> f64 {
        self.requests as f64 / self.solves.max(1) as f64
    }

    /// Fraction of requests answered from the cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.requests - self.solves) as f64 / self.requests as f64
        }
    }
}

fn assert_points_identical(uncached: &[LoadPoint], cached: &[LoadPoint], what: &str) {
    assert_eq!(
        uncached.len(),
        cached.len(),
        "{what}: row count differs under caching"
    );
    for (u, c) in uncached.iter().zip(cached) {
        assert_eq!(
            u.total_clients, c.total_clients,
            "{what}: client column diverged"
        );
        assert_eq!(
            u.sla_failure_pct.to_bits(),
            c.sla_failure_pct.to_bits(),
            "{what}: SLA-failure column not bit-identical at load {} ({} vs {})",
            u.total_clients,
            u.sla_failure_pct,
            c.sla_failure_pct,
        );
        assert_eq!(
            u.server_usage_pct.to_bits(),
            c.server_usage_pct.to_bits(),
            "{what}: server-usage column not bit-identical at load {} ({} vs {})",
            u.total_clients,
            u.server_usage_pct,
            c.server_usage_pct,
        );
    }
}

/// Runs [`sweep_loads`] uncached and through the cached planner, asserts
/// the rows are bit-for-bit identical, and returns them with the planner
/// accounting.
pub fn checked_sweep_loads(
    ctx: &Experiments,
    servers: &[ServerArch],
    template: &Workload,
    config: &SweepConfig,
    slack: f64,
) -> (Vec<LoadPoint>, PlannerCalls) {
    let uncached = sweep_loads(
        ctx.hybrid(),
        ctx.historical(),
        servers,
        template,
        config,
        slack,
    )
    .expect("resman sweep");
    let planner = ctx.cached_planner();
    let cached = sweep_loads(&planner, ctx.historical(), servers, template, config, slack)
        .expect("resman sweep (cached)");
    assert_points_identical(&uncached, &cached, "sweep_loads");
    let stats = planner.stats();
    (
        cached,
        PlannerCalls {
            requests: stats.hits + stats.misses,
            solves: stats.misses,
        },
    )
}

/// Runs [`slack_sweep`] uncached and through the cached planner, asserts
/// `SUmax` and every curve are bit-for-bit identical, and returns them with
/// the planner accounting.
pub fn checked_slack_sweep(
    ctx: &Experiments,
    servers: &[ServerArch],
    template: &Workload,
    config: &SweepConfig,
    slacks: &[f64],
    reference_slack: f64,
) -> (f64, Vec<SlackCurve>, PlannerCalls) {
    let (su_u, curves_u) = slack_sweep(
        ctx.hybrid(),
        ctx.historical(),
        servers,
        template,
        config,
        slacks,
        reference_slack,
    )
    .expect("slack sweep");
    let planner = ctx.cached_planner();
    let (su_c, curves_c) = slack_sweep(
        &planner,
        ctx.historical(),
        servers,
        template,
        config,
        slacks,
        reference_slack,
    )
    .expect("slack sweep (cached)");
    assert_eq!(
        su_u.to_bits(),
        su_c.to_bits(),
        "slack_sweep: SUmax not bit-identical ({su_u} vs {su_c})"
    );
    assert_eq!(
        curves_u.len(),
        curves_c.len(),
        "slack_sweep: curve count differs under caching"
    );
    for (u, c) in curves_u.iter().zip(&curves_c) {
        assert_eq!(
            u.slack.to_bits(),
            c.slack.to_bits(),
            "slack_sweep: slack column diverged"
        );
        assert_eq!(
            u.avg_sla_failure_pct.to_bits(),
            c.avg_sla_failure_pct.to_bits(),
            "slack_sweep: failure column not bit-identical at slack {} ({} vs {})",
            u.slack,
            u.avg_sla_failure_pct,
            c.avg_sla_failure_pct,
        );
        assert_eq!(
            u.avg_usage_saving_pct.to_bits(),
            c.avg_usage_saving_pct.to_bits(),
            "slack_sweep: saving column not bit-identical at slack {} ({} vs {})",
            u.slack,
            u.avg_usage_saving_pct,
            c.avg_usage_saving_pct,
        );
    }
    let stats = planner.stats();
    (
        su_c,
        curves_c,
        PlannerCalls {
            requests: stats.hits + stats.misses,
            solves: stats.misses,
        },
    )
}

/// One report line summarising a cached sweep's planner accounting.
pub fn cache_line(calls: &PlannerCalls) -> String {
    format!(
        "prediction cache: {} planner requests, {} model solves ({:.1}x reduction, {:.1} % hits); \
         rows verified bit-identical to the uncached sweep",
        calls.requests,
        calls.solves,
        calls.reduction(),
        100.0 * calls.hit_ratio(),
    )
}
