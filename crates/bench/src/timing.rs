//! Minimal wall-clock micro-benchmark runner for the crate's `[[bench]]`
//! targets (`cargo bench -p perfpred-bench`): warm-up plus timed samples
//! with mean/best reporting, no external harness — plus a recorder that
//! mirrors every measurement into the machine-readable `BENCH.json`
//! perf trajectory (see DESIGN.md).

use crate::json::Json;
use std::path::PathBuf;
use std::time::Instant;

/// Formats a duration in seconds with an adaptive unit.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// One bench measurement: `samples` timed runs after a warm-up.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStat {
    /// The bench's display name.
    pub name: String,
    /// Number of timed samples.
    pub samples: u32,
    /// Mean sample duration in seconds.
    pub mean_s: f64,
    /// Best sample duration in seconds.
    pub best_s: f64,
}

/// Runs `f` once to warm up, then `samples` timed times, prints a one-line
/// `mean / best` summary under `name`, and returns the measurement. The
/// closure's result is passed through [`std::hint::black_box`] so the work
/// is not optimised away.
pub fn bench<R>(name: &str, samples: u32, mut f: impl FnMut() -> R) -> BenchStat {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    let mean = total / f64::from(samples.max(1));
    println!(
        "{name:<52} mean {:>12}   best {:>12}",
        fmt_secs(mean),
        fmt_secs(best)
    );
    BenchStat {
        name: name.to_string(),
        samples: samples.max(1),
        mean_s: mean,
        best_s: best,
    }
}

/// Prints a section header for a group of related benches.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

/// The BENCH.json path: `PERFPRED_BENCH_JSON` when set, else `BENCH.json`
/// at the workspace root. The root is resolved from this crate's
/// compile-time location because cargo runs `[[bench]]` targets with the
/// *package* directory as cwd but `--bin` targets with the caller's —
/// every writer must agree on one file.
pub fn bench_json_path() -> PathBuf {
    if let Some(path) = std::env::var_os("PERFPRED_BENCH_JSON") {
        return PathBuf::from(path);
    }
    let root: &std::path::Path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the workspace root");
    root.join("BENCH.json")
}

/// Collects one named section of the perf trajectory and merges it into
/// `BENCH.json` on [`Recorder::write`]: other sections are preserved, the
/// recorded one is replaced wholesale, so each bench binary and the repro
/// driver maintain their own slice of the file independently.
#[derive(Debug)]
pub struct Recorder {
    section: String,
    benches: Vec<BenchStat>,
    notes: Json,
}

impl Recorder {
    /// A recorder for `section` (e.g. `"bench.solver"` or `"repro"`).
    pub fn new(section: &str) -> Self {
        Recorder {
            section: section.to_string(),
            benches: Vec::new(),
            notes: Json::obj(),
        }
    }

    /// Adds one bench measurement to the section.
    pub fn record(&mut self, stat: BenchStat) {
        self.benches.push(stat);
    }

    /// Runs [`bench`] and records the result in one step.
    pub fn bench<R>(&mut self, name: &str, samples: u32, f: impl FnMut() -> R) {
        self.record(bench(name, samples, f));
    }

    /// Attaches a free-form key/value note to the section (solve counts,
    /// cache hit rates, speedups, ...).
    pub fn note(&mut self, key: &str, value: impl Into<Json>) {
        self.notes.set(key, value);
    }

    /// Renders this section's JSON object.
    fn section_json(&self) -> Json {
        let mut section = self.notes.clone();
        if !self.benches.is_empty() {
            let rows = self
                .benches
                .iter()
                .map(|b| {
                    let mut row = Json::obj();
                    row.set("name", b.name.as_str());
                    row.set("samples", u64::from(b.samples));
                    row.set("mean_s", b.mean_s);
                    row.set("best_s", b.best_s);
                    row
                })
                .collect();
            section.set("benches", Json::Arr(rows));
        }
        section
    }

    /// Merges the section into `BENCH.json` (see [`bench_json_path`]).
    /// A corrupt or missing file is replaced rather than failing the run.
    pub fn write(&self) {
        let path = bench_json_path();
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .filter(|d| matches!(d, Json::Obj(_)))
            .unwrap_or_else(Json::obj);
        doc.set("host_parallelism", available_parallelism());
        doc.set(&format!("section.{}", self.section), self.section_json());
        if let Err(e) = std::fs::write(&path, doc.render()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\n[{} -> {}]", self.section, path.display());
        }
    }
}

/// The host's available parallelism (1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_times() {
        let stat = bench("timing.test.noop", 3, || std::hint::black_box(2 + 2));
        assert_eq!(stat.samples, 3);
        assert!(stat.best_s >= 0.0);
        assert!(stat.mean_s >= stat.best_s);
    }

    #[test]
    fn recorder_merges_sections_without_clobbering() {
        let dir = std::env::temp_dir().join(format!("perfpred-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH.json");
        let mut first = Json::obj();
        first.set("section.other", {
            let mut s = Json::obj();
            s.set("kept", true);
            s
        });
        std::fs::write(&path, first.render()).unwrap();

        // Recorder::write reads the path from the environment; temporarily
        // point it at the scratch file.
        std::env::set_var("PERFPRED_BENCH_JSON", &path);
        let mut rec = Recorder::new("unit");
        rec.record(BenchStat {
            name: "x".into(),
            samples: 1,
            mean_s: 0.5,
            best_s: 0.25,
        });
        rec.note("solves", 7u64);
        rec.write();
        std::env::remove_var("PERFPRED_BENCH_JSON");

        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("section.other").and_then(|s| s.get("kept")),
            Some(&Json::Bool(true))
        );
        let unit = doc.get("section.unit").unwrap();
        assert_eq!(unit.get("solves").and_then(Json::as_f64), Some(7.0));
        let Some(Json::Arr(rows)) = unit.get("benches") else {
            panic!("benches array missing: {doc:?}");
        };
        assert_eq!(rows[0].get("name"), Some(&Json::Str("x".into())));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
