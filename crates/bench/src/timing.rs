//! Minimal wall-clock micro-benchmark runner for the crate's `[[bench]]`
//! targets (`cargo bench -p perfpred-bench`): warm-up plus timed samples
//! with mean/best reporting, no external harness.

use std::time::Instant;

/// Formats a duration in seconds with an adaptive unit.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Runs `f` once to warm up, then `samples` timed times, and prints a
/// one-line `mean / best` summary under `name`. The closure's result is
/// passed through [`std::hint::black_box`] so the work is not optimised
/// away.
pub fn bench<R>(name: &str, samples: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    let mean = total / f64::from(samples.max(1));
    println!(
        "{name:<52} mean {:>12}   best {:>12}",
        fmt_secs(mean),
        fmt_secs(best)
    );
}

/// Prints a section header for a group of related benches.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}
