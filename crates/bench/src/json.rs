//! Re-export of the workspace JSON value type. The type itself lives in
//! [`perfpred_core::json`] so the serving daemon can share it; the alias
//! here keeps the harness's historical `perfpred_bench::json::Json` path
//! working.

pub use perfpred_core::json::Json;
