//! Shared experiment context: the ground truth, the case-study servers,
//! and lazily-built (cached) calibrations of the three prediction methods.

use perfpred_core::{PerformanceModel, PredictionCache, ServerArch, Workload};
use perfpred_hybrid::{HybridModel, HybridOptions};
use perfpred_hydra::{HistoricalModel, ServerObservations};
use perfpred_lqns::LqnPredictor;
use perfpred_tradesim::calibrate::calibrate_lqn;
use perfpred_tradesim::config::{GroundTruth, SimOptions};
use perfpred_tradesim::harness::{find_max_throughput, run, sweep, MeasuredPoint};
use std::sync::OnceLock;

/// The nominal clients→throughput gradient of the case study: one request
/// per client per (think + light-load response) interval.
pub const M_NOMINAL: f64 = 1_000.0 / 7_020.0;

/// The default seed.
pub const DEFAULT_SEED: u64 = 20040426; // the IPDPS 2004 workshop date

/// Grid of operating points for the fig-2 style sweeps, as fractions of
/// the max-throughput client count.
pub const GRID_FRACTIONS: [f64; 12] = [
    0.10, 0.25, 0.40, 0.55, 0.66, 0.80, 0.95, 1.05, 1.10, 1.25, 1.40, 1.55,
];

/// The lower observation grid: `nldp` loads walking up from 15 % of the
/// max-throughput client count and ENDING on the §4.2 lower anchor (66 %
/// of `n_star`). With a single observation the point IS the anchor — the
/// historical model's lower interpolation hinges on it.
fn lower_grid(n_star: f64, nldp: usize) -> Vec<u32> {
    (0..nldp)
        .map(|i| {
            let frac = if nldp <= 1 {
                0.66
            } else {
                0.15 + (0.66 - 0.15) * i as f64 / (nldp - 1) as f64
            };
            (frac * n_star).round() as u32
        })
        .collect()
}

/// The upper observation grid: `nudp` overload points STARTING on the
/// §4.2 upper anchor (110 % of `n_star`) and walking up to 155 %.
fn upper_grid(n_star: f64, nudp: usize) -> Vec<u32> {
    (0..nudp)
        .map(|i| {
            let frac = if nudp <= 1 {
                1.10
            } else {
                1.10 + (1.55 - 1.10) * i as f64 / (nudp - 1) as f64
            };
            (frac * n_star).round() as u32
        })
        .collect()
}

/// Experiment context. All expensive calibrations (simulator measurement
/// campaigns, LQN calibration, hybrid start-up) happen once and are cached.
pub struct Experiments {
    /// The synthetic testbed's ground truth.
    pub gt: GroundTruth,
    /// Measurement-grade simulation options.
    pub sim: SimOptions,
    seed: u64,
    lqn: OnceLock<LqnPredictor>,
    historical: OnceLock<HistoricalModel>,
    hybrid: OnceLock<HybridModel>,
    measured_mx: OnceLock<[f64; 3]>,
}

impl Default for Experiments {
    fn default() -> Self {
        Self::new(DEFAULT_SEED)
    }
}

impl Experiments {
    /// A context with measurement-grade simulation settings.
    pub fn new(seed: u64) -> Self {
        Experiments {
            gt: GroundTruth::default(),
            sim: SimOptions {
                seed,
                warmup_ms: 30_000.0,
                measure_ms: 240_000.0,
                ..Default::default()
            },
            seed,
            lqn: OnceLock::new(),
            historical: OnceLock::new(),
            hybrid: OnceLock::new(),
            measured_mx: OnceLock::new(),
        }
    }

    /// A context with short simulations, for tests.
    pub fn quick(seed: u64) -> Self {
        let mut ctx = Self::new(seed);
        ctx.sim = SimOptions::quick(seed);
        ctx
    }

    /// The case-study servers: `[AppServS, AppServF, AppServVF]` (index 0
    /// is the "new" architecture).
    pub fn servers() -> [ServerArch; 3] {
        [
            ServerArch::app_serv_s(),
            ServerArch::app_serv_f(),
            ServerArch::app_serv_vf(),
        ]
    }

    /// The established servers used for calibration (F and VF).
    pub fn established() -> [ServerArch; 2] {
        [ServerArch::app_serv_f(), ServerArch::app_serv_vf()]
    }

    /// Measured typical-workload max throughputs `[S, F, VF]` — the §2
    /// "application-specific benchmark" service.
    pub fn measured_max_tputs(&self) -> [f64; 3] {
        *self.measured_mx.get_or_init(|| {
            let servers = Self::servers();
            let mut out = [0.0; 3];
            for (i, s) in servers.iter().enumerate() {
                out[i] = find_max_throughput(
                    &self.gt,
                    s,
                    &Workload::typical(200),
                    &self.sim.with_seed(self.seed.wrapping_add(1_000 + i as u64)),
                );
            }
            out
        })
    }

    /// The measured max throughput of one server (by its position in
    /// [`Experiments::servers`]).
    pub fn measured_mx_of(&self, server: &ServerArch) -> f64 {
        let idx = Self::servers()
            .iter()
            .position(|s| s.name == server.name)
            .expect("case-study server");
        self.measured_max_tputs()[idx]
    }

    /// The client count at max throughput for a server.
    pub fn n_star(&self, server: &ServerArch) -> f64 {
        self.measured_mx_of(server) / M_NOMINAL
    }

    /// The fig-2 client grid for a server.
    pub fn grid(&self, server: &ServerArch) -> Vec<u32> {
        let n_star = self.n_star(server);
        GRID_FRACTIONS
            .iter()
            .map(|f| (f * n_star).round().max(2.0) as u32)
            .collect()
    }

    /// Measures the typical workload at each grid point (parallel sweep).
    pub fn measure_grid(
        &self,
        server: &ServerArch,
        grid: &[u32],
        store_samples: bool,
    ) -> Vec<MeasuredPoint> {
        let mut opts = self
            .sim
            .with_seed(self.seed.wrapping_mul(31).wrapping_add(7));
        opts.store_samples = store_samples;
        sweep(&self.gt, server, &Workload::typical(100), grid, &opts)
    }

    /// Gathers historical observations for one server by *measurement*:
    /// `nldp` lower points ending at 66 % of the max-throughput load and
    /// `nudp` upper points starting at 110 % (§4.2's anchors), plus
    /// throughput samples for the gradient.
    pub fn measure_observations(
        &self,
        server: &ServerArch,
        nldp: usize,
        nudp: usize,
    ) -> ServerObservations {
        let mx = self.measured_mx_of(server);
        let n_star = mx / M_NOMINAL;
        let mut obs = ServerObservations::new(server.name.clone(), mx);
        let lower = sweep(
            &self.gt,
            server,
            &Workload::typical(100),
            &lower_grid(n_star, nldp),
            &self.sim,
        );
        for p in &lower {
            obs = obs
                .with_lower(f64::from(p.clients), p.mrt_ms)
                .with_throughput(f64::from(p.clients), p.throughput_rps);
        }
        let upper = sweep(
            &self.gt,
            server,
            &Workload::typical(100),
            &upper_grid(n_star, nudp),
            &self.sim,
        );
        for p in &upper {
            obs = obs.with_upper(f64::from(p.clients), p.mrt_ms);
        }
        obs
    }

    /// The layered queuing predictor, calibrated on AppServF per §5
    /// (dedicated single-request-type runs, utilisation ÷ throughput).
    pub fn lqn(&self) -> &LqnPredictor {
        self.lqn.get_or_init(|| {
            let cfg = calibrate_lqn(&self.gt, &ServerArch::app_serv_f(), &self.sim);
            LqnPredictor::new(cfg)
        })
    }

    /// The historical model, calibrated by measurement on the established
    /// servers (F, VF) with the paper's minimal data volume
    /// (`nldp = nudp = 2`), relationship 3 from measured max throughputs
    /// across the buy range on F (see EXPERIMENTS.md deviation note 3),
    /// and class deviation factors from one mixed measurement.
    pub fn historical(&self) -> &HistoricalModel {
        self.historical.get_or_init(|| {
            let mut builder = HistoricalModel::builder().think_time_ms(7_000.0);
            for server in Self::established() {
                builder = builder.observations(self.measure_observations(&server, 2, 2));
            }
            // Relationship 3: measured max throughputs across the buy
            // range on AppServF. The paper calibrates at 0 %/25 % only;
            // the wider range keeps the linear fit usable at the pure-buy
            // mixes the resource manager's allocation creates.
            let f_server = ServerArch::app_serv_f();
            let mut r3_points = vec![(0.0, self.measured_mx_of(&f_server))];
            for (i, b) in [25.0, 50.0, 100.0].iter().enumerate() {
                let mx = find_max_throughput(
                    &self.gt,
                    &f_server,
                    &Workload::with_buy_pct(1_000, *b),
                    &self.sim.with_seed(self.seed.wrapping_add(2_500 + i as u64)),
                );
                r3_points.push((*b, mx));
            }
            builder = builder.r3_points(&r3_points);
            // Class deviation from one heterogeneous measurement at a
            // moderate load.
            let mixed = run(
                &self.gt,
                &f_server,
                &Workload::with_buy_pct(800, 25.0),
                &self.sim.with_seed(self.seed.wrapping_add(2_600)),
            );
            if mixed.mrt_ms > 0.0 && mixed.classes.len() == 2 {
                builder = builder.class_deviation(
                    mixed.classes[0].mrt_ms / mixed.mrt_ms,
                    mixed.classes[1].mrt_ms / mixed.mrt_ms,
                );
            }
            builder.build().expect("historical calibration")
        })
    }

    /// The advanced hybrid model over all three case-study architectures.
    pub fn hybrid(&self) -> &HybridModel {
        self.hybrid.get_or_init(|| {
            HybridModel::advanced(self.lqn(), &Self::servers(), &HybridOptions::default())
                .expect("hybrid calibration")
        })
    }

    /// The hybrid planner behind a fresh [`PredictionCache`] — the serving
    /// configuration the resource-manager experiments use. The default
    /// exact keying (`client_quantum = 1`) keeps cached sweeps bit-for-bit
    /// identical to uncached ones; returning a fresh cache per call keeps
    /// experiments independent of each other's hit ratios.
    pub fn cached_planner(&self) -> PredictionCache<&HybridModel> {
        PredictionCache::new(self.hybrid())
    }

    /// Convenience: predictions from one model over a grid of typical
    /// workload points; returns (mrt, throughput) pairs (NaN rows where the
    /// model errored).
    pub fn predict_grid<Mdl: PerformanceModel + ?Sized>(
        model: &Mdl,
        server: &ServerArch,
        grid: &[u32],
    ) -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&n| match model.predict(server, &Workload::typical(n)) {
                Ok(p) => (p.mrt_ms, p.throughput_rps),
                Err(_) => (f64::NAN, f64::NAN),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_scale_with_server_speed() {
        let ctx = Experiments::quick(99);
        let s = &Experiments::servers()[0];
        let vf = &Experiments::servers()[2];
        let gs = ctx.grid(s);
        let gvf = ctx.grid(vf);
        assert_eq!(gs.len(), GRID_FRACTIONS.len());
        // VF sustains ~3.7× the clients of S at the same fraction.
        let ratio = f64::from(gvf[5]) / f64::from(gs[5]);
        assert!((ratio - 320.0 / 86.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn observation_grids_hit_the_anchors() {
        let n_star = 1_000.0;
        for &nldp in &[1usize, 2, 5] {
            let g = lower_grid(n_star, nldp);
            assert_eq!(g.len(), nldp);
            assert_eq!(
                *g.last().unwrap(),
                660,
                "nldp={nldp}: lower grid must end on 0.66·n*"
            );
            assert!(
                g.windows(2).all(|w| w[0] < w[1]),
                "nldp={nldp}: not increasing: {g:?}"
            );
        }
        for &nudp in &[1usize, 2, 5] {
            let g = upper_grid(n_star, nudp);
            assert_eq!(g.len(), nudp);
            assert_eq!(g[0], 1100, "nudp={nudp}: upper grid must start on 1.10·n*");
            assert!(
                g.windows(2).all(|w| w[0] < w[1]),
                "nudp={nudp}: not increasing: {g:?}"
            );
        }
    }

    #[test]
    fn measured_max_tputs_near_design() {
        let ctx = Experiments::quick(99);
        let [s, f, vf] = ctx.measured_max_tputs();
        assert!((s - 86.0).abs() < 6.0, "S {s}");
        assert!((f - 186.0).abs() < 8.0, "F {f}");
        assert!((vf - 320.0).abs() < 14.0, "VF {vf}");
    }
}
