//! Simulated-testbed throughput: how fast the discrete-event simulator
//! chews through Trade workload, plus kernel microbenchmarks (event queue,
//! processor-sharing station, LRU session cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfpred_core::{ServerArch, Workload};
use perfpred_desim::{EventQueue, PsStation, SimRng};
use perfpred_tradesim::cache::SessionCache;
use perfpred_tradesim::config::{GroundTruth, SimOptions};
use perfpred_tradesim::engine::TradeSim;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trade_sim_30s_window");
    group.sample_size(10);
    let gt = GroundTruth::default();
    let opts = SimOptions { seed: 7, warmup_ms: 5_000.0, measure_ms: 30_000.0, ..Default::default() };
    for &clients in &[200u32, 1_000, 2_000] {
        // ~clients × 0.14 req/s × 35 s simulated.
        group.throughput(Throughput::Elements(u64::from(clients) * 5));
        group.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, &n| {
            b.iter(|| {
                TradeSim::new(
                    &gt,
                    &ServerArch::app_serv_f(),
                    &Workload::typical(n),
                    &opts,
                )
                .run()
            })
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        let mut rng = SimRng::seed_from(3);
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1_000u32 {
                q.schedule(rng.uniform() * 1_000.0, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc += u64::from(v);
            }
            black_box(acc)
        })
    });
}

fn bench_ps_station(c: &mut Criterion) {
    c.bench_function("ps_station_arrive_complete_1k", |b| {
        let mut rng = SimRng::seed_from(4);
        b.iter(|| {
            let mut ps: PsStation<u32> = PsStation::new(1.0, 50);
            let mut t = 0.0;
            let mut done = 0usize;
            for i in 0..1_000u32 {
                t += rng.exp(1.0);
                ps.arrive(t, i, rng.exp(5.0));
                while let Some(ct) = ps.next_completion() {
                    if ct > t {
                        break;
                    }
                    done += ps.pop_completed(ct).len();
                }
            }
            black_box(done)
        })
    });
}

fn bench_session_cache(c: &mut Criterion) {
    c.bench_function("lru_cache_access_10k_thrashing", |b| {
        let mut rng = SimRng::seed_from(5);
        b.iter(|| {
            let mut cache = SessionCache::new(128 * 512 * 1024);
            let mut misses = 0u64;
            for _ in 0..10_000 {
                let client = rng.below(600);
                if cache.access(client, 512 * 1024) == perfpred_tradesim::cache::Access::Miss {
                    misses += 1;
                }
            }
            black_box(misses)
        })
    });
}

criterion_group!(
    benches,
    bench_simulation,
    bench_event_queue,
    bench_ps_station,
    bench_session_cache
);
criterion_main!(benches);
