//! Simulated-testbed throughput: how fast the discrete-event simulator
//! chews through Trade workload, plus kernel microbenchmarks (event queue,
//! processor-sharing station, LRU session cache).

use perfpred_bench::timing::{group, Recorder};
use perfpred_core::{ServerArch, Workload};
use perfpred_desim::{EventQueue, PsStation, SimRng};
use perfpred_tradesim::cache::SessionCache;
use perfpred_tradesim::config::{GroundTruth, SimOptions};
use perfpred_tradesim::engine::TradeSim;
use std::hint::black_box;

fn bench_simulation(rec: &mut Recorder) {
    group("trade_sim_30s_window");
    let gt = GroundTruth::default();
    let opts = SimOptions {
        seed: 7,
        warmup_ms: 5_000.0,
        measure_ms: 30_000.0,
        ..Default::default()
    };
    for &clients in &[200u32, 1_000, 2_000] {
        rec.bench(
            &format!("trade_sim_30s_window/clients/{clients}"),
            5,
            || {
                TradeSim::new(
                    &gt,
                    &ServerArch::app_serv_f(),
                    &Workload::typical(clients),
                    &opts,
                )
                .run()
            },
        );
    }
}

fn bench_event_queue(rec: &mut Recorder) {
    group("kernel");
    let mut rng = SimRng::seed_from(3);
    rec.bench("event_queue_schedule_pop_1k", 100, || {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..1_000u32 {
            q.schedule(rng.uniform() * 1_000.0, i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc += u64::from(v);
        }
        black_box(acc)
    });
}

fn bench_ps_station(rec: &mut Recorder) {
    let mut rng = SimRng::seed_from(4);
    rec.bench("ps_station_arrive_complete_1k", 100, || {
        let mut ps: PsStation<u32> = PsStation::new(1.0, 50);
        let mut t = 0.0;
        let mut done = 0usize;
        for i in 0..1_000u32 {
            t += rng.exp(1.0);
            ps.arrive(t, i, rng.exp(5.0));
            while let Some(ct) = ps.next_completion() {
                if ct > t {
                    break;
                }
                done += ps.pop_completed(ct).len();
            }
        }
        black_box(done)
    });
}

fn bench_session_cache(rec: &mut Recorder) {
    let mut rng = SimRng::seed_from(5);
    rec.bench("lru_cache_access_10k_thrashing", 50, || {
        let mut cache = SessionCache::new(128 * 512 * 1024);
        let mut misses = 0u64;
        for _ in 0..10_000 {
            let client = rng.below(600);
            if cache.access(client, 512 * 1024) == perfpred_tradesim::cache::Access::Miss {
                misses += 1;
            }
        }
        black_box(misses)
    });
}

fn main() {
    let mut rec = Recorder::new("bench.simulator");
    bench_simulation(&mut rec);
    bench_event_queue(&mut rec);
    bench_ps_station(&mut rec);
    bench_session_cache(&mut rec);
    rec.write();
}
