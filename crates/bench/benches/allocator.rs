//! Allocation benchmarks, in both senses: resource-manager Algorithm 1
//! over the paper's 16-server scenario (the paper notes "each line was
//! generated in under one second"; one line is a full load sweep at one
//! slack), and — via a counting `#[global_allocator]` — proof that a warm
//! [`AmvaWorkspace`] makes the AMVA hot path heap-allocation-free.

use perfpred_bench::timing::{group, Recorder};
use perfpred_hydra::{HistoricalModel, ServerObservations};
use perfpred_lqns::mva::{
    solve_amva_into, AmvaOptions, AmvaWorkspace, ClosedNetwork, Station, StationKind,
};
use perfpred_resman::algorithm::allocate;
use perfpred_resman::costs::{sweep_loads, SweepConfig};
use perfpred_resman::runtime::RuntimeOptions;
use perfpred_resman::scenario::{paper_pool, paper_workload, UniformErrorModel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation the process makes (frees are free).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn historical_model() -> HistoricalModel {
    let m = 0.1424;
    let obs = |name: &str, mx: f64, c: f64, lam: f64| {
        let n_star = mx / m;
        ServerObservations::new(name, mx)
            .with_lower(0.15 * n_star, c * (lam * 0.15 * n_star).exp())
            .with_lower(0.66 * n_star, c * (lam * 0.66 * n_star).exp())
            .with_upper(1.10 * n_star, 1_000.0 / mx * 1.10 * n_star - 7_000.0)
            .with_upper(1.55 * n_star, 1_000.0 / mx * 1.55 * n_star - 7_000.0)
            .with_throughput(0.3 * n_star, m * 0.3 * n_star)
    };
    HistoricalModel::builder()
        .observations(obs("AppServF", 186.0, 18.5, 5.6e-4))
        .observations(obs("AppServVF", 320.0, 11.7, 3.3e-4))
        .r3_points(&[(0.0, 186.0), (25.0, 151.0), (50.0, 127.0), (100.0, 95.0)])
        .class_deviation(0.86, 1.43)
        .build()
        .expect("synthetic calibration")
}

fn bench_allocate(rec: &mut Recorder) {
    group("algorithm1_16_servers");
    let model = historical_model();
    let pool = paper_pool();
    for &load in &[2_000u32, 6_000, 10_000] {
        let w = paper_workload(load);
        rec.bench(&format!("algorithm1_16_servers/clients/{load}"), 20, || {
            allocate(black_box(&model), black_box(&pool), black_box(&w), 1.1).unwrap()
        });
    }
}

fn bench_full_sweep_line(rec: &mut Recorder) {
    // One "line" of fig 5/6: a 12-load sweep at one slack, planner +
    // runtime evaluation (the paper: "under one second").
    group("fig5_line");
    let truth = historical_model();
    let planner = UniformErrorModel::new(historical_model(), 1.075);
    let pool = paper_pool();
    let template = paper_workload(1_000);
    let config = SweepConfig {
        loads: (1..=12).map(|i| i * 1_000).collect(),
        runtime: RuntimeOptions::default(),
    };
    rec.bench("fig5_line/sweep_12_loads_slack_1.1", 10, || {
        sweep_loads(
            black_box(&planner),
            black_box(&truth),
            &pool,
            &template,
            &config,
            1.1,
        )
        .unwrap()
    });
}

/// Asserts the ISSUE's zero-allocation contract: once an
/// [`AmvaWorkspace`]'s buffers are sized, repeated `solve_amva_into`
/// calls — warm or population-perturbed — never touch the heap.
fn check_amva_zero_alloc(rec: &mut Recorder) {
    group("amva_zero_alloc");
    let mut net = ClosedNetwork {
        populations: vec![200.0, 120.0, 50.0, 25.0],
        think_ms: vec![7_000.0; 4],
        stations: (0..4)
            .map(|s| Station {
                kind: if s == 3 {
                    StationKind::Delay
                } else {
                    StationKind::Queueing {
                        servers: 1 + s as u32,
                    }
                },
                demands: (0..4).map(|k| 1.0 + k as f64 * 0.5 + s as f64).collect(),
            })
            .collect(),
    };
    let opts = AmvaOptions::default();
    let mut ws = AmvaWorkspace::new();
    // First solve sizes the buffers and may allocate; it is excluded.
    solve_amva_into(&net, &opts, &mut ws).unwrap();

    const SOLVES: u64 = 100;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..SOLVES {
        // Perturb the populations so every solve does real work (and the
        // warm start is exercised), without changing the network shape.
        net.populations[0] = 200.0 + (i % 7) as f64 * 25.0;
        solve_amva_into(black_box(&net), &opts, &mut ws).unwrap();
        black_box(ws.response_ms());
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    println!(
        "{:<52} {} allocations / {SOLVES} warm solves",
        "amva_zero_alloc/solve_amva_into", allocs
    );
    rec.note("amva_warm_solves", SOLVES);
    rec.note("amva_allocations_during_warm_solves", allocs);
    assert_eq!(allocs, 0, "warm solve_amva_into must not allocate");
}

fn main() {
    let mut rec = Recorder::new("bench.allocator");
    check_amva_zero_alloc(&mut rec);
    bench_allocate(&mut rec);
    bench_full_sweep_line(&mut rec);
    rec.write();
}
