//! Resource-manager benchmarks: Algorithm 1 over the paper's 16-server
//! scenario (the paper notes "each line was generated in under one
//! second"; one line is a full load sweep at one slack).

use perfpred_bench::timing::{bench, group};
use perfpred_hydra::{HistoricalModel, ServerObservations};
use perfpred_resman::algorithm::allocate;
use perfpred_resman::costs::{sweep_loads, SweepConfig};
use perfpred_resman::runtime::RuntimeOptions;
use perfpred_resman::scenario::{paper_pool, paper_workload, UniformErrorModel};
use std::hint::black_box;

fn historical_model() -> HistoricalModel {
    let m = 0.1424;
    let obs = |name: &str, mx: f64, c: f64, lam: f64| {
        let n_star = mx / m;
        ServerObservations::new(name, mx)
            .with_lower(0.15 * n_star, c * (lam * 0.15 * n_star).exp())
            .with_lower(0.66 * n_star, c * (lam * 0.66 * n_star).exp())
            .with_upper(1.10 * n_star, 1_000.0 / mx * 1.10 * n_star - 7_000.0)
            .with_upper(1.55 * n_star, 1_000.0 / mx * 1.55 * n_star - 7_000.0)
            .with_throughput(0.3 * n_star, m * 0.3 * n_star)
    };
    HistoricalModel::builder()
        .observations(obs("AppServF", 186.0, 18.5, 5.6e-4))
        .observations(obs("AppServVF", 320.0, 11.7, 3.3e-4))
        .r3_points(&[(0.0, 186.0), (25.0, 151.0), (50.0, 127.0), (100.0, 95.0)])
        .class_deviation(0.86, 1.43)
        .build()
        .expect("synthetic calibration")
}

fn bench_allocate() {
    group("algorithm1_16_servers");
    let model = historical_model();
    let pool = paper_pool();
    for &load in &[2_000u32, 6_000, 10_000] {
        let w = paper_workload(load);
        bench(&format!("algorithm1_16_servers/clients/{load}"), 20, || {
            allocate(black_box(&model), black_box(&pool), black_box(&w), 1.1).unwrap()
        });
    }
}

fn bench_full_sweep_line() {
    // One "line" of fig 5/6: a 12-load sweep at one slack, planner +
    // runtime evaluation (the paper: "under one second").
    group("fig5_line");
    let truth = historical_model();
    let planner = UniformErrorModel::new(historical_model(), 1.075);
    let pool = paper_pool();
    let template = paper_workload(1_000);
    let config = SweepConfig {
        loads: (1..=12).map(|i| i * 1_000).collect(),
        runtime: RuntimeOptions::default(),
    };
    bench("fig5_line/sweep_12_loads_slack_1.1", 10, || {
        sweep_loads(
            black_box(&planner),
            black_box(&truth),
            &pool,
            &template,
            &config,
            1.1,
        )
        .unwrap()
    });
}

fn main() {
    bench_allocate();
    bench_full_sweep_line();
}
