//! Observation-store performance: ingest throughput through the full
//! log-append + incremental-fold pipeline, raw log append and replay
//! rates, refit latency, and a recovery bit-identity check.
//!
//! The store closes the paper's calibration loop online — §6's HYDRA
//! calibration, re-run continuously as observations arrive — so its costs
//! must stay far off the serving path's µs budget: ingest is bounded by
//! one 64-byte record write plus O(1) anchor-cell folds, and a refit is a
//! handful of closed-form regressions over the folded grid.
//!
//! Results land in `BENCH.json` under `section.store` via
//! [`perfpred_bench::timing::Recorder`], including the derived
//! `ingest_obs_per_s` / `replay_obs_per_s` rates and a
//! `recovery_bit_identical` flag (replaying a log must rebuild the exact
//! serialized model the live store published).

use perfpred_bench::timing::{group, Recorder};
use perfpred_core::ServerArch;
use perfpred_store::{
    LogOptions, Observation, ObservationLog, ObservationStore, RefitOptions, Refitter,
};
use std::hint::black_box;
use std::path::PathBuf;

/// A scratch directory under the system temp dir, cleared on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perfpred-bench-store-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic AppServF measurement sweep shaped like the paper's curves:
/// exponential MRT growth below saturation, linear above — the same shape
/// the store's integration tests use.
fn trace(scale: f64, count: u32) -> Vec<Observation> {
    let m = 1_000.0 / 7_020.0;
    let n_star = 186.0 / m;
    (0..count)
        .map(|i| {
            let frac = 0.15 + 1.45 * f64::from(i % 29) / 28.0;
            let n = (frac * n_star).round().max(1.0);
            let mrt = if frac < 1.0 {
                scale * 20.0 * (1.8 * frac).exp()
            } else {
                scale * (7.0 * n / 1.3 - 6_000.0).max(100.0)
            };
            let mut o = Observation::typical("AppServF", n as u32, mrt);
            if frac <= 0.9 {
                o.throughput_rps = m * n;
            }
            o.timestamp_us = u64::from(i) * 250_000;
            o
        })
        .collect()
}

fn opts() -> RefitOptions {
    RefitOptions {
        refit_window: 128,
        ..RefitOptions::default()
    }
}

/// Ingest through the full pipeline: validate + append + fold + (every
/// window) refit + publish. The derived obs/s rate is the acceptance
/// number — the store must sustain ≥ 50k obs/s.
fn bench_ingest(rec: &mut Recorder) {
    group("store_ingest");
    let servers = [ServerArch::app_serv_f()];
    const TOTAL: u32 = 16_384;
    const BATCH: usize = 512;
    let data = trace(1.0, TOTAL);

    let dir = scratch("ingest");
    let store = ObservationStore::open(&dir, LogOptions::default(), &servers, opts())
        .expect("open scratch store")
        .0;
    let stat = rec_bench_once(rec, "store_ingest/16384_obs_batch_512", 10, || {
        for chunk in data.chunks(BATCH) {
            store.ingest(black_box(chunk)).expect("ingest");
        }
    });
    let obs_per_s = f64::from(TOTAL) / stat;
    rec.note("ingest_obs_per_s", obs_per_s);
    rec.note("ingest_batch", BATCH);
    println!("store_ingest: {obs_per_s:.0} obs/s through append+fold+refit");
    let _ = std::fs::remove_dir_all(&dir);

    // In-memory variant isolates the fold/refit cost from the log write.
    let store = ObservationStore::in_memory(&servers, opts());
    let stat = rec_bench_once(rec, "store_ingest/16384_obs_in_memory", 10, || {
        for chunk in data.chunks(BATCH) {
            store.ingest(black_box(chunk)).expect("ingest");
        }
    });
    rec.note("ingest_in_memory_obs_per_s", f64::from(TOTAL) / stat);
}

/// Raw segmented-log append (no folding), and replay of the result.
fn bench_log(rec: &mut Recorder) {
    group("store_log");
    const TOTAL: u32 = 16_384;
    let data = trace(1.0, TOTAL);

    let dir = scratch("log");
    let (mut log, _) =
        ObservationLog::open(&dir, LogOptions::default(), |_| {}).expect("open scratch log");
    let stat = rec_bench_once(rec, "store_log/append_16384", 10, || {
        log.append_batch(black_box(&data)).expect("append");
    });
    rec.note("log_append_obs_per_s", f64::from(TOTAL) / stat);
    log.sync().expect("sync");
    let records = log.len();
    drop(log);

    // Replay rate: scan + CRC-check + decode every surviving record.
    let stat = rec_bench_once(rec, "store_log/replay", 10, || {
        let mut n = 0u64;
        let (_, report) =
            ObservationLog::open(&dir, LogOptions::default(), |_| n += 1).expect("replay");
        assert_eq!(n, report.records);
        black_box(report.records)
    });
    rec.note("replay_obs_per_s", records as f64 / stat);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One full refit over an established anchor grid — the latency a window
/// boundary or drift trigger pays while holding the store lock.
fn bench_refit(rec: &mut Recorder) {
    group("store_refit");
    let servers = ServerArch::case_study_servers();
    let mut refitter = Refitter::new(&servers, opts());
    for obs in trace(1.0, 2_048) {
        refitter.fold(&obs);
    }
    rec.bench("store_refit/fit_established_grid", 50, || {
        black_box(refitter.fit()).expect("established grid fits")
    });
}

/// Recovery bit-identity: replaying the log must rebuild byte-for-byte
/// the serialized model the live store last published.
fn check_recovery(rec: &mut Recorder) {
    group("store_recovery");
    let servers = [ServerArch::app_serv_f()];
    let dir = scratch("recovery");
    let live = ObservationStore::open(&dir, LogOptions::default(), &servers, opts())
        .expect("open live store")
        .0;
    for chunk in trace(1.0, 1_024).chunks(100) {
        live.ingest(chunk).expect("ingest");
    }
    live.sync().expect("sync");
    let live_version = live.registry().version();
    let live_model = live.current_model_serialized().expect("live model");
    drop(live);

    let (recovered, report) = ObservationStore::open(&dir, LogOptions::default(), &servers, opts())
        .expect("reopen store");
    let identical = recovered.registry().version() == live_version
        && recovered.current_model_serialized().as_deref() == Some(live_model.as_str());
    println!(
        "store_recovery: {} records -> version {} (bit-identical: {identical})",
        report.records, live_version,
    );
    rec.note("recovery_records", report.records);
    rec.note("recovery_version", live_version);
    rec.note("recovery_bit_identical", identical);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(identical, "replayed model differs from the live fit");
}

/// Runs [`Recorder::bench`] and returns the mean sample seconds so the
/// caller can derive a rate note.
fn rec_bench_once<R>(rec: &mut Recorder, name: &str, samples: u32, f: impl FnMut() -> R) -> f64 {
    let stat = perfpred_bench::timing::bench(name, samples, f);
    let mean = stat.mean_s;
    rec.record(stat);
    mean
}

fn main() {
    let mut rec = Recorder::new("store");
    bench_ingest(&mut rec);
    bench_log(&mut rec);
    bench_refit(&mut rec);
    check_recovery(&mut rec);
    rec.write();
}
