//! Layered-queuing solver microbenchmarks: MVA kernels, full layered
//! solves across populations and chain counts, and the text-format parser.

use perfpred_bench::timing::{bench, group};
use perfpred_lqns::format;
use perfpred_lqns::model::LqnModel;
use perfpred_lqns::mva::{solve_amva, AmvaOptions, ClosedNetwork, Station, StationKind};
use perfpred_lqns::solve::{solve, SolverOptions};
use std::hint::black_box;

fn trade_model(population: u32, chains: usize) -> LqnModel {
    let mut b = LqnModel::builder();
    let cp = b.processor("client-cpu").infinite().finish();
    let ap = b.processor("app-cpu").finish();
    let dp = b.processor("db-cpu").finish();
    let app = b.task("app", ap).multiplicity(50).finish();
    let db = b.task("db", dp).multiplicity(20).finish();
    for k in 0..chains {
        let serve = b
            .entry(format!("serve{k}"), app)
            .demand_ms(4.505 * (1.0 + k as f64 * 0.3))
            .finish();
        let query = b.entry(format!("query{k}"), db).demand_ms(0.83).finish();
        b.call(serve, query, 1.14);
        let clients = b
            .reference_task(
                format!("clients{k}"),
                cp,
                population / chains as u32,
                7_000.0,
            )
            .finish();
        let cycle = b.entry(format!("cycle{k}"), clients).finish();
        b.call(cycle, serve, 1.0);
    }
    b.build().unwrap()
}

fn bench_amva() {
    group("amva");
    for &chains in &[1usize, 4, 16] {
        let net = ClosedNetwork {
            populations: vec![200.0; chains],
            think_ms: vec![7_000.0; chains],
            stations: (0..3)
                .map(|s| Station {
                    kind: StationKind::Queueing {
                        servers: 1 + s as u32,
                    },
                    demands: (0..chains)
                        .map(|k| 1.0 + k as f64 * 0.5 + s as f64)
                        .collect(),
                })
                .collect(),
        };
        bench(&format!("amva/chains/{chains}"), 50, || {
            solve_amva(black_box(&net), &AmvaOptions::default()).unwrap()
        });
    }
}

fn bench_layered_solve() {
    group("layered_solve");
    for &n in &[200u32, 1_400, 4_000] {
        let m = trade_model(n, 1);
        bench(&format!("layered_solve/population/{n}"), 30, || {
            solve(black_box(&m), &SolverOptions::default()).unwrap()
        });
    }
    for &chains in &[2usize, 4] {
        let m = trade_model(1_200, chains);
        bench(
            &format!("layered_solve/chains_at_1200/{chains}"),
            30,
            || solve(black_box(&m), &SolverOptions::default()).unwrap(),
        );
    }
    // The paper's coarse criterion against the library default.
    let m = trade_model(1_400, 1);
    bench("layered_solve/paper_20ms_criterion", 30, || {
        solve(black_box(&m), &SolverOptions::paper()).unwrap()
    });
}

fn bench_format() {
    group("format");
    let m = trade_model(1_000, 4);
    let text = format::serialize(&m);
    bench("format_parse_trade_4_chains", 50, || {
        format::parse(black_box(&text)).unwrap()
    });
    bench("format_serialize_trade_4_chains", 50, || {
        format::serialize(black_box(&m))
    });
}

fn main() {
    bench_amva();
    bench_layered_solve();
    bench_format();
}
