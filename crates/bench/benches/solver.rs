//! Layered-queuing solver microbenchmarks: MVA kernels, full layered
//! solves across populations and chain counts, and the text-format parser.

use perfpred_bench::timing::{group, Recorder};
use perfpred_lqns::format;
use perfpred_lqns::model::LqnModel;
use perfpred_lqns::mva::{
    solve_amva, solve_amva_into, AmvaOptions, AmvaWorkspace, ClosedNetwork, Station, StationKind,
};
use perfpred_lqns::solve::{solve, SolverOptions};
use std::hint::black_box;

fn trade_model(population: u32, chains: usize) -> LqnModel {
    let mut b = LqnModel::builder();
    let cp = b.processor("client-cpu").infinite().finish();
    let ap = b.processor("app-cpu").finish();
    let dp = b.processor("db-cpu").finish();
    let app = b.task("app", ap).multiplicity(50).finish();
    let db = b.task("db", dp).multiplicity(20).finish();
    for k in 0..chains {
        let serve = b
            .entry(format!("serve{k}"), app)
            .demand_ms(4.505 * (1.0 + k as f64 * 0.3))
            .finish();
        let query = b.entry(format!("query{k}"), db).demand_ms(0.83).finish();
        b.call(serve, query, 1.14);
        let clients = b
            .reference_task(
                format!("clients{k}"),
                cp,
                population / chains as u32,
                7_000.0,
            )
            .finish();
        let cycle = b.entry(format!("cycle{k}"), clients).finish();
        b.call(cycle, serve, 1.0);
    }
    b.build().unwrap()
}

fn bench_amva(rec: &mut Recorder) {
    group("amva");
    for &chains in &[1usize, 4, 16] {
        let net = ClosedNetwork {
            populations: vec![200.0; chains],
            think_ms: vec![7_000.0; chains],
            stations: (0..3)
                .map(|s| Station {
                    kind: StationKind::Queueing {
                        servers: 1 + s as u32,
                    },
                    demands: (0..chains)
                        .map(|k| 1.0 + k as f64 * 0.5 + s as f64)
                        .collect(),
                })
                .collect(),
        };
        rec.bench(&format!("amva/chains/{chains}"), 50, || {
            solve_amva(black_box(&net), &AmvaOptions::default()).unwrap()
        });
    }
}

/// Cold-vs-warm AMVA across a population sweep: the warm pass reuses one
/// [`AmvaWorkspace`] so each solve starts from the neighbouring
/// population's converged queue lengths (and allocates nothing).
fn bench_warm_start(rec: &mut Recorder) {
    group("amva_warm_start");
    let nets: Vec<ClosedNetwork> = (0..40)
        .map(|step| ClosedNetwork {
            populations: vec![50.0 + 30.0 * f64::from(step), 25.0 + 10.0 * f64::from(step)],
            think_ms: vec![7_000.0; 2],
            stations: (0..3)
                .map(|s| Station {
                    kind: StationKind::Queueing {
                        servers: 1 + s as u32,
                    },
                    demands: (0..2).map(|k| 1.0 + k as f64 * 0.5 + s as f64).collect(),
                })
                .collect(),
        })
        .collect();
    let opts = AmvaOptions::default();
    rec.bench("amva_warm_start/sweep_40_populations/cold", 30, || {
        let mut iters = 0usize;
        for net in &nets {
            iters += solve_amva(black_box(net), &opts).unwrap().iterations;
        }
        iters
    });
    rec.bench("amva_warm_start/sweep_40_populations/warm", 30, || {
        let mut ws = AmvaWorkspace::new();
        let mut iters = 0usize;
        for net in &nets {
            solve_amva_into(black_box(net), &opts, &mut ws).unwrap();
            iters += ws.iterations();
        }
        iters
    });

    let cold_iters: usize = nets
        .iter()
        .map(|net| solve_amva(net, &opts).unwrap().iterations)
        .sum();
    let mut ws = AmvaWorkspace::new();
    let warm_iters: usize = nets
        .iter()
        .map(|net| {
            solve_amva_into(net, &opts, &mut ws).unwrap();
            ws.iterations()
        })
        .sum();
    println!(
        "{:<52} cold {cold_iters} -> warm {warm_iters} fixed-point iterations",
        "amva_warm_start/sweep_40_populations/iterations"
    );
    rec.note("sweep_cold_iterations", cold_iters as u64);
    rec.note("sweep_warm_iterations", warm_iters as u64);
    assert!(
        warm_iters < cold_iters,
        "warm start should save iterations: warm {warm_iters} vs cold {cold_iters}"
    );
}

fn bench_layered_solve(rec: &mut Recorder) {
    group("layered_solve");
    for &n in &[200u32, 1_400, 4_000] {
        let m = trade_model(n, 1);
        rec.bench(&format!("layered_solve/population/{n}"), 30, || {
            solve(black_box(&m), &SolverOptions::default()).unwrap()
        });
    }
    for &chains in &[2usize, 4] {
        let m = trade_model(1_200, chains);
        rec.bench(
            &format!("layered_solve/chains_at_1200/{chains}"),
            30,
            || solve(black_box(&m), &SolverOptions::default()).unwrap(),
        );
    }
    // The paper's coarse criterion against the library default.
    let m = trade_model(1_400, 1);
    rec.bench("layered_solve/paper_20ms_criterion", 30, || {
        solve(black_box(&m), &SolverOptions::paper()).unwrap()
    });
}

fn bench_format(rec: &mut Recorder) {
    group("format");
    let m = trade_model(1_000, 4);
    let text = format::serialize(&m);
    rec.bench("format_parse_trade_4_chains", 50, || {
        format::parse(black_box(&text)).unwrap()
    });
    rec.bench("format_serialize_trade_4_chains", 50, || {
        format::serialize(black_box(&m))
    });
}

fn main() {
    let mut rec = Recorder::new("bench.solver");
    bench_amva(&mut rec);
    bench_warm_start(&mut rec);
    bench_layered_solve(&mut rec);
    bench_format(&mut rec);
    rec.write();
}
