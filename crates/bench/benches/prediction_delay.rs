//! §8.5 — "Delay when evaluating a prediction".
//!
//! The paper's findings, reproduced as wall-clock measurements:
//!
//! * the layered queuing method pays an iterative solve per prediction
//!   (up to ~3 s on its 2004 hardware at the 20 ms criterion);
//! * the historical method's closed-form predictions are near-instant;
//! * the hybrid method pays a one-off start-up (its 11 s) and then
//!   predicts at historical speed;
//! * searching for the max SLA-compliant client count multiplies the
//!   layered queuing cost (bisection of solves) while the historical
//!   method inverts its equations in closed form (§8.2);
//! * a memoizing [`PredictionCache`] collapses repeated evaluations of
//!   the same operating point to a hash lookup.

use perfpred_bench::timing::{group, Recorder};
use perfpred_core::{PerformanceModel, PredictionCache, ServerArch, Workload};
use perfpred_hybrid::{HybridModel, HybridOptions};
use perfpred_hydra::{HistoricalModel, ServerObservations};
use perfpred_lqns::trade::TradeLqnConfig;
use perfpred_lqns::LqnPredictor;
use std::hint::black_box;

/// A synthetic (but realistically-shaped) historical calibration, so the
/// benches run without simulator campaigns.
fn historical_model() -> HistoricalModel {
    let m = 0.1424;
    let obs = |name: &str, mx: f64, c: f64, lam: f64| {
        let n_star = mx / m;
        ServerObservations::new(name, mx)
            .with_lower(0.15 * n_star, c * (lam * 0.15 * n_star).exp())
            .with_lower(0.66 * n_star, c * (lam * 0.66 * n_star).exp())
            .with_upper(1.10 * n_star, 1_000.0 / mx * 1.10 * n_star - 7_000.0)
            .with_upper(1.55 * n_star, 1_000.0 / mx * 1.55 * n_star - 7_000.0)
            .with_throughput(0.3 * n_star, m * 0.3 * n_star)
    };
    HistoricalModel::builder()
        .observations(obs("AppServF", 186.0, 18.5, 5.6e-4))
        .observations(obs("AppServVF", 320.0, 11.7, 3.3e-4))
        .r3_points(&[(0.0, 186.0), (25.0, 151.0), (50.0, 127.0), (100.0, 95.0)])
        .class_deviation(0.86, 1.43)
        .build()
        .expect("synthetic calibration")
}

fn bench_single_prediction(rec: &mut Recorder) {
    group("predict_mrt");
    let server = ServerArch::app_serv_f();
    let lqn = LqnPredictor::new(TradeLqnConfig::paper_table2());
    let hist = historical_model();
    let hybrid = HybridModel::advanced(
        &lqn,
        &ServerArch::case_study_servers(),
        &HybridOptions::default(),
    )
    .expect("hybrid");
    let cached_lqn = PredictionCache::new(&lqn);

    for &clients in &[400u32, 1_400, 2_200] {
        let w = Workload::typical(clients);
        rec.bench(&format!("predict_mrt/historical/{clients}"), 50, || {
            hist.predict(black_box(&server), black_box(&w)).unwrap()
        });
        rec.bench(
            &format!("predict_mrt/layered_queuing/{clients}"),
            20,
            || lqn.predict(black_box(&server), black_box(&w)).unwrap(),
        );
        rec.bench(&format!("predict_mrt/hybrid/{clients}"), 50, || {
            hybrid.predict(black_box(&server), black_box(&w)).unwrap()
        });
        rec.bench(
            &format!("predict_mrt/layered_queuing+cache/{clients}"),
            50,
            || {
                cached_lqn
                    .predict(black_box(&server), black_box(&w))
                    .unwrap()
            },
        );
    }
}

fn bench_hybrid_startup(rec: &mut Recorder) {
    // The §8.5 start-up delay: building the advanced hybrid model (pseudo
    // data for three architectures + relationship 3 + deviation factors).
    group("hybrid_startup");
    let lqn = LqnPredictor::new(TradeLqnConfig::paper_table2());
    let servers = ServerArch::case_study_servers();
    rec.bench("hybrid_startup_advanced_3_servers", 5, || {
        HybridModel::advanced(
            black_box(&lqn),
            black_box(&servers),
            &HybridOptions::default(),
        )
        .unwrap()
    });
}

fn bench_max_clients_search(rec: &mut Recorder) {
    // §8.2: the layered queuing method must *search* for the max
    // SLA-compliant population; the historical method inverts eqs 1–2.
    group("max_clients_for_300ms_goal");
    let server = ServerArch::app_serv_f();
    let template = Workload::typical(100);
    let lqn = LqnPredictor::new(TradeLqnConfig::paper_table2());
    let hist = historical_model();
    rec.bench("max_clients/historical_closed_form", 50, || {
        hist.max_clients(black_box(&server), black_box(&template), 300.0)
            .unwrap()
    });
    rec.bench("max_clients/layered_queuing_bisection", 5, || {
        lqn.max_clients(black_box(&server), black_box(&template), 300.0)
            .unwrap()
    });
}

fn main() {
    let mut rec = Recorder::new("bench.prediction_delay");
    bench_single_prediction(&mut rec);
    bench_hybrid_startup(&mut rec);
    bench_max_clients_search(&mut rec);
    rec.write();
}
