//! A hand-rolled subset of HTTP/1.1 — just enough for the daemon's four
//! endpoints — so the workspace stays free of external dependencies.
//!
//! Supports: request line + headers, `Content-Length` bodies (no chunked
//! transfer), keep-alive, and bounded sizes. Reading is built around short
//! socket read timeouts: a timeout *between* requests surfaces as
//! [`ReadOutcome::Idle`] so connection workers can poll the shutdown flag
//! without dropping the connection, while a timeout *inside* a request
//! keeps accumulating (bounded) until the request completes or the stall
//! budget runs out.

use perfpred_core::Json;
use std::io::{self, BufRead, Write};

/// Upper bound on request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines in one request.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (1 MiB). A `Content-Length` above this
/// is answered with 413 before a single body byte is buffered, so one
/// request can never make the daemon allocate gigabytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// How many consecutive read timeouts mid-request before the connection
/// is abandoned (with ~100 ms socket timeouts this is a multi-second
/// stall budget for slow clients).
pub const MAX_MID_REQUEST_STALLS: usize = 100;

/// One parsed request.
///
/// `Default` gives `keep_alive: false`; only the reactor's scratch-swap
/// (`mem::take`) relies on it, and every parse resets the flag anyway.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// The body parsed as JSON (empty body → empty object, so endpoints
    /// with all-optional fields accept bare POSTs).
    pub fn json(&self) -> Result<Json, String> {
        if self.body.is_empty() {
            return Ok(Json::obj());
        }
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        Json::parse(text)
    }
}

/// What one attempt to read a request produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Peer closed (or a malformed/truncated request forced a close).
    Closed,
    /// Read timeout with no request bytes pending — the connection is
    /// healthy but quiet; poll shutdown and try again.
    Idle,
    /// The request blew a size limit but the framing was still intact
    /// enough to answer: the caller writes this error response
    /// (`Connection: close`) and then drops the connection, so
    /// keep-alive clients see a status instead of a reset.
    Reject {
        /// 413 (body too large) or 431 (head too large / too many headers).
        status: u16,
        /// Human-readable reason for the error envelope.
        message: &'static str,
    },
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one line (through `\n`) into `buf`, preserving partial data
/// across timeouts. `Ok(true)` = got a full line; `Ok(false)` = clean EOF
/// with nothing buffered; `Err` = hard error or stall/size budget blown.
fn read_line<R: BufRead>(r: &mut R, buf: &mut Vec<u8>, limit: usize) -> io::Result<Option<bool>> {
    let mut stalls = 0;
    loop {
        match r.read_until(b'\n', buf) {
            Ok(0) => return Ok(if buf.is_empty() { Some(false) } else { None }),
            Ok(_) if buf.last() == Some(&b'\n') => {
                if buf.len() > limit {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
                }
                return Ok(Some(true));
            }
            // read_until returning Ok without the delimiter means EOF
            // mid-line: treat as a truncated request.
            Ok(_) => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Err(e); // caller decides: Idle on the first line
                }
                stalls += 1;
                if stalls > MAX_MID_REQUEST_STALLS {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
        if buf.len() > limit {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
        }
    }
}

/// Reads exactly `want` body bytes, tolerating (bounded) timeouts.
fn read_body<R: BufRead>(r: &mut R, want: usize) -> io::Result<Option<Vec<u8>>> {
    let mut body = vec![0u8; want];
    let mut got = 0;
    let mut stalls = 0;
    while got < want {
        match r.read(&mut body[got..]) {
            Ok(0) => return Ok(None), // EOF before the advertised length
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_MID_REQUEST_STALLS {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

/// Reads the next request off a (timeout-configured) connection.
///
/// `Err` is only returned for hard I/O errors; timeouts before the first
/// byte come back as [`ReadOutcome::Idle`], malformed or truncated
/// framing comes back as [`ReadOutcome::Closed`] (the caller drops the
/// connection), and size-limit violations with intact framing come back
/// as [`ReadOutcome::Reject`] (413/431) so the client gets an answer.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<ReadOutcome> {
    // Request line.
    let mut line = Vec::new();
    match read_line(r, &mut line, MAX_HEAD_BYTES) {
        Ok(Some(true)) => {}
        Ok(Some(false)) | Ok(None) => return Ok(ReadOutcome::Closed),
        Err(e) if is_timeout(&e) && line.is_empty() => return Ok(ReadOutcome::Idle),
        Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Closed),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return Ok(ReadOutcome::Reject {
                status: 431,
                message: "request line too long",
            })
        }
        Err(e) => return Err(e),
    }
    let request_line = String::from_utf8_lossy(&line).trim_end().to_string();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Closed);
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Closed);
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let method = method.to_ascii_uppercase();

    // Headers.
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut head_bytes = line.len();
    let mut headers = 0usize;
    loop {
        let mut hline = Vec::new();
        match read_line(r, &mut hline, MAX_HEAD_BYTES) {
            Ok(Some(true)) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(ReadOutcome::Reject {
                    status: 431,
                    message: "header line too long",
                })
            }
            _ => return Ok(ReadOutcome::Closed),
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::Reject {
                status: 431,
                message: "request head exceeds 8 KiB",
            });
        }
        let text = String::from_utf8_lossy(&hline);
        let text = text.trim_end();
        if text.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Ok(ReadOutcome::Reject {
                status: 431,
                message: "too many header fields",
            });
        }
        let Some((name, value)) = text.split_once(':') else {
            return Ok(ReadOutcome::Closed);
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            // Parsed as u64 first so a body advertised beyond the cap is
            // *rejected with 413*, never buffered, and never silently
            // dropped (pre-fix behaviour closed the connection, which a
            // keep-alive client saw as a reset mid-POST).
            "content-length" => match value.parse::<u64>() {
                Ok(n) if n as usize <= MAX_BODY_BYTES => content_length = n as usize,
                Ok(_) => {
                    return Ok(ReadOutcome::Reject {
                        status: 413,
                        message: "request body exceeds 1 MiB",
                    })
                }
                Err(_) => return Ok(ReadOutcome::Closed),
            },
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "transfer-encoding" => return Ok(ReadOutcome::Closed), // unsupported
            _ => {}
        }
    }

    // Body.
    let body = if content_length > 0 {
        match read_body(r, content_length)? {
            Some(b) => b,
            None => return Ok(ReadOutcome::Closed),
        }
    } else {
        Vec::new()
    };

    Ok(ReadOutcome::Request(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Allow` header value (RFC 9110 requires it on 405s so clients
    /// learn which methods the path *does* answer).
    pub allow: Option<&'static str>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            allow: None,
            body: value.render().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            allow: None,
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut obj = Json::obj();
        obj.set("error", message);
        Response::json(status, &obj)
    }

    /// A 405 for a known path hit with the wrong method. Carries the
    /// `Allow` header and keeps the connection open — a wrong verb is a
    /// client mistake, not a protocol violation worth a teardown.
    pub fn method_not_allowed(allow: &'static str) -> Response {
        let mut resp = Response::error(405, "method not allowed");
        resp.allow = Some(allow);
        resp
    }

    /// Serializes the response; `keep_alive` controls the `Connection`
    /// header (and must match what the connection loop then does).
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        if let Some(allow) = self.allow {
            write!(w, "Allow: {allow}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Serializes the response into a caller-owned scratch buffer —
    /// byte-identical to [`Response::write_to`] — so pooled connections
    /// build status line + headers + body into one reusable `Vec<u8>` and
    /// issue a single write. Appends without clearing, which lets callers
    /// batch pipelined responses; integer formatting stays on the stack,
    /// so once the buffer has grown to its steady-state size this
    /// performs no heap allocation.
    pub fn write_into(&self, buf: &mut Vec<u8>, keep_alive: bool) {
        write!(
            buf,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .expect("writing into a Vec cannot fail");
        if let Some(allow) = self.allow {
            write!(buf, "Allow: {allow}\r\n").expect("writing into a Vec cannot fail");
        }
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
    }
}

/// The reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = "POST /predict?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 9\r\n\r\n{\"n\": 42}";
        let ReadOutcome::Request(req) = read(raw) else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert!(req.keep_alive);
        let json = req.json().unwrap();
        assert_eq!(json.get("n").and_then(Json::as_u32), Some(42));
    }

    #[test]
    fn connection_close_and_bare_get() {
        let raw = "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ReadOutcome::Request(req) = read(raw) else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "GET");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
        assert_eq!(req.json().unwrap(), Json::obj());
    }

    #[test]
    fn malformed_oversized_and_eof_close() {
        assert!(matches!(read(""), ReadOutcome::Closed));
        assert!(matches!(read("garbage\r\n\r\n"), ReadOutcome::Closed));
        assert!(matches!(read("GET / SPDY/9\r\n\r\n"), ReadOutcome::Closed));
        // Truncated body.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            ReadOutcome::Closed
        ));
        // Unparseable Content-Length is malformed framing, not a 413.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: umpteen\r\n\r\n"),
            ReadOutcome::Closed
        ));
        // Chunked transfer unsupported.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn oversized_body_is_rejected_with_413_before_buffering() {
        // The advertised body is never sent; the parser must still answer
        // from the headers alone instead of waiting or allocating.
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read(&big),
            ReadOutcome::Reject { status: 413, .. }
        ));
        // Absurd 64-bit lengths must not wrap on 32-bit usize either.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n"),
            ReadOutcome::Reject { status: 413, .. }
        ));
    }

    #[test]
    fn oversized_heads_are_rejected_with_431() {
        // Too many header fields.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(
            read(&raw),
            ReadOutcome::Reject { status: 431, .. }
        ));

        // One header line longer than the whole head budget.
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "v".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            read(&raw),
            ReadOutcome::Reject { status: 431, .. }
        ));

        // Many modest headers that together blow the head budget.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..40 {
            raw.push_str(&format!("X-Pad{i}: {}\r\n", "p".repeat(250)));
        }
        raw.push_str("\r\n");
        assert!(matches!(
            read(&raw),
            ReadOutcome::Reject { status: 431, .. }
        ));

        // An oversized request line is a 431 too.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            read(&raw),
            ReadOutcome::Reject { status: 431, .. }
        ));
    }

    #[test]
    fn two_requests_pipeline_on_one_connection() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let ReadOutcome::Request(a) = read_request(&mut reader).unwrap() else {
            panic!("first request");
        };
        let ReadOutcome::Request(b) = read_request(&mut reader).unwrap() else {
            panic!("second request");
        };
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(matches!(
            read_request(&mut reader).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn response_serialization_includes_framing() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));

        let mut out = Vec::new();
        Response::error(503, "busy")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"));
        assert!(text.contains("Connection: close"));
        assert!(text.contains("\"error\": \"busy\""));
    }

    #[test]
    fn method_not_allowed_carries_the_allow_header() {
        let mut out = Vec::new();
        Response::method_not_allowed("GET, POST")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET, POST\r\n"));
        assert!(
            text.contains("Connection: keep-alive\r\n"),
            "a wrong verb must not tear down the connection"
        );
        // The Allow header sits inside the head, before the blank line.
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text[..head_end].contains("Allow:"));
    }

    #[test]
    fn write_into_matches_write_to_byte_for_byte() {
        let mut obj = Json::obj();
        obj.set("a", 1.5);
        let responses = [
            Response::text(200, "ok"),
            Response::json(200, &obj),
            Response::error(503, "busy"),
            Response::text(431, ""),
            Response::method_not_allowed("GET"),
        ];
        let mut scratch = Vec::new();
        for resp in &responses {
            for keep_alive in [true, false] {
                let mut streamed = Vec::new();
                resp.write_to(&mut streamed, keep_alive).unwrap();
                scratch.clear();
                resp.write_into(&mut scratch, keep_alive);
                assert_eq!(scratch, streamed);
            }
        }
        // Appending (pipelined batching) concatenates framed responses.
        scratch.clear();
        responses[0].write_into(&mut scratch, true);
        let first_len = scratch.len();
        responses[2].write_into(&mut scratch, true);
        assert!(scratch.len() > first_len);
        assert!(scratch[first_len..].starts_with(b"HTTP/1.1 503"));
    }
}
