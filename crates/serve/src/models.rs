//! The model host: the three predictors of the paper, each behind its own
//! [`PredictionCache`], plus request-time method dispatch.

use crate::config::ModelSpec;
use perfpred_bench::context::Experiments;
use perfpred_core::{
    CacheOptions, PredictError, Prediction, PredictionCache, ServerArch, Workload,
};
use perfpred_hybrid::HybridModel;
use perfpred_hydra::HistoricalModel;
use perfpred_lqns::trade::TradeLqnConfig;
use perfpred_lqns::LqnPredictor;

/// Which predictor a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The §4 historical model (requires a calibrated daemon).
    Historical,
    /// The §5 layered queuing model (misses are solved on the batching
    /// solver pool; everything else answers inline).
    Lqns,
    /// The §6 advanced hybrid model.
    Hybrid,
}

impl Method {
    /// Parses the wire name (`historical` | `lqns` | `hybrid`).
    pub fn parse(s: &str) -> Result<Method, String> {
        match s {
            "historical" | "hydra" => Ok(Method::Historical),
            "lqns" | "lqn" | "layered-queuing" => Ok(Method::Lqns),
            "hybrid" => Ok(Method::Hybrid),
            other => Err(format!(
                "unknown method '{other}' (expected historical, lqns or hybrid)"
            )),
        }
    }

    /// The canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Historical => "historical",
            Method::Lqns => "lqns",
            Method::Hybrid => "hybrid",
        }
    }
}

/// The daemon's resident predictors.
///
/// The layered queuing predictor is always present (its construction is
/// free). The historical and hybrid models depend on the [`ModelSpec`]:
/// `paper` mode calibrates the hybrid from the Table 2 LQN without any
/// simulation, so start-up is instant but the historical method is
/// unavailable (404s); `calibrated*` modes run the simulated-testbed
/// measurement campaigns from [`Experiments`] and host all three.
pub struct ModelHost {
    /// Layered queuing behind a cache; misses route to the solver pool.
    pub lqns: PredictionCache<LqnPredictor>,
    /// Historical model (calibrated specs only).
    pub historical: Option<PredictionCache<HistoricalModel>>,
    /// Hybrid model (all specs).
    pub hybrid: Option<PredictionCache<HybridModel>>,
    /// Servers accepted by name in requests.
    pub servers: Vec<ServerArch>,
}

impl ModelHost {
    /// Builds the host for a model spec. `paper` is instant; calibrated
    /// specs run simulation campaigns (seconds for quick, minutes for
    /// measurement-grade).
    pub fn build(spec: ModelSpec, seed: u64, cache: &CacheOptions) -> ModelHost {
        match spec {
            ModelSpec::Paper => Self::paper(cache),
            ModelSpec::CalibratedQuick => Self::calibrated(&Experiments::quick(seed), cache),
            ModelSpec::Calibrated => Self::calibrated(&Experiments::new(seed), cache),
        }
    }

    /// Paper mode: Table 2 LQN + hybrid calibrated purely from LQN solves.
    pub fn paper(cache: &CacheOptions) -> ModelHost {
        let lqn = LqnPredictor::new(TradeLqnConfig::paper_table2());
        let servers = Experiments::servers();
        let hybrid = HybridModel::advanced(&lqn, &servers, &Default::default())
            .expect("hybrid calibration from the paper LQN");
        ModelHost {
            lqns: PredictionCache::with_options(lqn, cache.clone()),
            historical: None,
            hybrid: Some(PredictionCache::with_options(hybrid, cache.clone())),
            servers: servers.to_vec(),
        }
    }

    /// Calibrated mode: all three predictors from an experiment context.
    pub fn calibrated(ctx: &Experiments, cache: &CacheOptions) -> ModelHost {
        ModelHost {
            lqns: PredictionCache::with_options(ctx.lqn().clone(), cache.clone()),
            historical: Some(PredictionCache::with_options(
                ctx.historical().clone(),
                cache.clone(),
            )),
            hybrid: Some(PredictionCache::with_options(
                ctx.hybrid().clone(),
                cache.clone(),
            )),
            servers: Experiments::servers().to_vec(),
        }
    }

    /// Wire names of the methods this host can answer.
    pub fn available(&self) -> Vec<&'static str> {
        let mut out = vec![Method::Lqns.name()];
        if self.historical.is_some() {
            out.insert(0, Method::Historical.name());
        }
        if self.hybrid.is_some() {
            out.push(Method::Hybrid.name());
        }
        out
    }

    /// True when the host can answer this method.
    pub fn hosts(&self, method: Method) -> bool {
        match method {
            Method::Lqns => true,
            Method::Historical => self.historical.is_some(),
            Method::Hybrid => self.hybrid.is_some(),
        }
    }

    /// Looks a server up by name (e.g. `"AppServF"`).
    pub fn server(&self, name: &str) -> Option<&ServerArch> {
        self.servers.iter().find(|s| s.name == name)
    }

    /// Predicts through the method's cache, solving inline on a miss.
    ///
    /// This is the path for historical/hybrid requests (microsecond
    /// closed-form solves) and for `/plan`; the router sends layered
    /// queuing *misses* to the batching solver pool instead, so worker
    /// threads never run an AMVA solve inline.
    pub fn predict_inline(
        &self,
        method: Method,
        server: &ServerArch,
        workload: &Workload,
    ) -> Option<Result<Prediction, PredictError>> {
        use perfpred_core::PerformanceModel;
        match method {
            Method::Lqns => Some(self.lqns.predict(server, workload)),
            Method::Historical => self
                .historical
                .as_ref()
                .map(|m| m.predict(server, workload)),
            Method::Hybrid => self.hybrid.as_ref().map(|m| m.predict(server, workload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        for m in [Method::Historical, Method::Lqns, Method::Hybrid] {
            assert_eq!(Method::parse(m.name()), Ok(m));
        }
        assert!(Method::parse("simulation").is_err());
    }

    #[test]
    fn paper_host_serves_lqns_and_hybrid_but_not_historical() {
        let host = ModelHost::paper(&CacheOptions::default());
        assert_eq!(host.available(), vec!["lqns", "hybrid"]);
        assert!(host.hosts(Method::Lqns));
        assert!(host.hosts(Method::Hybrid));
        assert!(!host.hosts(Method::Historical));
        assert!(host.server("AppServF").is_some());
        assert!(host.server("AppServX").is_none());

        let server = host.server("AppServF").unwrap().clone();
        let w = Workload::typical(300);
        let lq = host
            .predict_inline(Method::Lqns, &server, &w)
            .unwrap()
            .unwrap();
        assert!(lq.mrt_ms > 0.0 && lq.throughput_rps > 0.0);
        let hy = host
            .predict_inline(Method::Hybrid, &server, &w)
            .unwrap()
            .unwrap();
        assert!(hy.mrt_ms > 0.0);
        assert!(host
            .predict_inline(Method::Historical, &server, &w)
            .is_none());
    }

    #[test]
    fn inline_predictions_memoize() {
        let host = ModelHost::paper(&CacheOptions::default());
        let server = host.server("AppServVF").unwrap().clone();
        let w = Workload::typical(120);
        let a = host
            .predict_inline(Method::Hybrid, &server, &w)
            .unwrap()
            .unwrap();
        let b = host
            .predict_inline(Method::Hybrid, &server, &w)
            .unwrap()
            .unwrap();
        assert_eq!(a.mrt_ms.to_bits(), b.mrt_ms.to_bits());
        assert_eq!(host.hybrid.as_ref().unwrap().len(), 1);
    }
}
