//! The model host: the three predictors of the paper, each behind its own
//! [`PredictionCache`], plus request-time method dispatch.

use crate::config::ModelSpec;
use perfpred_bench::context::Experiments;
use perfpred_core::{
    CacheOptions, PredictError, Prediction, PredictionCache, ServerArch, Workload,
};
use perfpred_hybrid::HybridModel;
use perfpred_lqns::trade::TradeLqnConfig;
use perfpred_lqns::LqnPredictor;
use perfpred_store::{ModelRegistry, ObservationStore, RegistryModel};
use std::sync::Arc;

/// Which predictor a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The §4 historical model (requires a calibrated daemon).
    Historical,
    /// The §5 layered queuing model (misses are solved on the batching
    /// solver pool; everything else answers inline).
    Lqns,
    /// The §6 advanced hybrid model.
    Hybrid,
}

impl Method {
    /// Parses the wire name (`historical` | `lqns` | `hybrid`).
    pub fn parse(s: &str) -> Result<Method, String> {
        match s {
            "historical" | "hydra" => Ok(Method::Historical),
            "lqns" | "lqn" | "layered-queuing" => Ok(Method::Lqns),
            "hybrid" => Ok(Method::Hybrid),
            other => Err(format!(
                "unknown method '{other}' (expected historical, lqns or hybrid)"
            )),
        }
    }

    /// The canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Historical => "historical",
            Method::Lqns => "lqns",
            Method::Hybrid => "hybrid",
        }
    }
}

/// The daemon's resident predictors.
///
/// The layered queuing predictor is always present (its construction is
/// free). The historical predictor serves whatever model is current in a
/// hot-swappable [`ModelRegistry`]: `paper` mode starts with an empty
/// registry (historical 404s until the observation store's first refit
/// publishes a version); `calibrated*` modes seed it from the
/// [`Experiments`] measurement campaigns. The hybrid model depends on the
/// [`ModelSpec`] as before.
pub struct ModelHost {
    /// Layered queuing behind a cache; misses route to the solver pool.
    pub lqns: PredictionCache<LqnPredictor>,
    /// Historical predictions through the registry's current model. The
    /// cache keys carry the model version, so a hot swap invalidates
    /// stale entries without flushing in-flight work.
    pub historical: PredictionCache<RegistryModel>,
    /// The versioned model registry behind `historical` (shared with the
    /// observation store that publishes refits into it).
    pub registry: Arc<ModelRegistry>,
    /// Hybrid model (all specs).
    pub hybrid: Option<PredictionCache<HybridModel>>,
    /// Servers accepted by name in requests.
    pub servers: Vec<ServerArch>,
}

impl ModelHost {
    /// Builds the host for a model spec, sharing the observation store's
    /// registry so refits swap straight into the serving path. `paper` is
    /// instant; calibrated specs run simulation campaigns (seconds for
    /// quick, minutes for measurement-grade) and seed the registry —
    /// unless the store already replayed a model out of its log, which
    /// wins over the seed.
    pub fn build(
        spec: ModelSpec,
        seed: u64,
        cache: &CacheOptions,
        store: &ObservationStore,
    ) -> ModelHost {
        let host = match spec {
            ModelSpec::Paper => Self::paper_with_registry(cache, store.registry()),
            ModelSpec::CalibratedQuick => {
                let ctx = Experiments::quick(seed);
                store.seed_if_empty(ctx.historical().clone());
                Self::calibrated(&ctx, cache, store.registry())
            }
            ModelSpec::Calibrated => {
                let ctx = Experiments::new(seed);
                store.seed_if_empty(ctx.historical().clone());
                Self::calibrated(&ctx, cache, store.registry())
            }
        };
        host.note_model_version();
        host
    }

    /// Paper mode with a standalone (empty) registry — handy in tests.
    pub fn paper(cache: &CacheOptions) -> ModelHost {
        Self::paper_with_registry(cache, Arc::new(ModelRegistry::new()))
    }

    /// Paper mode: Table 2 LQN + hybrid calibrated purely from LQN solves.
    /// The historical method comes up empty and becomes available as soon
    /// as `registry` receives its first published version.
    pub fn paper_with_registry(cache: &CacheOptions, registry: Arc<ModelRegistry>) -> ModelHost {
        let lqn = LqnPredictor::new(TradeLqnConfig::paper_table2());
        let servers = Experiments::servers();
        let hybrid = HybridModel::advanced(&lqn, &servers, &Default::default())
            .expect("hybrid calibration from the paper LQN");
        ModelHost {
            lqns: PredictionCache::with_options(lqn, cache.clone()),
            historical: PredictionCache::with_options(
                RegistryModel::new(Arc::clone(&registry)),
                cache.clone(),
            ),
            registry,
            hybrid: Some(PredictionCache::with_options(hybrid, cache.clone())),
            servers: servers.to_vec(),
        }
    }

    /// Calibrated mode: all three predictors from an experiment context.
    /// The caller seeds `registry` (see [`ModelHost::build`]) so the
    /// historical method answers immediately.
    pub fn calibrated(
        ctx: &Experiments,
        cache: &CacheOptions,
        registry: Arc<ModelRegistry>,
    ) -> ModelHost {
        ModelHost {
            lqns: PredictionCache::with_options(ctx.lqn().clone(), cache.clone()),
            historical: PredictionCache::with_options(
                RegistryModel::new(Arc::clone(&registry)),
                cache.clone(),
            ),
            registry,
            hybrid: Some(PredictionCache::with_options(
                ctx.hybrid().clone(),
                cache.clone(),
            )),
            servers: Experiments::servers().to_vec(),
        }
    }

    /// Re-reads the registry's current version into the historical cache's
    /// key space. Call after any publish (refit, seed, replay) so entries
    /// cached against older versions become unreachable without flushing
    /// other methods' entries or in-flight solves.
    pub fn note_model_version(&self) {
        self.historical.set_model_version(self.registry.version());
    }

    /// Wire names of the methods this host can answer.
    pub fn available(&self) -> Vec<&'static str> {
        let mut out = vec![Method::Lqns.name()];
        if self.registry.version() > 0 {
            out.insert(0, Method::Historical.name());
        }
        if self.hybrid.is_some() {
            out.push(Method::Hybrid.name());
        }
        out
    }

    /// True when the host can answer this method. Historical flips on at
    /// the first published model version.
    pub fn hosts(&self, method: Method) -> bool {
        match method {
            Method::Lqns => true,
            Method::Historical => self.registry.version() > 0,
            Method::Hybrid => self.hybrid.is_some(),
        }
    }

    /// Looks a server up by name (e.g. `"AppServF"`).
    pub fn server(&self, name: &str) -> Option<&ServerArch> {
        self.servers.iter().find(|s| s.name == name)
    }

    /// Predicts through the method's cache, solving inline on a miss.
    ///
    /// This is the path for historical/hybrid requests (microsecond
    /// closed-form solves) and for `/plan`; the router sends layered
    /// queuing *misses* to the batching solver pool instead, so worker
    /// threads never run an AMVA solve inline.
    pub fn predict_inline(
        &self,
        method: Method,
        server: &ServerArch,
        workload: &Workload,
    ) -> Option<Result<Prediction, PredictError>> {
        use perfpred_core::PerformanceModel;
        match method {
            Method::Lqns => Some(self.lqns.predict(server, workload)),
            Method::Historical => {
                if self.registry.version() == 0 {
                    None
                } else {
                    Some(self.historical.predict(server, workload))
                }
            }
            Method::Hybrid => self.hybrid.as_ref().map(|m| m.predict(server, workload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        for m in [Method::Historical, Method::Lqns, Method::Hybrid] {
            assert_eq!(Method::parse(m.name()), Ok(m));
        }
        assert!(Method::parse("simulation").is_err());
    }

    #[test]
    fn paper_host_serves_lqns_and_hybrid_but_not_historical() {
        let host = ModelHost::paper(&CacheOptions::default());
        assert_eq!(host.available(), vec!["lqns", "hybrid"]);
        assert!(host.hosts(Method::Lqns));
        assert!(host.hosts(Method::Hybrid));
        assert!(!host.hosts(Method::Historical));
        assert!(host.server("AppServF").is_some());
        assert!(host.server("AppServX").is_none());

        let server = host.server("AppServF").unwrap().clone();
        let w = Workload::typical(300);
        let lq = host
            .predict_inline(Method::Lqns, &server, &w)
            .unwrap()
            .unwrap();
        assert!(lq.mrt_ms > 0.0 && lq.throughput_rps > 0.0);
        let hy = host
            .predict_inline(Method::Hybrid, &server, &w)
            .unwrap()
            .unwrap();
        assert!(hy.mrt_ms > 0.0);
        assert!(host
            .predict_inline(Method::Historical, &server, &w)
            .is_none());
    }

    #[test]
    fn historical_flips_on_at_the_first_published_version() {
        use perfpred_hydra::{HistoricalModel, ServerObservations};
        use perfpred_store::RefitTrigger;

        let host = ModelHost::paper(&CacheOptions::default());
        let server = host.server("AppServF").unwrap().clone();
        let w = Workload::typical(300);
        assert!(!host.hosts(Method::Historical));
        assert!(host
            .predict_inline(Method::Historical, &server, &w)
            .is_none());

        let mx = 186.0;
        let n_star = mx / 0.1424;
        let model = HistoricalModel::builder()
            .observations(
                ServerObservations::new("AppServF", mx)
                    .with_lower(0.15 * n_star, 20.0)
                    .with_lower(0.60 * n_star, 28.0)
                    .with_upper(1.20 * n_star, 1_000.0 / mx * 1.20 * n_star - 7_000.0)
                    .with_upper(1.55 * n_star, 1_000.0 / mx * 1.55 * n_star - 7_000.0),
            )
            .gradient(0.1424)
            .build()
            .unwrap();
        host.registry.publish(model, 4, RefitTrigger::Window);
        host.note_model_version();

        assert!(host.hosts(Method::Historical));
        assert_eq!(host.available(), vec!["historical", "lqns", "hybrid"]);
        let p = host
            .predict_inline(Method::Historical, &server, &w)
            .unwrap()
            .unwrap();
        assert!(p.mrt_ms > 0.0);
        assert_eq!(host.historical.model_version(), 1);
    }

    #[test]
    fn inline_predictions_memoize() {
        let host = ModelHost::paper(&CacheOptions::default());
        let server = host.server("AppServVF").unwrap().clone();
        let w = Workload::typical(120);
        let a = host
            .predict_inline(Method::Hybrid, &server, &w)
            .unwrap()
            .unwrap();
        let b = host
            .predict_inline(Method::Hybrid, &server, &w)
            .unwrap()
            .unwrap();
        assert_eq!(a.mrt_ms.to_bits(), b.mrt_ms.to_bits());
        assert_eq!(host.hybrid.as_ref().unwrap().len(), 1);
    }
}
