//! The `perfpred-serve` binary: parse flags, build the model host, bind,
//! install signal handlers, serve until drained.

use perfpred_cluster::{
    rejoin_check, spawn_replicator, ClusterState, HubConfig, Lease, RejoinOutcome, ReplicationHub,
    ReplicatorConfig, Role,
};
use perfpred_serve::admission::AdmissionController;
use perfpred_serve::batch::JobQueue;
use perfpred_serve::router::App;
use perfpred_serve::shutdown::install_signal_handlers;
use perfpred_serve::{ModelHost, ServeConfig, Server, Shutdown};
use perfpred_store::{LogOptions, ObservationStore, RefitOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let cfg = match ServeConfig::from_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            // --help lands here too, carrying the usage text.
            let is_help = msg.contains("USAGE");
            eprintln!("{msg}");
            std::process::exit(i32::from(!is_help));
        }
    };

    let admission = match AdmissionController::new(cfg.admission) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("invalid admission options: {e}");
            std::process::exit(1);
        }
    };

    install_signal_handlers();

    // Fault injection (chaos testing) is opt-in via PERFPRED_FAULTS; a
    // malformed spec is a hard startup error, not a silently clean run.
    match perfpred_core::faults::init_from_env() {
        Ok(None) => {}
        Ok(Some(plan)) => eprintln!("fault injection armed: {}", plan.render()),
        Err(e) => {
            eprintln!("invalid {}: {e}", perfpred_core::faults::FAULTS_ENV);
            std::process::exit(1);
        }
    }

    // The observation store comes up first: replaying a durable log may
    // already publish model versions the host then serves from.
    let refit_opts = RefitOptions {
        refit_window: cfg.refit_window,
        drift_threshold: cfg.drift_threshold,
        ..RefitOptions::default()
    };
    let servers = perfpred_bench::context::Experiments::servers();
    let store = match &cfg.store_dir {
        None => Arc::new(ObservationStore::in_memory(&servers, refit_opts)),
        Some(dir) => {
            let started = Instant::now();
            match ObservationStore::open(dir, LogOptions::default(), &servers, refit_opts) {
                Ok((store, report)) => {
                    eprintln!(
                        "observation log {}: {} records replayed from {} segments in {:.2}s{}",
                        dir.display(),
                        report.records,
                        report.segments,
                        started.elapsed().as_secs_f64(),
                        if report.torn_bytes > 0 {
                            format!(" ({} torn bytes truncated)", report.torn_bytes)
                        } else {
                            String::new()
                        },
                    );
                    Arc::new(store)
                }
                Err(e) => {
                    eprintln!("cannot open observation store {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
    };

    eprintln!("building models ({:?}, seed {}) ...", cfg.models, cfg.seed);
    let started = Instant::now();
    let host = ModelHost::build(cfg.models, cfg.seed, &cfg.cache, &store);
    eprintln!(
        "models ready in {:.2}s: {} (model version {})",
        started.elapsed().as_secs_f64(),
        host.available().join(", "),
        store.registry().version(),
    );

    // Cluster membership: the replication hub and (for followers) the
    // pull loop come up before the HTTP listener so a follower never
    // serves a single request ahead of its first catch-up attempt.
    let cluster_state = cfg.cluster.as_ref().map(|cc| {
        let dir = cfg
            .store_dir
            .as_ref()
            .expect("config validation requires --store-dir in cluster mode");
        let epoch = store.epoch().unwrap_or(0);
        // A lease from this node's own takeover pins the seal point for
        // judging older-epoch rejoins; any other lease is stale.
        let sealed = match Lease::read(dir) {
            Ok(Some(l)) if l.epoch == epoch => l.sealed_len,
            _ => 0,
        };
        let state = Arc::new(ClusterState::new(&cc.node, cc.role, epoch, sealed));

        // A configured primary asks the cluster before trusting its role:
        // a newer epoch elsewhere demotes it, a divergent tail fences it.
        if cc.role == Role::Primary && !cc.peers.is_empty() {
            match rejoin_check(&cc.peers, &state, &store) {
                RejoinOutcome::Primary => {}
                RejoinOutcome::Demoted => eprintln!(
                    "cluster: a newer epoch ({}) is serving; rejoining as follower",
                    state.epoch()
                ),
                RejoinOutcome::Fenced => eprintln!(
                    "cluster: log diverges from the current primary; fenced (reads only — \
                     wipe {} to rejoin as a fresh follower)",
                    dir.display()
                ),
            }
        }

        let hub = match ReplicationHub::bind(
            &cfg.host,
            cc.repl_port,
            Arc::clone(&state),
            Arc::clone(&store),
            HubConfig::default(),
        ) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot bind replication hub on {}: {e}", cfg.host);
                std::process::exit(1);
            }
        };
        if let Some(path) = &cc.repl_port_file {
            if let Err(e) = std::fs::write(path, format!("{}\n", hub.addr().port())) {
                eprintln!("cannot write repl port file {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if !cc.peers.is_empty() {
            // The pull loop exits on its own while this node is primary
            // and re-engages logic-side on demotion.
            spawn_replicator(
                ReplicatorConfig {
                    peers: cc.peers.clone(),
                    grace: Duration::from_millis(cc.failover_grace_ms),
                    designated: cc.designated,
                    lease_dir: dir.clone(),
                    io_timeout: Duration::from_secs(5),
                },
                Arc::clone(&state),
                Arc::clone(&store),
            );
        }
        eprintln!(
            "cluster node '{}': role {}, epoch {}, replication on {}",
            cc.node,
            state.role().name(),
            state.epoch(),
            hub.addr(),
        );
        state
    });

    let mut app = App::with_store(
        host,
        admission,
        JobQueue::new(cfg.queue_depth),
        Shutdown::new(),
        store,
    );
    app.deadline = std::time::Duration::from_millis(cfg.deadline_ms);
    if let Some(state) = cluster_state {
        app = app.with_cluster(state);
    }

    // `--reactor-shards N` (the Linux default) serves through the
    // event-driven epoll core; `--reactor-shards 0` falls back to the
    // classic thread-per-connection core. Both share the same App, so
    // responses are byte-identical either way.
    #[cfg(target_os = "linux")]
    if cfg.reactor_shards > 0 {
        let server = match perfpred_serve::ReactorServer::bind(
            &cfg.host,
            cfg.port,
            app,
            cfg.reactor_shards,
            cfg.workers,
            cfg.solvers,
            cfg.batch_max,
            cfg.queue_depth,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind {}:{}: {e}", cfg.host, cfg.port);
                std::process::exit(1);
            }
        };
        announce(&cfg, server.local_addr(), "reactor", cfg.reactor_shards);
        match server.run() {
            Ok(()) => eprintln!("perfpred-serve: drained, bye"),
            Err(e) => {
                eprintln!("perfpred-serve: serve loop failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let server = match Server::bind(
        &cfg.host,
        cfg.port,
        app,
        cfg.workers,
        cfg.solvers,
        cfg.batch_max,
        cfg.queue_depth,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}:{}: {e}", cfg.host, cfg.port);
            std::process::exit(1);
        }
    };
    announce(&cfg, server.local_addr(), "threaded", cfg.workers);
    match server.run() {
        Ok(()) => eprintln!("perfpred-serve: drained, bye"),
        Err(e) => {
            eprintln!("perfpred-serve: serve loop failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes the port file (a hard error if asked for and impossible — CI
/// scripts would hang otherwise) and prints the listening banner.
fn announce(cfg: &ServeConfig, addr: std::net::SocketAddr, core: &str, units: usize) {
    if let Some(path) = &cfg.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("cannot write port file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    let unit_name = if core == "reactor" {
        "shards"
    } else {
        "workers"
    };
    println!(
        "perfpred-serve listening on http://{addr} ({core} core, {units} {unit_name}, {} solvers, threshold {})",
        cfg.solvers, cfg.admission.threshold
    );
}
