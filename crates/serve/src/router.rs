//! Request routing: JSON in, prediction/plan/metrics out.

use crate::admission::{AdmissionController, Verdict};
use crate::arrivals::ArrivalMeter;
use crate::batch::{Job, JobQueue};
use crate::http::{Request, Response};
use crate::models::{Method, ModelHost};
use crate::shutdown::Shutdown;
use perfpred_cluster::ClusterState;
use perfpred_core::metrics::names;
use perfpred_core::workload::{ClassLoad, RequestType, ServiceClass};
use perfpred_core::{metrics, Json, PredictError, Prediction, ServerArch, Workload};
use perfpred_store::{Observation, ObservationStore, StoreError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How long a connection worker waits for the solver pool before giving
/// up on a queued layered-queuing miss (an upper bound — a request
/// deadline shortens the wait to its remaining budget).
const SOLVER_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Default per-request deadline budget when the request body does not
/// carry a `deadline_ms` (overridable daemon-wide with `--deadline-ms`).
pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(1_000);

/// The shared application state behind every connection worker.
pub struct App {
    /// Resident predictors.
    pub host: ModelHost,
    /// The §9 admission rule.
    pub admission: AdmissionController,
    /// Queue feeding the layered-queuing solver pool.
    pub queue: Arc<JobQueue>,
    /// Observation intake: durable log + continuous refit + registry.
    pub store: Arc<ObservationStore>,
    /// Cooperative shutdown token.
    pub shutdown: Arc<Shutdown>,
    /// Per-request deadline budget for `/predict` (zero disables
    /// deadlines entirely; a request's own `deadline_ms` overrides it).
    pub deadline: Duration,
    /// Cluster membership, when this daemon runs as a replicated node:
    /// gates `/observe` on the primary role and backs `GET /cluster`.
    pub cluster: Option<Arc<ClusterState>>,
    /// Reactor shard count (0 under the threaded core), published by
    /// `ReactorServer::bind` for `/healthz`.
    pub reactor_shards: Arc<AtomicUsize>,
    /// Live depth of the reactor's dispatch offload queue, for `/healthz`.
    pub dispatch_depth: Arc<AtomicUsize>,
    /// Per-class arrival-rate EWMA, the control plane's load signal.
    pub arrivals: Arc<ArrivalMeter>,
    started: Instant,
    routes: RouteMetrics,
}

/// Route indices for [`RouteMetrics`]; the discriminant doubles as the
/// latency-histogram slot.
#[derive(Clone, Copy)]
enum Route {
    Healthz,
    Metrics,
    Models,
    Cluster,
    Predict,
    Observe,
    Plan,
    Shutdown,
    AdminThreshold,
    MethodNotAllowed,
    NotFound,
}

/// Per-endpoint telemetry handles, resolved once at assembly time. The
/// pre-fix hot path re-built the histogram name with `format!` (a heap
/// allocation plus a registry hash probe) on every request.
struct RouteMetrics {
    requests: Arc<metrics::Counter>,
    latency: [Arc<metrics::Histogram>; 11],
}

impl RouteMetrics {
    fn resolve() -> RouteMetrics {
        let hist = |route: &str| metrics::histogram(&format!("serve.http.{route}_ms"));
        RouteMetrics {
            requests: metrics::counter("serve.http.requests"),
            latency: [
                hist("healthz"),
                hist("metrics"),
                hist("models"),
                hist("cluster"),
                hist("predict"),
                hist("observe"),
                hist("plan"),
                hist("shutdown"),
                hist("admin_threshold"),
                hist("method_not_allowed"),
                hist("not_found"),
            ],
        }
    }
}

impl App {
    /// Assembles the application state with an in-memory observation
    /// store whose registry backs `host.historical` — the configuration
    /// tests use. The daemon's `main` wires a durable store through
    /// [`App::with_store`] instead.
    pub fn new(
        host: ModelHost,
        admission: AdmissionController,
        queue: Arc<JobQueue>,
        shutdown: Arc<Shutdown>,
    ) -> App {
        let store = Arc::new(ObservationStore::in_memory(
            &host.servers,
            perfpred_store::RefitOptions::default(),
        ));
        // `host.historical` keeps its own registry here; /observe refits
        // publish into the store's registry, so rebind the host to it.
        let host = crate::models::ModelHost {
            historical: perfpred_core::PredictionCache::with_options(
                perfpred_store::RegistryModel::new(store.registry()),
                perfpred_core::CacheOptions::default(),
            ),
            registry: store.registry(),
            ..host
        };
        Self::with_store(host, admission, queue, shutdown, store)
    }

    /// Assembles the application state around an existing observation
    /// store. `host` must have been built against the same store (see
    /// [`ModelHost::build`]) so the registry behind `/observe` refits is
    /// the one the historical predictor serves from.
    pub fn with_store(
        host: ModelHost,
        admission: AdmissionController,
        queue: Arc<JobQueue>,
        shutdown: Arc<Shutdown>,
        store: Arc<ObservationStore>,
    ) -> App {
        debug_assert!(
            Arc::ptr_eq(&host.registry, &store.registry()),
            "host and store must share one registry"
        );
        App {
            host,
            admission,
            queue,
            store,
            shutdown,
            deadline: DEFAULT_DEADLINE,
            cluster: None,
            reactor_shards: Arc::new(AtomicUsize::new(0)),
            dispatch_depth: Arc::new(AtomicUsize::new(0)),
            arrivals: Arc::new(ArrivalMeter::new()),
            started: Instant::now(),
            routes: RouteMetrics::resolve(),
        }
    }

    /// Attaches cluster membership: `/observe` starts refusing on
    /// non-primary roles and `GET /cluster` reports replication status.
    pub fn with_cluster(mut self, cluster: Arc<ClusterState>) -> App {
        self.cluster = Some(cluster);
        self
    }

    /// Routes one request, recording a per-endpoint latency histogram.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_at(req, Instant::now())
    }

    /// Routes one request whose deadline budget is anchored at `arrival`
    /// — the instant the request came off the wire — so time spent queued
    /// inside the daemon (e.g. a reactor dispatch offload) consumes the
    /// request's budget instead of resetting it.
    pub fn handle_at(&self, req: &Request, arrival: Instant) -> Response {
        let started = Instant::now();
        self.routes.requests.incr();
        let (route, response) = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => (Route::Healthz, self.healthz()),
            ("GET", "/metrics") => (Route::Metrics, self.metrics()),
            ("GET", "/models") => (Route::Models, self.models()),
            ("GET", "/cluster") => (Route::Cluster, self.cluster_status()),
            ("POST", "/predict") => (Route::Predict, self.predict(req, arrival)),
            ("POST", "/observe") => (Route::Observe, self.observe(req)),
            ("POST", "/plan") => (Route::Plan, self.plan(req)),
            ("POST", "/shutdown") => (Route::Shutdown, self.shutdown_endpoint()),
            ("POST", "/admin/threshold") => (Route::AdminThreshold, self.admin_threshold(req)),
            (_, "/healthz" | "/metrics" | "/models" | "/cluster") => {
                (Route::MethodNotAllowed, Response::method_not_allowed("GET"))
            }
            (_, "/predict" | "/observe" | "/plan" | "/shutdown" | "/admin/threshold") => {
                (Route::MethodNotAllowed, Response::method_not_allowed("POST"))
            }
            _ => (
                Route::NotFound,
                Response::error(
                    404,
                    "unknown path (have: GET /healthz, GET /metrics, GET /models, GET /cluster, POST /predict, POST /observe, POST /plan, POST /shutdown, POST /admin/threshold)",
                ),
            ),
        };
        self.routes.latency[route as usize].record(started.elapsed().as_secs_f64() * 1e3);
        response
    }

    /// Nonblocking routing for the reactor shards: `Some` when the route
    /// cannot stall the event loop (GET endpoints, `/shutdown`, unknown
    /// paths, and `/predict` answers that are cache hits or closed-form
    /// solves), `None` when the request must go to a dispatcher thread
    /// (`/observe` and `/plan` do real I/O or seconds-scale planning; an
    /// lqns `/predict` miss queues a solve and waits on the reply).
    pub fn try_handle(&self, req: &Request, arrival: Instant) -> Option<Response> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/observe") | ("POST", "/plan") => None,
            ("POST", "/predict") if self.predict_may_block(req) => None,
            _ => Some(self.handle_at(req, arrival)),
        }
    }

    /// Would this `/predict` wait on the solver pool? Only a
    /// layered-queuing cache miss does; parse failures and closed-form
    /// methods answer inline. The parse here is redundant with
    /// [`App::handle_at`] (sub-µs for the bodies this endpoint takes) and
    /// errs toward offloading when in doubt.
    fn predict_may_block(&self, req: &Request) -> bool {
        let Ok(body) = req.json() else {
            return false;
        };
        let Ok(method) = parse_method(&body) else {
            return false;
        };
        if method != Method::Lqns || !self.host.hosts(method) {
            return false;
        }
        let Ok(server) = parse_server(&body, &self.host) else {
            return false;
        };
        let Ok(workload) = parse_workload(&body) else {
            return false;
        };
        self.host.lqns.peek(&server, &workload).is_none()
    }

    fn healthz(&self) -> Response {
        let mut body = Json::obj();
        body.set("status", "ok");
        body.set("uptime_s", self.started.elapsed().as_secs_f64());
        body.set(
            "models",
            Json::Arr(
                self.host
                    .available()
                    .iter()
                    .map(|&m| Json::from(m))
                    .collect(),
            ),
        );
        body.set("draining", self.shutdown.requested());
        // Fields the router's health probe keys on: one GET answers
        // liveness, model staleness and who-accepts-writes. A standalone
        // daemon is its own primary.
        body.set("model_version", self.host.registry.version());
        body.set(
            "cluster_role",
            self.cluster.as_ref().map_or("primary", |c| c.role().name()),
        );
        body.set(
            "reactor_shards",
            self.reactor_shards.load(Ordering::Relaxed) as u64,
        );
        body.set(
            "dispatch_queue_depth",
            self.dispatch_depth.load(Ordering::Relaxed) as u64,
        );
        body.set("solver_queue_depth", self.queue.len() as u64);
        // Control-plane inputs: the live admission threshold and the
        // smoothed per-class arrival rates, so `perfpred-ctl` reads the
        // whole load picture from one scrape.
        body.set("threshold", self.admission.threshold());
        let rates = self.arrivals.rates();
        let mut arrival = Json::obj();
        arrival.set("total_rps", rates.total_rps);
        arrival.set("browse_rps", rates.browse_rps);
        arrival.set("buy_rps", rates.buy_rps);
        body.set("arrival", arrival);
        Response::json(200, &body)
    }

    /// `POST /admin/threshold`: hot-reload the admission threshold. The
    /// body is `{"threshold": 0.1}`; the candidate passes the same
    /// validation as at startup, so a bad value 400s and leaves the
    /// running threshold untouched.
    fn admin_threshold(&self, req: &Request) -> Response {
        let body = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
        };
        let threshold = match body.get("threshold").and_then(Json::as_f64) {
            Some(t) => t,
            None => return Response::error(400, "need a numeric 'threshold'"),
        };
        let previous = self.admission.threshold();
        if let Err(e) = self.admission.set_threshold(threshold) {
            return Response::error(400, &e.to_string());
        }
        metrics::counter("serve.admin.threshold_reloads").incr();
        let mut out = Json::obj();
        out.set("threshold", self.admission.threshold());
        out.set("previous", previous);
        Response::json(200, &out)
    }

    /// `GET /cluster`: replication status — role, epoch, seal point and
    /// (on the primary) per-follower ack progress.
    fn cluster_status(&self) -> Response {
        match &self.cluster {
            Some(c) => Response::json(200, &c.status_json(self.store.log_len().unwrap_or(0))),
            None => Response::error(
                404,
                "clustering is not configured (start with --cluster-node / --repl-peers)",
            ),
        }
    }

    fn metrics(&self) -> Response {
        let mut text = metrics::snapshot().render_exposition();
        // The serving model version, labelled so scrapes can watch hot
        // swaps happen (satellite of the perfpred-store tentpole).
        let version = self.host.registry.version();
        text.push_str(&format!(
            "serve_model_version{{method=\"historical\",model_version=\"{version}\"}} {version}\n"
        ));
        // Control-plane gauges: smoothed arrival rates plus live queue
        // depths (the registry only holds monotonic counters; these are
        // instantaneous values, so they are appended as gauge lines).
        text.push_str(&self.arrivals.render_exposition());
        text.push_str("# TYPE serve_dispatch_queue_depth gauge\n");
        text.push_str(&format!(
            "serve_dispatch_queue_depth {}\n",
            self.dispatch_depth.load(Ordering::Relaxed)
        ));
        text.push_str("# TYPE serve_solver_queue_depth gauge\n");
        text.push_str(&format!("serve_solver_queue_depth {}\n", self.queue.len()));
        text.push_str("# TYPE serve_admission_threshold gauge\n");
        text.push_str(&format!(
            "serve_admission_threshold {}\n",
            self.admission.threshold()
        ));
        Response::text(200, text)
    }

    /// `GET /models`: the registry's version history — what the serving
    /// model is, how it got there, and how much data is behind it.
    fn models(&self) -> Response {
        let mut body = Json::obj();
        body.set("current", self.host.registry.version());
        body.set("observations", self.store.observations());
        body.set("skipped_unknown_server", self.store.skipped_unknown());
        match self.store.log_len() {
            Some(n) => body.set("log_records", n),
            None => body.set("log_records", Json::Null),
        };
        body.set(
            "versions",
            Json::Arr(
                self.host
                    .registry
                    .versions()
                    .iter()
                    .map(|v| {
                        let mut o = Json::obj();
                        o.set("version", v.version);
                        o.set("trigger", v.trigger.name());
                        o.set("observations", v.observations);
                        o.set("gradient", v.model.gradient());
                        o
                    })
                    .collect(),
            ),
        );
        Response::json(200, &body)
    }

    /// `POST /observe`: ingest measured operating points — one object or
    /// `{"batch": [...]}` — into the observation store. Responses report
    /// any refits the batch triggered; the historical prediction cache is
    /// re-keyed to the new model version on the spot.
    fn observe(&self, req: &Request) -> Response {
        // Only the cluster primary appends: a follower taking writes would
        // fork the log the whole tier replays from. 409 (not 5xx) so load
        // balancers don't count a correctly-refusing replica as unhealthy.
        if let Some(c) = &self.cluster {
            if !c.is_writable() {
                let mut out = Json::obj();
                out.set("error", "this node does not accept observations");
                out.set("role", c.role().name());
                out.set("epoch", c.epoch());
                return Response::json(409, &out);
            }
        }
        let body = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
        };
        let parsed: Result<Vec<Observation>, String> = match body.get("batch") {
            Some(Json::Arr(items)) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    self.parse_observation(item)
                        .map_err(|e| format!("batch[{i}]: {e}"))
                })
                .collect(),
            Some(_) => Err("'batch' must be an array".into()),
            None => self.parse_observation(&body).map(|o| vec![o]),
        };
        let batch = match parsed {
            Ok(b) if b.is_empty() => return Response::error(400, "empty batch"),
            Ok(b) => b,
            Err(e) => return Response::error(400, &e),
        };
        let outcome = match self.store.ingest(&batch) {
            Ok(o) => o,
            Err(StoreError::InvalidObservation(msg)) => {
                return Response::error(400, &format!("invalid observation: {msg}"))
            }
            Err(StoreError::Io(e)) => {
                return Response::error(500, &format!("observation log I/O failed: {e}"))
            }
        };
        if !outcome.refits.is_empty() {
            // Re-key the historical cache so stale entries age out.
            self.host.note_model_version();
        }
        let mut out = Json::obj();
        out.set("accepted", outcome.accepted);
        out.set("observations", self.store.observations());
        out.set("model_version", self.host.registry.version());
        out.set(
            "refits",
            Json::Arr(
                outcome
                    .refits
                    .iter()
                    .map(|r| {
                        let mut o = Json::obj();
                        o.set("version", r.version);
                        o.set("trigger", r.trigger.name());
                        o
                    })
                    .collect(),
            ),
        );
        Response::json(200, &out)
    }

    /// Parses one observation object: `server` (known architecture),
    /// `clients`, `mrt_ms`, optional `buy_pct` / `throughput_rps` /
    /// `timestamp_us` (defaults to the arrival wall clock).
    fn parse_observation(&self, j: &Json) -> Result<Observation, String> {
        let server = j
            .get("server")
            .and_then(Json::as_str)
            .ok_or("needs a 'server' string")?;
        if self.host.server(server).is_none() {
            let known: Vec<&str> = self.host.servers.iter().map(|s| s.name.as_str()).collect();
            return Err(format!(
                "unknown server '{server}' (known: {})",
                known.join(", ")
            ));
        }
        let clients = j
            .get("clients")
            .and_then(Json::as_u32)
            .ok_or("needs whole-number 'clients'")?;
        let mrt_ms = j
            .get("mrt_ms")
            .and_then(Json::as_f64)
            .ok_or("needs numeric 'mrt_ms'")?;
        let buy_pct = match j.get("buy_pct") {
            None => 0.0,
            Some(v) => v.as_f64().ok_or("'buy_pct' must be a number")? as f32,
        };
        let throughput_rps = match j.get("throughput_rps") {
            None => 0.0,
            Some(v) => v.as_f64().ok_or("'throughput_rps' must be a number")?,
        };
        let timestamp_us = match j.get("timestamp_us") {
            None => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            Some(v) => {
                v.as_f64()
                    .filter(|t| *t >= 0.0)
                    .ok_or("'timestamp_us' must be a non-negative number")? as u64
            }
        };
        let obs = Observation {
            server: server.to_string(),
            clients,
            buy_pct,
            mrt_ms,
            throughput_rps,
            timestamp_us,
        };
        obs.validate().map_err(|e| e.to_string())?;
        Ok(obs)
    }

    fn shutdown_endpoint(&self) -> Response {
        self.shutdown.request();
        let mut body = Json::obj();
        body.set("draining", true);
        Response::json(200, &body)
    }

    fn predict(&self, req: &Request, arrival: Instant) -> Response {
        let body = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
        };
        let method = match parse_method(&body) {
            Ok(m) => m,
            Err(e) => return Response::error(400, &e),
        };
        if !self.host.hosts(method) {
            return Response::error(
                404,
                &format!(
                    "method '{}' is not hosted by this daemon (available: {})",
                    method.name(),
                    self.host.available().join(", ")
                ),
            );
        }
        let server = match parse_server(&body, &self.host) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &e),
        };
        let workload = match parse_workload(&body) {
            Ok(w) => w,
            Err(e) => return Response::error(400, &e),
        };
        self.arrivals.note(&workload);
        let deadline = match parse_deadline(&body, self.deadline, arrival) {
            Ok(d) => d,
            Err(e) => return Response::error(400, &e),
        };

        let (result, cached) = match method {
            Method::Lqns => self.predict_lqns(&server, &workload, deadline),
            _ => {
                // Historical/hybrid solves are closed-form (µs): inline.
                let cached = peeked(&self.host, method, &server, &workload);
                (
                    self.host
                        .predict_inline(method, &server, &workload)
                        .expect("hosted method"),
                    cached,
                )
            }
        };
        // Degraded serving: when the solver pool cannot answer in budget
        // (queue saturated, job shed, reply late), fall back to the
        // cheapest model that still answers instead of failing the
        // request. Admission below judges the fallback prediction exactly
        // as it would a normal one.
        let mut mode = "normal";
        let mut served_by = method.name();
        let prediction = match result {
            Ok(p) => p,
            Err(e) if degradable(&e) => match self.degraded_fallback(&server, &workload) {
                Some((p, by)) => {
                    metrics::counter(names::SERVE_DEGRADED_TOTAL).incr();
                    mode = "degraded";
                    served_by = by;
                    p
                }
                None => {
                    let status = match e {
                        PredictError::DeadlineExpired(_) => 504,
                        _ => 503,
                    };
                    return Response::error(status, &e.to_string());
                }
            },
            Err(e) => return Response::error(400, &e.to_string()),
        };

        // §9 admission: reject when any class's predicted response time is
        // within the threshold of its SLA goal.
        let skip_admission = body.get("admission").and_then(Json::as_bool) == Some(false);
        if !skip_admission {
            if let Verdict::Reject {
                class,
                predicted_mrt_ms,
                goal_ms,
            } = self.admission.judge(&workload, &prediction)
            {
                let mut rej = Json::obj();
                rej.set("admitted", false);
                rej.set("class", class);
                rej.set("predicted_mrt_ms", predicted_mrt_ms);
                rej.set("goal_ms", goal_ms);
                rej.set("threshold", self.admission.threshold());
                rej.set("method", method.name());
                rej.set("server", server.name.as_str());
                return Response::json(503, &rej);
            }
        }

        let mut out = Json::obj();
        out.set("method", method.name());
        out.set("server", server.name.as_str());
        out.set("admitted", true);
        out.set("mode", mode);
        out.set("served_by", served_by);
        out.set("cached", cached);
        out.set("prediction", prediction_json(&prediction));
        Response::json(200, &out)
    }

    /// The degraded-serving ladder, tried in cost order once the solver
    /// pool has failed this request: (1) a cache entry another solver
    /// published while this request waited, (2) the historical model —
    /// the paper's §4 method is a closed-form lookup that answers in
    /// microseconds from the same registry `/observe` refits feed — and
    /// (3) the hybrid model's closed form. Returns the prediction and
    /// which model produced it, or `None` when nothing can answer.
    fn degraded_fallback(
        &self,
        server: &ServerArch,
        workload: &Workload,
    ) -> Option<(Prediction, &'static str)> {
        if let Some(Ok(p)) = self.host.lqns.peek(server, workload) {
            return Some((p, "lqns-cache"));
        }
        if self.host.registry.version() > 0 {
            if let Some(Ok(p)) = self
                .host
                .predict_inline(Method::Historical, server, workload)
            {
                return Some((p, Method::Historical.name()));
            }
        }
        if let Some(Ok(p)) = self.host.predict_inline(Method::Hybrid, server, workload) {
            return Some((p, Method::Hybrid.name()));
        }
        None
    }

    /// The layered-queuing path: peek inline (the µs path the daemon's
    /// throughput target rides on), queue misses to the solver pool —
    /// except while draining, when workers must not enqueue behind a pool
    /// that is about to exit, so they solve inline instead.
    fn predict_lqns(
        &self,
        server: &ServerArch,
        workload: &Workload,
        deadline: Option<Instant>,
    ) -> (Result<Prediction, PredictError>, bool) {
        use perfpred_core::PerformanceModel;
        if let Some(found) = self.host.lqns.peek(server, workload) {
            return (found, true);
        }
        if self.shutdown.requested() {
            return (self.host.lqns.predict(server, workload), false);
        }
        let (reply, rx) = mpsc::channel();
        let job = Job {
            server: server.clone(),
            workload: workload.clone(),
            reply,
            deadline,
        };
        if self.queue.push(job).is_err() {
            return (
                Err(PredictError::Overloaded(
                    "solver queue is full, retry later".into(),
                )),
                false,
            );
        }
        // Wait for the remaining budget, never longer than the pool's own
        // reply bound. The solver sheds jobs whose deadline passed while
        // queued; this arm covers the complementary case where the job is
        // *being* solved (or still queued) when the budget runs out here.
        let wait = match deadline {
            Some(d) => d
                .saturating_duration_since(Instant::now())
                .min(SOLVER_REPLY_TIMEOUT),
            None => SOLVER_REPLY_TIMEOUT,
        };
        match rx.recv_timeout(wait) {
            Ok(result) => (result, false),
            Err(_) if deadline.is_some_and(|d| Instant::now() >= d) => {
                metrics::counter(names::SERVE_DEADLINE_EXPIRED_TOTAL).incr();
                (
                    Err(PredictError::DeadlineExpired(
                        "solver did not answer within the request budget".into(),
                    )),
                    false,
                )
            }
            Err(_) => (
                Err(PredictError::Overloaded(
                    "solver pool did not answer in time".into(),
                )),
                false,
            ),
        }
    }

    fn plan(&self, req: &Request) -> Response {
        let body = match req.json() {
            Ok(b) => b,
            Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
        };
        let method = match parse_method(&body) {
            Ok(m) => m,
            Err(e) => return Response::error(400, &e),
        };
        let slack = match body.get("slack") {
            None => 1.0,
            Some(v) => match v.as_f64() {
                Some(s) => s,
                None => return Response::error(400, "'slack' must be a number"),
            },
        };
        let workload = match parse_plan_workload(&body) {
            Ok(w) => w,
            Err(e) => return Response::error(400, &e),
        };
        let pool = match parse_pool(&body, &self.host) {
            Ok(p) => p,
            Err(e) => return Response::error(400, &e),
        };
        use perfpred_core::PerformanceModel;
        let model: &dyn PerformanceModel = match method {
            Method::Lqns => &self.host.lqns,
            Method::Historical => {
                if self.host.registry.version() == 0 {
                    return Response::error(
                        404,
                        &format!(
                            "method 'historical' is not hosted (available: {})",
                            self.host.available().join(", ")
                        ),
                    );
                }
                &self.host.historical
            }
            Method::Hybrid => match &self.host.hybrid {
                Some(m) => m,
                None => return Response::error(404, "method 'hybrid' is not hosted"),
            },
        };
        let plan = match perfpred_resman::plan(model, &pool, &workload, slack) {
            Ok(p) => p,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        let mut out = Json::obj();
        out.set("method", method.name());
        out.set("slack", slack);
        out.set("total_clients", u64::from(plan.total_clients));
        out.set("placement_ratio", plan.placement_ratio());
        out.set(
            "rejected_per_class",
            Json::Arr(
                plan.rejected_per_class
                    .iter()
                    .map(|&r| Json::from(u64::from(r)))
                    .collect(),
            ),
        );
        out.set(
            "servers",
            Json::Arr(
                plan.servers
                    .iter()
                    .map(|s| {
                        let mut o = Json::obj();
                        o.set("server", s.server.as_str());
                        o.set("server_idx", s.server_idx);
                        o.set(
                            "clients_per_class",
                            Json::Arr(
                                s.clients_per_class
                                    .iter()
                                    .map(|&c| Json::from(u64::from(c)))
                                    .collect(),
                            ),
                        );
                        o.set("prediction", prediction_json(&s.prediction));
                        o
                    })
                    .collect(),
            ),
        );
        Response::json(200, &out)
    }
}

/// Errors the degraded-serving ladder may absorb: the serving layer
/// failed the request, not the request itself. Anything else (bad input,
/// solver divergence) must surface to the client unchanged.
fn degradable(e: &PredictError) -> bool {
    matches!(
        e,
        PredictError::Overloaded(_) | PredictError::DeadlineExpired(_)
    )
}

/// Parses the optional `deadline_ms` body field into an absolute
/// deadline anchored at `arrival`. Absent → the daemon default; `0` →
/// deadlines off for this request (callers that prefer waiting the full
/// solver timeout over a degraded answer).
fn parse_deadline(
    body: &Json,
    default: Duration,
    arrival: Instant,
) -> Result<Option<Instant>, String> {
    let budget = match body.get("deadline_ms") {
        None => default,
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .ok_or("'deadline_ms' must be a non-negative number")?;
            Duration::from_secs_f64(ms / 1e3)
        }
    };
    Ok((budget > Duration::ZERO).then(|| arrival + budget))
}

/// Did the method's cache already hold this key? (Peek-before-predict for
/// the inline methods, so responses can report `"cached"` truthfully
/// without a second solve.)
fn peeked(host: &ModelHost, method: Method, server: &ServerArch, workload: &Workload) -> bool {
    match method {
        Method::Lqns => false, // handled by predict_lqns
        Method::Historical => {
            host.registry.version() > 0 && host.historical.peek(server, workload).is_some()
        }
        Method::Hybrid => host
            .hybrid
            .as_ref()
            .is_some_and(|c| c.peek(server, workload).is_some()),
    }
}

fn parse_method(body: &Json) -> Result<Method, String> {
    match body.get("method") {
        None => Ok(Method::Lqns),
        Some(v) => match v.as_str() {
            Some(s) => Method::parse(s),
            None => Err("'method' must be a string".into()),
        },
    }
}

fn parse_server(body: &Json, host: &ModelHost) -> Result<ServerArch, String> {
    let name = match body.get("server") {
        None => "AppServF",
        Some(v) => v
            .as_str()
            .ok_or_else(|| "'server' must be a string".to_string())?,
    };
    host.server(name).cloned().ok_or_else(|| {
        let known: Vec<&str> = host.servers.iter().map(|s| s.name.as_str()).collect();
        format!("unknown server '{name}' (known: {})", known.join(", "))
    })
}

/// Parses the request workload: either the `"workload": {"classes": [...]}`
/// long form or the `"clients": n` shorthand (optionally with `"buy_pct"`
/// and a `"goal_ms"` applied to every class).
fn parse_workload(body: &Json) -> Result<Workload, String> {
    if let Some(spec) = body.get("workload") {
        return parse_workload_classes(spec);
    }
    let clients = body
        .get("clients")
        .and_then(Json::as_u32)
        .ok_or_else(|| "need 'workload' or a whole-number 'clients'".to_string())?;
    let mut w = match body.get("buy_pct") {
        None => Workload::typical(clients),
        Some(v) => {
            let pct = v.as_f64().ok_or("'buy_pct' must be a number")?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!("'buy_pct' must be in [0, 100], got {pct}"));
            }
            Workload::with_buy_pct(clients, pct)
        }
    };
    if let Some(goal) = body.get("goal_ms") {
        let goal = goal.as_f64().ok_or("'goal_ms' must be a number")?;
        if !goal.is_finite() || goal <= 0.0 {
            return Err(format!("'goal_ms' must be positive, got {goal}"));
        }
        for c in &mut w.classes {
            c.class.rt_goal_ms = Some(goal);
        }
    }
    Ok(w)
}

fn parse_workload_classes(spec: &Json) -> Result<Workload, String> {
    let classes = spec
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or_else(|| "'workload' needs a 'classes' array".to_string())?;
    if classes.is_empty() {
        return Err("'workload.classes' must not be empty".into());
    }
    let mut out = Vec::with_capacity(classes.len());
    for (i, c) in classes.iter().enumerate() {
        let request_type = match c.get("type").and_then(Json::as_str) {
            Some("browse") | None => RequestType::Browse,
            Some("buy") => RequestType::Buy,
            Some(other) => return Err(format!("class {i}: unknown type '{other}'")),
        };
        let clients = c
            .get("clients")
            .and_then(Json::as_u32)
            .ok_or_else(|| format!("class {i}: needs whole-number 'clients'"))?;
        let think_time_ms = match c.get("think_ms") {
            None => 7_000.0,
            Some(v) => {
                let t = v
                    .as_f64()
                    .ok_or(format!("class {i}: 'think_ms' must be a number"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(format!("class {i}: 'think_ms' must be non-negative"));
                }
                t
            }
        };
        let rt_goal_ms = match c.get("goal_ms") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let g = v
                    .as_f64()
                    .ok_or(format!("class {i}: 'goal_ms' must be a number"))?;
                if !g.is_finite() || g <= 0.0 {
                    return Err(format!("class {i}: 'goal_ms' must be positive"));
                }
                Some(g)
            }
        };
        let name = c
            .get("name")
            .and_then(Json::as_str)
            .map_or_else(|| format!("class-{i}"), str::to_string);
        out.push(ClassLoad {
            class: ServiceClass {
                name,
                request_type,
                think_time_ms,
                rt_goal_ms,
            },
            clients,
        });
    }
    Ok(Workload { classes: out })
}

/// `/plan` workload: long form, or `"total_clients": n` → the §9.1 paper
/// workload mix (10 % buy @150 ms, 45 % browse @300 ms, 45 % @600 ms).
fn parse_plan_workload(body: &Json) -> Result<Workload, String> {
    if let Some(spec) = body.get("workload") {
        return parse_workload_classes(spec);
    }
    let total = body
        .get("total_clients")
        .and_then(Json::as_u32)
        .ok_or_else(|| "need 'workload' or a whole-number 'total_clients'".to_string())?;
    Ok(perfpred_resman::paper_workload(total))
}

/// `/plan` pool: `"pool": ["AppServS", ...]` by name, default the paper's
/// 16-server pool.
fn parse_pool(body: &Json, host: &ModelHost) -> Result<Vec<ServerArch>, String> {
    match body.get("pool") {
        None => Ok(perfpred_resman::paper_pool()),
        Some(v) => {
            let names = v
                .as_arr()
                .ok_or("'pool' must be an array of server names")?;
            if names.is_empty() {
                return Err("'pool' must not be empty".into());
            }
            names
                .iter()
                .map(|n| {
                    let name = n.as_str().ok_or("'pool' entries must be strings")?;
                    host.server(name)
                        .cloned()
                        .ok_or_else(|| format!("unknown server '{name}' in pool"))
                })
                .collect()
        }
    }
}

fn prediction_json(p: &Prediction) -> Json {
    let mut o = Json::obj();
    o.set("mrt_ms", p.mrt_ms);
    o.set(
        "per_class_mrt_ms",
        Json::Arr(p.per_class_mrt_ms.iter().map(|&v| Json::from(v)).collect()),
    );
    o.set("throughput_rps", p.throughput_rps);
    match p.utilization {
        Some(u) => o.set("utilization", u),
        None => o.set("utilization", Json::Null),
    };
    o.set("saturated", p.saturated);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::solver_loop;
    use perfpred_core::CacheOptions;
    use perfpred_resman::RuntimeOptions;

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn app() -> App {
        App::new(
            ModelHost::paper(&CacheOptions::default()),
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(64),
            Shutdown::new(),
        )
    }

    /// Runs the solver inline until the queue drains (tests have no solver
    /// threads, so lqns misses are pre-solved or drained explicitly).
    fn drain(app: &App) {
        let drained = Shutdown::new();
        drained.request();
        solver_loop(&app.queue, &app.host.lqns, 8, &drained);
    }

    fn body_json(r: &Response) -> Json {
        Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap()
    }

    #[test]
    fn healthz_reports_models_and_uptime() {
        let app = app();
        let r = app.handle(&request("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        let j = body_json(&r);
        assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(j.get("draining").and_then(Json::as_bool), Some(false));
        let models = j.get("models").and_then(Json::as_arr).unwrap();
        assert_eq!(models.len(), 2); // paper mode: lqns + hybrid
    }

    #[test]
    fn predict_hybrid_inline_and_reports_cached_on_repeat() {
        let app = app();
        let body = r#"{"method": "hybrid", "server": "AppServF", "clients": 200}"#;
        let first = app.handle(&request("POST", "/predict", body));
        assert_eq!(
            first.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&first.body)
        );
        let j = body_json(&first);
        assert_eq!(j.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("admitted").and_then(Json::as_bool), Some(true));
        let mrt = j
            .get("prediction")
            .and_then(|p| p.get("mrt_ms"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(mrt > 0.0);

        assert_eq!(j.get("mode").and_then(Json::as_str), Some("normal"));
        assert_eq!(j.get("served_by").and_then(Json::as_str), Some("hybrid"));

        let second = app.handle(&request("POST", "/predict", body));
        let j2 = body_json(&second);
        assert_eq!(j2.get("cached").and_then(Json::as_bool), Some(true));
        let mrt2 = j2
            .get("prediction")
            .and_then(|p| p.get("mrt_ms"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(mrt.to_bits(), mrt2.to_bits());
    }

    #[test]
    fn predict_lqns_drains_through_the_queue_and_hits_after() {
        let app = app();
        let body = r#"{"method": "lqns", "server": "AppServVF", "clients": 150}"#;
        // No solver threads running: pre-solve by draining after pushing is
        // impossible (push blocks on reply), so drive the shutdown-inline
        // path instead, which memoizes like the solvers do.
        app.shutdown.request();
        let first = app.handle(&request("POST", "/predict", body));
        assert_eq!(
            first.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&first.body)
        );
        assert_eq!(
            body_json(&first).get("cached").and_then(Json::as_bool),
            Some(false)
        );
        let second = app.handle(&request("POST", "/predict", body));
        assert_eq!(
            body_json(&second).get("cached").and_then(Json::as_bool),
            Some(true)
        );
        drain(&app);
    }

    #[test]
    fn admission_rejects_with_a_structured_503() {
        let app = app();
        app.shutdown.request(); // inline lqns solves
                                // 600 clients on the slow architecture blow a 150 ms goal.
        let body = r#"{"method": "lqns", "server": "AppServS", "clients": 900, "goal_ms": 150}"#;
        let r = app.handle(&request("POST", "/predict", body));
        assert_eq!(r.status, 503, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("admitted").and_then(Json::as_bool), Some(false));
        assert!(j.get("class").and_then(Json::as_str).is_some());
        assert!(j.get("predicted_mrt_ms").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(j.get("goal_ms").and_then(Json::as_f64), Some(150.0));
        assert_eq!(j.get("threshold").and_then(Json::as_f64), Some(0.05));
        // The same request with admission disabled answers 200.
        let body_off = r#"{"method": "lqns", "server": "AppServS", "clients": 900, "goal_ms": 150, "admission": false}"#;
        assert_eq!(
            app.handle(&request("POST", "/predict", body_off)).status,
            200
        );
    }

    #[test]
    fn predict_validates_input() {
        let app = app();
        assert_eq!(
            app.handle(&request("POST", "/predict", "{not json")).status,
            400
        );
        assert_eq!(
            app.handle(&request(
                "POST",
                "/predict",
                r#"{"clients": 10, "method": "nope"}"#
            ))
            .status,
            400
        );
        assert_eq!(
            app.handle(&request(
                "POST",
                "/predict",
                r#"{"clients": 10, "server": "Cray"}"#
            ))
            .status,
            400
        );
        assert_eq!(
            app.handle(&request("POST", "/predict", r#"{"server": "AppServF"}"#))
                .status,
            400
        );
        // Historical is not hosted in paper mode.
        assert_eq!(
            app.handle(&request(
                "POST",
                "/predict",
                r#"{"clients": 10, "method": "historical"}"#
            ))
            .status,
            404
        );
        assert_eq!(app.handle(&request("GET", "/nope", "")).status, 404);
        assert_eq!(app.handle(&request("DELETE", "/predict", "")).status, 405);
    }

    #[test]
    fn wrong_method_on_a_known_path_answers_405_with_allow() {
        let app = app();
        let r = app.handle(&request("DELETE", "/predict", ""));
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("POST"));
        let r = app.handle(&request("POST", "/healthz", ""));
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("GET"));
        let r = app.handle(&request("PUT", "/cluster", ""));
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("GET"));
        // Unknown paths stay 404 with no Allow.
        let r = app.handle(&request("DELETE", "/nope", ""));
        assert_eq!((r.status, r.allow), (404, None));
    }

    #[test]
    fn healthz_reports_cluster_and_queue_fields() {
        let app = app();
        let j = body_json(&app.handle(&request("GET", "/healthz", "")));
        assert_eq!(j.get("model_version").and_then(Json::as_u32), Some(0));
        assert_eq!(
            j.get("cluster_role").and_then(Json::as_str),
            Some("primary"),
            "a standalone daemon is its own primary"
        );
        assert_eq!(j.get("reactor_shards").and_then(Json::as_u32), Some(0));
        assert_eq!(
            j.get("dispatch_queue_depth").and_then(Json::as_u32),
            Some(0)
        );
        assert_eq!(j.get("solver_queue_depth").and_then(Json::as_u32), Some(0));
    }

    #[test]
    fn cluster_route_and_observe_gate_follow_the_role() {
        use perfpred_cluster::{ClusterState, Role};
        // Without cluster config the route 404s and observes flow.
        let plain = app();
        assert_eq!(plain.handle(&request("GET", "/cluster", "")).status, 404);

        let state = Arc::new(ClusterState::new("node-x", Role::Follower, 3, 0));
        let app = plain.with_cluster(Arc::clone(&state));
        let j = body_json(&app.handle(&request("GET", "/cluster", "")));
        assert_eq!(j.get("role").and_then(Json::as_str), Some("follower"));
        assert_eq!(j.get("epoch").and_then(Json::as_u32), Some(3));
        assert_eq!(j.get("writable").and_then(Json::as_bool), Some(false));
        let j = body_json(&app.handle(&request("GET", "/healthz", "")));
        assert_eq!(
            j.get("cluster_role").and_then(Json::as_str),
            Some("follower")
        );

        // A follower refuses observations with a structured 409 ...
        let body = r#"{"server": "AppServF", "clients": 10, "mrt_ms": 42.0}"#;
        let r = app.handle(&request("POST", "/observe", body));
        assert_eq!(r.status, 409, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("role").and_then(Json::as_str), Some("follower"));
        assert_eq!(j.get("epoch").and_then(Json::as_u32), Some(3));

        // ... and accepts them the moment it is promoted.
        state.promote(4, 0);
        let r = app.handle(&request("POST", "/observe", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    }

    #[test]
    fn plan_allocates_the_paper_scenario() {
        let app = app();
        let body = r#"{"method": "hybrid", "total_clients": 800, "slack": 1.1}"#;
        let r = app.handle(&request("POST", "/plan", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("total_clients").and_then(Json::as_u32), Some(800));
        let ratio = j.get("placement_ratio").and_then(Json::as_f64).unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0);
        let servers = j.get("servers").and_then(Json::as_arr).unwrap();
        assert!(!servers.is_empty());
        for s in servers {
            assert!(s.get("prediction").and_then(|p| p.get("mrt_ms")).is_some());
        }
    }

    #[test]
    fn metrics_expose_request_counters() {
        let _scope = metrics::Scope::new();
        let guard = _scope.enter();
        let app = app();
        app.handle(&request("GET", "/healthz", ""));
        let r = app.handle(&request("GET", "/metrics", ""));
        assert_eq!(r.status, 200);
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("serve_http_requests"), "{text}");
        assert!(
            text.contains("serve_model_version{method=\"historical\",model_version=\"0\"} 0"),
            "{text}"
        );
        drop(guard);
    }

    /// A synthetic AppServF measurement sweep as `/observe` batch items.
    fn observe_batch(count: usize, scale: f64) -> String {
        let m = 1_000.0 / 7_020.0;
        let n_star = 186.0 / m;
        let items: Vec<String> = (0..count)
            .map(|i| {
                let frac = 0.15 + 1.45 * ((i % 29) as f64) / 28.0;
                let n = (frac * n_star).round().max(1.0);
                let mrt = if frac < 1.0 {
                    scale * 20.0 * (1.8 * frac).exp()
                } else {
                    scale * (7.0 * n / 1.3 - 6_000.0).max(100.0)
                };
                let tput = if frac <= 0.9 { m * n } else { 0.0 };
                format!(
                    r#"{{"server": "AppServF", "clients": {}, "mrt_ms": {mrt}, "throughput_rps": {tput}, "timestamp_us": {i}}}"#,
                    n as u32
                )
            })
            .collect();
        format!(r#"{{"batch": [{}]}}"#, items.join(", "))
    }

    fn predict_historical_mrt(app: &App) -> (f64, bool) {
        let body = r#"{"method": "historical", "clients": 300, "admission": false}"#;
        let r = app.handle(&request("POST", "/predict", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        (
            j.get("prediction")
                .and_then(|p| p.get("mrt_ms"))
                .and_then(Json::as_f64)
                .unwrap(),
            j.get("cached").and_then(Json::as_bool).unwrap(),
        )
    }

    #[test]
    fn deadline_miss_degrades_to_the_historical_model_bit_for_bit() {
        let app = app();
        // Calibrate the historical model through /observe first.
        let r = app.handle(&request("POST", "/observe", &observe_batch(128, 1.0)));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));

        // No solver threads run in this test, so an lqns miss with a 1 ms
        // budget expires in the queue and must fall back.
        let body = r#"{"method": "lqns", "clients": 300, "deadline_ms": 1, "admission": false}"#;
        let r = app.handle(&request("POST", "/predict", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("mode").and_then(Json::as_str), Some("degraded"));
        assert_eq!(
            j.get("served_by").and_then(Json::as_str),
            Some("historical")
        );
        let degraded = j
            .get("prediction")
            .and_then(|p| p.get("mrt_ms"))
            .and_then(Json::as_f64)
            .unwrap();

        // The degraded answer and a pure method=historical request for
        // the same workload must be the same bits — the fallback serves
        // through the very cache the historical method uses.
        let (pure, _) = predict_historical_mrt(&app);
        assert_eq!(degraded.to_bits(), pure.to_bits());
    }

    #[test]
    fn saturated_queue_degrades_to_hybrid() {
        let app = App::new(
            ModelHost::paper(&CacheOptions::default()),
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(1),
            Shutdown::new(),
        );
        // Fill the single queue slot so the next miss overflows.
        let (tx, _rx) = mpsc::channel();
        let server = app.host.server("AppServF").unwrap().clone();
        assert!(app
            .queue
            .push(Job {
                server,
                workload: Workload::typical(5),
                reply: tx,
                deadline: None,
            })
            .is_ok());

        let body = r#"{"method": "lqns", "clients": 400, "admission": false}"#;
        let r = app.handle(&request("POST", "/predict", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("mode").and_then(Json::as_str), Some("degraded"));
        assert_eq!(j.get("served_by").and_then(Json::as_str), Some("hybrid"));
    }

    #[test]
    fn deadline_with_no_fallback_answers_504() {
        let mut host = ModelHost::paper(&CacheOptions::default());
        host.hybrid = None; // nothing on the degraded ladder can answer
        let app = App::new(
            host,
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(64),
            Shutdown::new(),
        );
        let body = r#"{"method": "lqns", "clients": 350, "deadline_ms": 1}"#;
        let r = app.handle(&request("POST", "/predict", body));
        assert_eq!(r.status, 504, "{:?}", String::from_utf8_lossy(&r.body));

        // deadline_ms must be a non-negative number.
        let r = app.handle(&request(
            "POST",
            "/predict",
            r#"{"method": "lqns", "clients": 10, "deadline_ms": -5}"#,
        ));
        assert_eq!(r.status, 400, "{:?}", String::from_utf8_lossy(&r.body));
    }

    #[test]
    fn observe_refits_and_flips_historical_on() {
        let app = app();
        // No model yet: historical 404s and /models shows version 0.
        assert_eq!(
            app.handle(&request(
                "POST",
                "/predict",
                r#"{"clients": 10, "method": "historical"}"#
            ))
            .status,
            404
        );
        let j = body_json(&app.handle(&request("GET", "/models", "")));
        assert_eq!(j.get("current").and_then(Json::as_u32), Some(0));

        // One default refit window of observations triggers the first fit.
        let r = app.handle(&request("POST", "/observe", &observe_batch(128, 1.0)));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("accepted").and_then(Json::as_u32), Some(128));
        assert!(j.get("model_version").and_then(Json::as_u32).unwrap() >= 1);
        let refits = j.get("refits").and_then(Json::as_arr).unwrap();
        assert!(!refits.is_empty(), "window refit expected");

        // Historical serves now, and /models records the version history.
        let (mrt, cached) = predict_historical_mrt(&app);
        assert!(mrt > 0.0);
        assert!(!cached);
        let j = body_json(&app.handle(&request("GET", "/models", "")));
        assert!(j.get("current").and_then(Json::as_u32).unwrap() >= 1);
        assert_eq!(j.get("observations").and_then(Json::as_u32), Some(128));
        assert!(!j.get("versions").and_then(Json::as_arr).unwrap().is_empty());
    }

    #[test]
    fn refit_swaps_the_model_without_flushing_the_cache() {
        let app = app();
        app.handle(&request("POST", "/observe", &observe_batch(128, 1.0)));
        let (before, _) = predict_historical_mrt(&app);
        let (_, cached) = predict_historical_mrt(&app);
        assert!(cached, "second identical predict must hit the cache");

        // A slower regime: the next window refits, the swap re-keys the
        // cache, and the same request re-solves against the new model.
        let r = app.handle(&request("POST", "/observe", &observe_batch(128, 1.6)));
        let j = body_json(&r);
        assert!(
            !j.get("refits").and_then(Json::as_arr).unwrap().is_empty(),
            "{j:?}"
        );
        let (after, cached) = predict_historical_mrt(&app);
        assert!(!cached, "post-swap predict must miss the stale entry");
        assert!(
            (after - before).abs() > 1e-9,
            "post-refit prediction must differ: {before} vs {after}"
        );
    }

    #[test]
    fn admin_threshold_hot_reloads_the_admission_rule() {
        let app = app();
        app.shutdown.request(); // inline lqns solves
        assert_eq!(app.admission.threshold(), 0.05);

        // A workload that trips the default 5 % threshold ...
        let predict = r#"{"method": "lqns", "server": "AppServS", "clients": 900, "goal_ms": 150}"#;
        assert_eq!(
            app.handle(&request("POST", "/predict", predict)).status,
            503
        );

        // ... 400s on bad reload bodies (threshold unchanged) ...
        for bad in [
            "{not json",
            r#"{"threshold": "high"}"#,
            r#"{"threshold": 1.0}"#,
            r#"{"threshold": -0.5}"#,
            r#"{}"#,
        ] {
            assert_eq!(
                app.handle(&request("POST", "/admin/threshold", bad)).status,
                400,
                "{bad}"
            );
        }
        assert_eq!(app.admission.threshold(), 0.05);

        // ... and a valid reload takes effect on the very next request.
        let r = app.handle(&request(
            "POST",
            "/admin/threshold",
            r#"{"threshold": 0.9}"#,
        ));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let j = body_json(&r);
        assert_eq!(j.get("threshold").and_then(Json::as_f64), Some(0.9));
        assert_eq!(j.get("previous").and_then(Json::as_f64), Some(0.05));
        assert_eq!(
            app.handle(&request("POST", "/predict", predict)).status,
            503
        );
        // Loosening all the way readmits the same workload.
        let light = r#"{"method": "lqns", "server": "AppServS", "clients": 100, "goal_ms": 150}"#;
        app.handle(&request(
            "POST",
            "/admin/threshold",
            r#"{"threshold": 0.0}"#,
        ));
        assert_eq!(app.handle(&request("POST", "/predict", light)).status, 200);

        // Wrong method answers 405 with Allow.
        let r = app.handle(&request("GET", "/admin/threshold", ""));
        assert_eq!((r.status, r.allow), (405, Some("POST")));
        drain(&app);
    }

    #[test]
    fn healthz_and_metrics_expose_control_plane_gauges() {
        let _scope = metrics::Scope::new();
        let guard = _scope.enter();
        let app = app();
        // Drive a few predicts so the arrival meter has counted something.
        for _ in 0..3 {
            app.handle(&request(
                "POST",
                "/predict",
                r#"{"method": "hybrid", "clients": 50}"#,
            ));
        }
        assert_eq!(app.arrivals.total(), 3);
        let j = body_json(&app.handle(&request("GET", "/healthz", "")));
        assert_eq!(j.get("threshold").and_then(Json::as_f64), Some(0.05));
        let arrival = j.get("arrival").expect("healthz carries arrival rates");
        for key in ["total_rps", "browse_rps", "buy_rps"] {
            assert!(arrival.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
        let r = app.handle(&request("GET", "/metrics", ""));
        let text = String::from_utf8(r.body).unwrap();
        for line in [
            "serve_arrival_rate_rps{class=\"total\"}",
            "serve_arrival_rate_rps{class=\"browse\"}",
            "serve_arrival_rate_rps{class=\"buy\"}",
            "serve_dispatch_queue_depth 0",
            "serve_solver_queue_depth 0",
            "serve_admission_threshold 0.05",
        ] {
            assert!(text.contains(line), "missing {line} in:\n{text}");
        }
        drop(guard);
    }

    #[test]
    fn observe_validates_input() {
        let app = app();
        // Unknown server.
        assert_eq!(
            app.handle(&request(
                "POST",
                "/observe",
                r#"{"server": "Cray", "clients": 5, "mrt_ms": 10}"#
            ))
            .status,
            400
        );
        // Missing fields.
        assert_eq!(
            app.handle(&request("POST", "/observe", r#"{"server": "AppServF"}"#))
                .status,
            400
        );
        // Bad values inside a batch name the offending index.
        let r = app.handle(&request(
            "POST",
            "/observe",
            r#"{"batch": [{"server": "AppServF", "clients": 5, "mrt_ms": 10}, {"server": "AppServF", "clients": 5, "mrt_ms": -3}]}"#,
        ));
        assert_eq!(r.status, 400);
        assert!(
            String::from_utf8_lossy(&r.body).contains("batch[1]"),
            "{:?}",
            String::from_utf8_lossy(&r.body)
        );
        // Empty batch.
        assert_eq!(
            app.handle(&request("POST", "/observe", r#"{"batch": []}"#))
                .status,
            400
        );
        // A single valid observation is accepted without the batch form.
        let r = app.handle(&request(
            "POST",
            "/observe",
            r#"{"server": "AppServF", "clients": 250, "mrt_ms": 42.5}"#,
        ));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        assert_eq!(
            body_json(&r).get("accepted").and_then(Json::as_u32),
            Some(1)
        );
    }
}
