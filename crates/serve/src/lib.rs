#![warn(missing_docs)]

//! # perfpred-serve
//!
//! An online prediction-serving daemon for the perfpred workspace: the
//! paper's §8.5 timing argument — historical predictions answer in
//! microseconds while layered queuing solves cost much more, so a resource
//! manager must consume predictions *online* — turned into a long-running
//! service instead of a batch sweep.
//!
//! The daemon is a std-only, multi-threaded TCP server speaking a
//! hand-rolled subset of HTTP/1.1 (the workspace stays dependency-free).
//! It hosts the layered queuing, hybrid and (when calibrated) historical
//! predictors behind [`perfpred_core::PredictionCache`] and answers:
//!
//! * `POST /predict` — server architecture + workload → response
//!   time/throughput prediction, with SLA-threshold admission control;
//! * `POST /observe` — ingest measured operating points (single or
//!   batched) into the [`perfpred_store`] observation log; every full
//!   refit window (or on detected drift) the historical model is refitted
//!   and hot-swapped without dropping in-flight work;
//! * `GET /models` — the versioned model registry: current version,
//!   triggers, observation counts;
//! * `POST /plan` — SLA workload set + pool → resource-manager allocation
//!   (via [`perfpred_resman::planner::plan`]);
//! * `GET /metrics` — Prometheus-style text exposition of the
//!   [`perfpred_core::metrics`] registry, including per-endpoint latency
//!   histograms and the serving `serve_model_version`;
//! * `GET /healthz` — liveness;
//! * `POST /shutdown` — graceful drain (SIGTERM/ctrl-c do the same),
//!   fsyncing the observation log tail last.
//!
//! ## Serving stack
//!
//! ```text
//!          accept loop (bounded queue, overload ⇒ 503)
//!               │
//!     ┌─────────┼─────────┐
//!  worker    worker     worker      HTTP parse + route + admission
//!     │         │          │
//!     │   cache hit? ──────┼──────▶ answer in-line (µs path)
//!     │         │          │
//!     └──── miss: enqueue ─┘
//!               │
//!          solver pool (micro-batching, per-worker AmvaWorkspace
//!          warm starts, results memoized into the shared cache)
//! ```
//!
//! Admission control mirrors [`perfpred_resman::runtime`]: a predict
//! request whose predicted response time lands within
//! `RuntimeOptions::threshold` of its SLA goal is rejected with 503 —
//! §9's "application servers reject clients at runtime if response times
//! are within a threshold of missing SLA goals", exercised per request.

pub mod admission;
pub mod arrivals;
pub mod batch;
pub mod config;
pub mod conn;
pub mod http;
pub mod models;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod router;
pub mod server;
pub mod shutdown;

pub use admission::{AdmissionController, Verdict};
pub use arrivals::{ArrivalMeter, ArrivalRates};
pub use config::{ModelSpec, ServeConfig};
pub use models::{Method, ModelHost};
#[cfg(target_os = "linux")]
pub use reactor::ReactorServer;
pub use server::Server;
pub use shutdown::Shutdown;
