//! Daemon configuration and command-line parsing (std-only, no clap).

use perfpred_cluster::Role;
use perfpred_core::CacheOptions;
use perfpred_resman::RuntimeOptions;
use std::path::PathBuf;

/// Which models the daemon hosts and how they are calibrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// Instant start-up: the layered queuing predictor on the paper's
    /// Table 2 processing times, plus the advanced hybrid calibrated from
    /// it. No simulator campaigns, so no historical model.
    Paper,
    /// Calibrate all three predictors against the simulated testbed with
    /// smoke-grade simulations (seconds of start-up).
    CalibratedQuick,
    /// Calibrate all three predictors with measurement-grade simulations
    /// (minutes of start-up; what the repro experiments use).
    Calibrated,
}

impl ModelSpec {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "paper" => Ok(ModelSpec::Paper),
            "calibrated-quick" | "quick" => Ok(ModelSpec::CalibratedQuick),
            "calibrated" | "measured" => Ok(ModelSpec::Calibrated),
            other => Err(format!(
                "unknown model spec '{other}' (expected paper, calibrated-quick or calibrated)"
            )),
        }
    }
}

/// Replicated-cluster membership: who this node is, which role it boots
/// in, where its replication hub listens, and who its peers are.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's name (unique within the cluster).
    pub node: String,
    /// Boot role. A configured primary still runs the rejoin handshake
    /// against its peers before accepting writes.
    pub role: Role,
    /// Replication hub port; `0` = ephemeral (pair with
    /// `repl_port_file`). The hub binds the daemon's `--host`.
    pub repl_port: u16,
    /// When set, the bound replication port is written here.
    pub repl_port_file: Option<PathBuf>,
    /// Replication addresses (`host:port`) of the other nodes.
    pub peers: Vec<String>,
    /// Whether this follower takes over when the primary goes silent.
    pub designated: bool,
    /// How long the primary must be silent before the designated
    /// follower seizes the epoch.
    pub failover_grace_ms: u64,
}

/// Everything the daemon needs to come up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind, default `127.0.0.1`.
    pub host: String,
    /// Port to bind; `0` asks the OS for an ephemeral port (pair with
    /// `port_file` for scripts).
    pub port: u16,
    /// When set, the daemon writes the bound port number here once
    /// listening — how the CI smoke job finds an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Connection-handling worker threads (threaded core), or the
    /// blocking-dispatcher pool size (reactor core).
    pub workers: usize,
    /// Epoll reactor shards for the event-driven core; `0` selects the
    /// classic thread-per-connection core. Defaults to the CPU count
    /// (1..8) on Linux and `0` elsewhere, where epoll does not exist.
    pub reactor_shards: usize,
    /// Layered-queuing solver threads (the micro-batching pool).
    pub solvers: usize,
    /// Bound on connections queued between accept and the workers;
    /// overflow is answered with an immediate 503.
    pub queue_depth: usize,
    /// Most predict jobs one solver drains per lock acquisition.
    pub batch_max: usize,
    /// Admission-control options; the threshold is validated at parse
    /// time via [`RuntimeOptions::with_threshold`].
    pub admission: RuntimeOptions,
    /// Prediction-cache shape. Serving defaults to a bounded cache
    /// (capacity 262 144) so the daemon cannot grow without bound —
    /// unlike the repro sweeps, which keep the unbounded default.
    pub cache: CacheOptions,
    /// Model hosting/calibration choice.
    pub models: ModelSpec,
    /// Seed for calibrated model specs.
    pub seed: u64,
    /// Directory for the durable observation log. `None` keeps the
    /// observation store in memory (refits still run, nothing persists).
    pub store_dir: Option<PathBuf>,
    /// Observations between scheduled refits.
    pub refit_window: usize,
    /// Mean relative error over recent observations that triggers an
    /// early (drift) refit; `0` disables drift detection.
    pub drift_threshold: f64,
    /// Default `/predict` deadline budget in milliseconds; `0` disables
    /// deadlines (requests then wait the full solver reply timeout). A
    /// request's own `deadline_ms` field overrides this per call.
    pub deadline_ms: u64,
    /// Replicated-cluster membership; `None` = standalone daemon.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let parallelism =
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ServeConfig {
            host: "127.0.0.1".into(),
            port: 7020,
            port_file: None,
            workers: parallelism.clamp(2, 16),
            reactor_shards: if cfg!(target_os = "linux") {
                parallelism.clamp(1, 8)
            } else {
                0
            },
            solvers: (parallelism / 4).clamp(1, 4),
            queue_depth: 1024,
            batch_max: 32,
            admission: RuntimeOptions::default(),
            cache: CacheOptions {
                capacity: Some(262_144),
                ..Default::default()
            },
            models: ModelSpec::Paper,
            seed: perfpred_bench::context::DEFAULT_SEED,
            store_dir: None,
            refit_window: 128,
            drift_threshold: 0.25,
            deadline_ms: 1_000,
            cluster: None,
        }
    }
}

/// The `--help` text.
pub const USAGE: &str = "\
perfpred-serve — online prediction-serving daemon

USAGE: perfpred-serve [OPTIONS]

  --host ADDR          interface to bind (default 127.0.0.1)
  --port N             port to bind; 0 = ephemeral (default 7020)
  --port-file PATH     write the bound port here once listening
  --workers N          connection worker threads (threaded core) or
                       blocking-dispatcher threads (reactor core)
                       (default: CPU count, 2..16)
  --reactor-shards N   epoll reactor shards for the event-driven core;
                       0 = classic thread-per-connection core
                       (default on Linux: CPU count, 1..8; elsewhere 0)
  --solvers N          LQ solver threads (default: CPU count / 4, 1..4)
  --queue-depth N      accept-queue / dispatch-queue bound, overflow => 503
                       (default 1024)
  --batch-max N        max predict jobs per solver batch (default 32)
  --threshold X        admission threshold in [0, 1) (default 0.05)
  --cache-capacity N   prediction-cache entry bound, 0 = unbounded
                       (default 262144)
  --client-quantum N   cache client-count quantum (default 1 = exact)
  --model SPEC         paper | calibrated-quick | calibrated (default paper)
  --seed N             calibration seed (default: the paper's)
  --store-dir PATH     durable observation log directory; unset = in-memory
  --refit-window N     observations between scheduled refits (default 128)
  --drift-threshold X  mean relative error triggering an early refit,
                       0 disables drift detection (default 0.25)
  --deadline-ms N      default /predict deadline budget in ms; past it the
                       daemon answers from the degraded ladder (cache,
                       historical, hybrid) or 504s. 0 disables deadlines
                       (default 1000)

Clustering (any of these flags enables cluster mode; requires --store-dir):
  --cluster-node NAME  this node's name (required in cluster mode)
  --cluster-role ROLE  primary | follower (default primary)
  --repl-port N        replication hub port; 0 = ephemeral (default 0)
  --repl-port-file P   write the bound replication port here
  --repl-peers A,B     replication addresses of the other nodes
                       (required for followers)
  --designated-successor
                       this follower takes over when the primary goes
                       silent past the grace period
  --failover-grace-ms N
                       primary silence before takeover (default 3000)

  --help               print this text

Fault injection (chaos testing): set PERFPRED_FAULTS to a spec like
  solver_delay=5ms:p0.1,store_io_err=p0.01,accept_reset=p0.05
and optionally PERFPRED_FAULT_SEED for a reproducible draw sequence.
";

impl ServeConfig {
    /// Parses command-line arguments (everything after argv[0]).
    ///
    /// Returns `Err(message)` on malformed input; `--help` surfaces as an
    /// error carrying [`USAGE`] so `main` can print-and-exit.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default();
        let mut args = args.into_iter();
        // Cluster flags are collected loose and validated together at the
        // end, so flag order never matters.
        let mut cluster_touched = false;
        let mut cluster = ClusterConfig {
            node: String::new(),
            role: Role::Primary,
            repl_port: 0,
            repl_port_file: None,
            peers: Vec::new(),
            designated: false,
            failover_grace_ms: 3_000,
        };
        fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        }
        fn parsed<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("{flag}: cannot parse '{raw}'"))
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(USAGE.to_string()),
                "--host" => cfg.host = value(&mut args, "--host")?,
                "--port" => cfg.port = parsed(&value(&mut args, "--port")?, "--port")?,
                "--port-file" => {
                    cfg.port_file = Some(PathBuf::from(value(&mut args, "--port-file")?));
                }
                "--workers" => {
                    cfg.workers = parsed::<usize>(&value(&mut args, "--workers")?, "--workers")?
                        .clamp(1, 256);
                }
                "--reactor-shards" => {
                    cfg.reactor_shards = parsed::<usize>(
                        &value(&mut args, "--reactor-shards")?,
                        "--reactor-shards",
                    )?
                    .min(256);
                    if cfg.reactor_shards > 0 && !cfg!(target_os = "linux") {
                        return Err("--reactor-shards requires Linux (epoll)".into());
                    }
                }
                "--solvers" => {
                    cfg.solvers =
                        parsed::<usize>(&value(&mut args, "--solvers")?, "--solvers")?.clamp(1, 64);
                }
                "--queue-depth" => {
                    cfg.queue_depth =
                        parsed::<usize>(&value(&mut args, "--queue-depth")?, "--queue-depth")?
                            .max(1);
                }
                "--batch-max" => {
                    cfg.batch_max =
                        parsed::<usize>(&value(&mut args, "--batch-max")?, "--batch-max")?.max(1);
                }
                "--threshold" => {
                    let t: f64 = parsed(&value(&mut args, "--threshold")?, "--threshold")?;
                    cfg.admission = RuntimeOptions::with_threshold(t).map_err(|e| e.to_string())?;
                }
                "--cache-capacity" => {
                    let n: usize =
                        parsed(&value(&mut args, "--cache-capacity")?, "--cache-capacity")?;
                    cfg.cache.capacity = if n == 0 { None } else { Some(n) };
                }
                "--client-quantum" => {
                    cfg.cache.client_quantum =
                        parsed::<u32>(&value(&mut args, "--client-quantum")?, "--client-quantum")?
                            .max(1);
                }
                "--model" => cfg.models = ModelSpec::parse(&value(&mut args, "--model")?)?,
                "--seed" => cfg.seed = parsed(&value(&mut args, "--seed")?, "--seed")?,
                "--store-dir" => {
                    cfg.store_dir = Some(PathBuf::from(value(&mut args, "--store-dir")?));
                }
                "--refit-window" => {
                    cfg.refit_window =
                        parsed::<usize>(&value(&mut args, "--refit-window")?, "--refit-window")?
                            .max(1);
                }
                "--drift-threshold" => {
                    let t: f64 =
                        parsed(&value(&mut args, "--drift-threshold")?, "--drift-threshold")?;
                    if !t.is_finite() || t < 0.0 {
                        return Err(format!(
                            "--drift-threshold must be a non-negative number, got {t}"
                        ));
                    }
                    cfg.drift_threshold = t;
                }
                "--deadline-ms" => {
                    cfg.deadline_ms =
                        parsed::<u64>(&value(&mut args, "--deadline-ms")?, "--deadline-ms")?;
                }
                "--cluster-node" => {
                    cluster.node = value(&mut args, "--cluster-node")?;
                    cluster_touched = true;
                }
                "--cluster-role" => {
                    cluster.role = match value(&mut args, "--cluster-role")?.as_str() {
                        "primary" => Role::Primary,
                        "follower" => Role::Follower,
                        other => {
                            return Err(format!(
                                "--cluster-role: expected primary or follower, got '{other}'"
                            ))
                        }
                    };
                    cluster_touched = true;
                }
                "--repl-port" => {
                    cluster.repl_port = parsed(&value(&mut args, "--repl-port")?, "--repl-port")?;
                    cluster_touched = true;
                }
                "--repl-port-file" => {
                    cluster.repl_port_file =
                        Some(PathBuf::from(value(&mut args, "--repl-port-file")?));
                    cluster_touched = true;
                }
                "--repl-peers" => {
                    cluster.peers = value(&mut args, "--repl-peers")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    cluster_touched = true;
                }
                "--designated-successor" => {
                    cluster.designated = true;
                    cluster_touched = true;
                }
                "--failover-grace-ms" => {
                    cluster.failover_grace_ms = parsed::<u64>(
                        &value(&mut args, "--failover-grace-ms")?,
                        "--failover-grace-ms",
                    )?
                    .max(1);
                    cluster_touched = true;
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
        }
        if cluster_touched {
            if cluster.node.is_empty() {
                return Err("cluster mode needs --cluster-node NAME".into());
            }
            if cfg.store_dir.is_none() {
                return Err("cluster mode needs --store-dir (the log is what replicates)".into());
            }
            if cluster.role == Role::Follower && cluster.peers.is_empty() {
                return Err("a follower needs --repl-peers to pull from".into());
            }
            if cluster.designated && cluster.role != Role::Follower {
                return Err("--designated-successor only makes sense on a follower".into());
            }
            cfg.cluster = Some(cluster);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeConfig, String> {
        ServeConfig::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_serving_shaped() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.port, 7020);
        assert_eq!(cfg.models, ModelSpec::Paper);
        // Bounded cache by default — a daemon must not grow unboundedly.
        assert!(cfg.cache.capacity.is_some());
        assert_eq!(cfg.cache.client_quantum, 1);
        assert!(cfg.workers >= 2);
        assert!(cfg.solvers >= 1);
        if cfg!(target_os = "linux") {
            assert!(cfg.reactor_shards >= 1, "reactor is the default on Linux");
        } else {
            assert_eq!(cfg.reactor_shards, 0);
        }
    }

    #[test]
    fn reactor_shards_flag_selects_the_core() {
        let cfg = parse(&["--reactor-shards", "0"]).unwrap();
        assert_eq!(cfg.reactor_shards, 0, "0 falls back to the threaded core");
        if cfg!(target_os = "linux") {
            assert_eq!(parse(&["--reactor-shards", "4"]).unwrap().reactor_shards, 4);
        } else {
            assert!(parse(&["--reactor-shards", "4"]).is_err());
        }
        assert!(parse(&["--reactor-shards", "x"])
            .unwrap_err()
            .contains("--reactor-shards"));
    }

    #[test]
    fn flags_override_defaults() {
        let cfg = parse(&[
            "--port",
            "0",
            "--workers",
            "3",
            "--solvers",
            "2",
            "--queue-depth",
            "7",
            "--batch-max",
            "4",
            "--threshold",
            "0.2",
            "--cache-capacity",
            "0",
            "--client-quantum",
            "10",
            "--model",
            "calibrated-quick",
            "--seed",
            "42",
            "--port-file",
            "/tmp/p",
            "--store-dir",
            "/tmp/obs",
            "--refit-window",
            "32",
            "--drift-threshold",
            "0.4",
            "--deadline-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(cfg.port, 0);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.solvers, 2);
        assert_eq!(cfg.queue_depth, 7);
        assert_eq!(cfg.batch_max, 4);
        assert!((cfg.admission.threshold - 0.2).abs() < 1e-12);
        assert_eq!(cfg.cache.capacity, None);
        assert_eq!(cfg.cache.client_quantum, 10);
        assert_eq!(cfg.models, ModelSpec::CalibratedQuick);
        assert_eq!(cfg.seed, 42);
        assert_eq!(
            cfg.port_file.as_deref(),
            Some(std::path::Path::new("/tmp/p"))
        );
        assert_eq!(
            cfg.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/obs"))
        );
        assert_eq!(cfg.refit_window, 32);
        assert!((cfg.drift_threshold - 0.4).abs() < 1e-12);
        assert_eq!(cfg.deadline_ms, 250);
    }

    #[test]
    fn deadline_defaults_to_a_second_and_zero_disables() {
        assert_eq!(parse(&[]).unwrap().deadline_ms, 1_000);
        assert_eq!(parse(&["--deadline-ms", "0"]).unwrap().deadline_ms, 0);
        assert!(parse(&["--deadline-ms", "-3"])
            .unwrap_err()
            .contains("--deadline-ms"));
    }

    #[test]
    fn cluster_flags_assemble_and_validate() {
        assert!(parse(&[]).unwrap().cluster.is_none());

        let cfg = parse(&[
            "--store-dir",
            "/tmp/obs",
            "--cluster-node",
            "b",
            "--cluster-role",
            "follower",
            "--repl-peers",
            "127.0.0.1:7040, 127.0.0.1:7041",
            "--repl-port",
            "7042",
            "--repl-port-file",
            "/tmp/rp",
            "--designated-successor",
            "--failover-grace-ms",
            "750",
        ])
        .unwrap();
        let c = cfg.cluster.unwrap();
        assert_eq!(c.node, "b");
        assert_eq!(c.role, Role::Follower);
        assert_eq!(c.peers, vec!["127.0.0.1:7040", "127.0.0.1:7041"]);
        assert_eq!(c.repl_port, 7042);
        assert_eq!(
            c.repl_port_file.as_deref(),
            Some(std::path::Path::new("/tmp/rp"))
        );
        assert!(c.designated);
        assert_eq!(c.failover_grace_ms, 750);

        // A primary needs no peers; flag order does not matter.
        let c = parse(&["--cluster-node", "a", "--store-dir", "/tmp/obs"])
            .unwrap()
            .cluster
            .unwrap();
        assert_eq!(c.role, Role::Primary);
        assert_eq!(c.failover_grace_ms, 3_000);

        // Validation: node name, store dir, follower peers, successor role.
        assert!(parse(&["--repl-port", "7040", "--store-dir", "/tmp/o"])
            .unwrap_err()
            .contains("--cluster-node"));
        assert!(parse(&["--cluster-node", "a"])
            .unwrap_err()
            .contains("--store-dir"));
        assert!(parse(&[
            "--cluster-node",
            "b",
            "--cluster-role",
            "follower",
            "--store-dir",
            "/tmp/o"
        ])
        .unwrap_err()
        .contains("--repl-peers"));
        assert!(parse(&[
            "--cluster-node",
            "a",
            "--designated-successor",
            "--store-dir",
            "/tmp/o"
        ])
        .unwrap_err()
        .contains("follower"));
        assert!(parse(&["--cluster-role", "king"])
            .unwrap_err()
            .contains("primary or follower"));
    }

    #[test]
    fn bad_input_is_rejected_with_context() {
        assert!(parse(&["--port"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--port", "abc"]).unwrap_err().contains("--port"));
        assert!(parse(&["--threshold", "1.5"])
            .unwrap_err()
            .contains("threshold"));
        assert!(parse(&["--threshold", "NaN"])
            .unwrap_err()
            .contains("threshold"));
        assert!(parse(&["--model", "nope"]).unwrap_err().contains("nope"));
        assert!(parse(&["--drift-threshold", "-1"])
            .unwrap_err()
            .contains("drift-threshold"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("--help"));
        assert!(parse(&["--help"]).unwrap_err().contains("USAGE"));
    }
}
