//! Graceful-shutdown plumbing: a shared flag the accept loop, connection
//! workers and solver pool all poll, settable from a POSIX signal handler
//! (SIGTERM/SIGINT), the `POST /shutdown` endpoint, or tests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Set by the signal handler. Process-global because signal handlers
/// cannot carry state; only ever written with a plain atomic store, which
/// is async-signal-safe.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// A cooperative shutdown token.
///
/// `requested()` turns true once [`Shutdown::request`] is called or a
/// registered signal arrives; it never turns back. Every long-lived loop
/// in the daemon polls it between units of work, so shutdown drains
/// in-flight requests instead of dropping them. Loops that *block* on an
/// event source (the reactor shards parked in `epoll_wait`) register a
/// waker so `request()` interrupts the wait instead of riding on the next
/// poll tick; signal-delivered shutdown still relies on the poll backstop,
/// since a signal handler cannot safely walk the waker list.
#[derive(Default)]
pub struct Shutdown {
    flag: AtomicBool,
    wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for Shutdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shutdown")
            .field("requested", &self.requested())
            .finish_non_exhaustive()
    }
}

impl Shutdown {
    /// A fresh token (shared via `Arc`).
    pub fn new() -> Arc<Shutdown> {
        Arc::new(Shutdown::default())
    }

    /// Requests shutdown. Idempotent, callable from any thread. Invokes
    /// every registered waker so blocked waiters notice immediately.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
        for waker in self.wakers.lock().expect("waker list lock").iter() {
            waker();
        }
    }

    /// Registers a waker invoked on every [`Shutdown::request`] (and
    /// immediately, when shutdown was already requested — the registrant
    /// must not miss a wake-up that happened first). Wakers must be cheap
    /// and infallible; ringing an eventfd is the intended shape.
    pub fn on_request(&self, waker: impl Fn() + Send + Sync + 'static) {
        if self.requested() {
            waker();
        }
        self.wakers
            .lock()
            .expect("waker list lock")
            .push(Box::new(waker));
    }

    /// True once shutdown has been requested (locally or by signal).
    pub fn requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }
}

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Registers `on_signal` for SIGINT and SIGTERM so ctrl-c and service
/// managers trigger a graceful drain. Uses the C library's `signal`
/// directly (std exposes no handler API and the workspace takes no
/// dependencies); glibc gives BSD semantics — the handler persists and
/// interrupted accepts restart.
///
/// No-op on non-unix targets, where only `POST /shutdown` stops the
/// daemon cleanly.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        type Handler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: Handler) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Real signal delivery is covered in `tests/signal.rs`, a separate
    // process: raising SIGTERM here would flip the process-global flag
    // under every other test in this binary.

    #[test]
    fn wakers_fire_on_request_and_on_late_registration() {
        use std::sync::atomic::AtomicUsize;
        let s = Shutdown::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        s.on_request(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        s.request();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registering after the fact must not miss the wake-up.
        let f = Arc::clone(&fired);
        s.on_request(move || {
            f.fetch_add(10, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn request_is_sticky_and_shared() {
        let s = Shutdown::new();
        assert!(!s.requested());
        let clone = Arc::clone(&s);
        clone.request();
        assert!(s.requested());
        s.request();
        assert!(s.requested());
    }
}
