//! Micro-batching for layered-queuing misses.
//!
//! Layered queuing solves are the daemon's only expensive predictions
//! (§8.5: seconds-scale against the historical model's microseconds), so
//! cache misses are not solved on connection workers. They become [`Job`]s
//! on a bounded [`JobQueue`]; a small pool of solver threads drains jobs
//! in batches, solving each against a thread-local [`AmvaWorkspace`] pool
//! (buffers are reused allocation-free, but warm-start state is dropped
//! between jobs so every memoized entry is a pure function of its inputs
//! — cluster replicas rely on that for byte-identical answers), and
//! memoizes every result into the shared [`PredictionCache`].

use crate::shutdown::Shutdown;
use perfpred_core::faults::{self, FaultSite};
use perfpred_core::metrics::names;
use perfpred_core::{metrics, PredictError, Prediction, PredictionCache, ServerArch, Workload};
use perfpred_lqns::{AmvaWorkspace, LqnPredictor};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued layered-queuing solve.
pub struct Job {
    /// Target architecture.
    pub server: ServerArch,
    /// The workload *as received*; the solver quantizes through the cache
    /// so lookup and solve agree.
    pub workload: Workload,
    /// Where the waiting connection worker receives the result.
    pub reply: mpsc::Sender<Result<Prediction, PredictError>>,
    /// When the requester stops caring. A job whose deadline has passed
    /// by the time a solver picks it up is shed unsolved — the worker has
    /// already fallen back or answered 504, so solving would only burn a
    /// solver slot that queued-behind jobs still in budget are waiting on.
    pub deadline: Option<Instant>,
}

/// A bounded MPMC queue of solver jobs.
pub struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` outstanding jobs.
    pub fn new(capacity: usize) -> Arc<JobQueue> {
        Arc::new(JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Enqueues a job; `Err(job)` hands it back when the queue is full
    /// (the router answers 503 — solver overload must shed, not buffer
    /// unboundedly).
    pub fn push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.jobs.lock().expect("job queue lock");
        if jobs.len() >= self.capacity {
            metrics::counter("serve.solver.overflow").incr();
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks up to `wait` for a first job, then drains up to `max` —
    /// the micro-batch. Returns an empty batch on timeout.
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<Job> {
        let jobs = self.jobs.lock().expect("job queue lock");
        let (mut jobs, _) = self
            .available
            .wait_timeout_while(jobs, wait, |j| j.is_empty())
            .expect("job queue lock");
        let take = jobs.len().min(max.max(1));
        jobs.drain(..take).collect()
    }

    /// Outstanding jobs.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("job queue lock").len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One solver thread's main loop.
///
/// Runs until `shutdown` is requested *and* the queue is drained: workers
/// stop enqueueing once shutdown begins (the router answers misses inline
/// then), so draining first means no accepted request is ever dropped.
pub fn solver_loop(
    queue: &JobQueue,
    cache: &PredictionCache<LqnPredictor>,
    batch_max: usize,
    shutdown: &Shutdown,
) {
    let mut pool: Vec<AmvaWorkspace> = Vec::new();
    loop {
        let batch = queue.pop_batch(batch_max, Duration::from_millis(20));
        if batch.is_empty() {
            if shutdown.requested() {
                return;
            }
            continue;
        }
        metrics::histogram("serve.batch_size").record(batch.len() as f64);
        for job in batch {
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                metrics::counter(names::SERVE_DEADLINE_EXPIRED_TOTAL).incr();
                let _ = job.reply.send(Err(PredictError::DeadlineExpired(
                    "shed before solving: queue wait exceeded the request budget".into(),
                )));
                continue;
            }
            // Chaos harness: stall the solver the way a CPU-starved or
            // page-faulting host would, so deadline shedding and degraded
            // fallback get exercised under test.
            if let Some(delay) = faults::delay(FaultSite::SolverDelay) {
                metrics::counter("serve.faults.solver_delay").incr();
                std::thread::sleep(delay);
            }
            let result = solve_one(cache, &job, &mut pool);
            // A dropped receiver just means the client went away.
            let _ = job.reply.send(result);
        }
    }
}

/// Solves one job through the cache: re-peek (another solver may have
/// answered the same quantized key while this job sat queued), solve with
/// the warm pool on a real miss, memoize.
fn solve_one(
    cache: &PredictionCache<LqnPredictor>,
    job: &Job,
    pool: &mut Vec<AmvaWorkspace>,
) -> Result<Prediction, PredictError> {
    if let Some(found) = cache.peek(&job.server, &job.workload) {
        return found;
    }
    let solved = cache.quantized(&job.workload);
    let started = std::time::Instant::now();
    // Reuse the pool's buffers but drop its warm-start state: a memoized
    // entry must be a pure function of (server, workload, model), or
    // replicas serving the same model would cache answers that differ in
    // the last bits depending on what each node happened to solve before.
    for ws in pool.iter_mut() {
        ws.invalidate();
    }
    let result = cache.inner().predict_with_pool(&job.server, &solved, pool);
    metrics::histogram("serve.solve_ms").record(started.elapsed().as_secs_f64() * 1e3);
    cache.insert(&job.server, &job.workload, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_core::CacheOptions;
    use perfpred_core::PerformanceModel;
    use perfpred_lqns::trade::TradeLqnConfig;

    fn queue_job(
        server: &ServerArch,
        clients: u32,
    ) -> (Job, mpsc::Receiver<Result<Prediction, PredictError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                server: server.clone(),
                workload: Workload::typical(clients),
                reply: tx,
                deadline: None,
            },
            rx,
        )
    }

    #[test]
    fn queue_bounds_and_batches() {
        let q = JobQueue::new(2);
        let server = ServerArch::app_serv_f();
        let (a, _ra) = queue_job(&server, 10);
        let (b, _rb) = queue_job(&server, 20);
        let (c, _rc) = queue_job(&server, 30);
        assert!(q.push(a).is_ok());
        assert!(q.push(b).is_ok());
        assert!(q.push(c).is_err(), "third job must overflow");
        assert_eq!(q.len(), 2);
        let batch = q.pop_batch(8, Duration::from_millis(1));
        assert_eq!(batch.len(), 2);
        assert!(q.is_empty());
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn expired_jobs_are_shed_unsolved_and_in_budget_jobs_still_answer() {
        let q = JobQueue::new(16);
        let cache = PredictionCache::with_options(
            LqnPredictor::new(TradeLqnConfig::paper_table2()),
            CacheOptions::default(),
        );
        let server = ServerArch::app_serv_f();

        let (mut expired, rx_expired) = queue_job(&server, 150);
        expired.deadline = Some(Instant::now() - Duration::from_millis(5));
        let (mut live, rx_live) = queue_job(&server, 250);
        live.deadline = Some(Instant::now() + Duration::from_secs(30));
        assert!(q.push(expired).is_ok());
        assert!(q.push(live).is_ok());

        let shutdown = Shutdown::new();
        shutdown.request();
        solver_loop(&q, &cache, 8, &shutdown);

        match rx_expired.try_recv().expect("shed reply delivered") {
            Err(PredictError::DeadlineExpired(_)) => {}
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert!(rx_live.try_recv().expect("live reply delivered").is_ok());
        // The shed job must not have been solved into the cache.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn solver_drains_queue_then_exits_on_shutdown() {
        let q = JobQueue::new(16);
        let cache = PredictionCache::with_options(
            LqnPredictor::new(TradeLqnConfig::paper_table2()),
            CacheOptions::default(),
        );
        let server = ServerArch::app_serv_f();
        let mut receivers = Vec::new();
        for clients in [100u32, 200, 300, 100] {
            let (job, rx) = queue_job(&server, clients);
            assert!(q.push(job).is_ok());
            receivers.push((clients, rx));
        }
        let shutdown = Shutdown::new();
        shutdown.request(); // drain mode: solve what is queued, then exit
        solver_loop(&q, &cache, 3, &shutdown);
        assert!(q.is_empty());
        let mut first_100 = None;
        for (clients, rx) in receivers {
            let got = rx.try_recv().expect("reply delivered").unwrap();
            // Warm-started solves agree with fresh solves to solver
            // tolerance, not bit-for-bit (bit-identity is the *cache's*
            // contract, exercised below on the duplicate key).
            let direct = cache
                .inner()
                .predict(&server, &Workload::typical(clients))
                .unwrap();
            let rel = (got.mrt_ms - direct.mrt_ms).abs() / direct.mrt_ms;
            assert!(
                rel < 1e-4,
                "clients={clients}: {} vs {}",
                got.mrt_ms,
                direct.mrt_ms
            );
            if clients == 100 {
                // Both 100-client jobs must answer the same memoized bits.
                if let Some(prev) = first_100.replace(got.mrt_ms) {
                    assert_eq!(f64::to_bits(prev), got.mrt_ms.to_bits());
                }
            }
        }
        // 3 distinct keys solved; the duplicate 100-client job re-peeked.
        assert_eq!(cache.len(), 3);
    }
}
