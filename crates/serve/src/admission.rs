//! Per-request admission control — §9's runtime rejection rule applied at
//! the serving boundary.
//!
//! The resource manager's runtime model rejects clients whenever a
//! populated class's response time comes within `threshold` of its SLA
//! goal ([`perfpred_resman::runtime`]); this controller applies the same
//! comparison to the *predicted* response times of an incoming `/predict`
//! request, so a caller asking "may I place this workload here?" is told
//! no (503) before the server ever misses a goal.
//!
//! The threshold is hot-reloadable: `POST /admin/threshold` (driven by
//! the `perfpred-ctl` control plane) swaps it atomically under live
//! traffic, so a fleet can be retuned without a restart. The value lives
//! as f64 bits in an [`AtomicU64`] shared by every clone of the
//! controller — a request in flight sees either the old or the new
//! threshold, never a torn value.

use perfpred_core::{metrics, Prediction, Workload};
use perfpred_resman::RuntimeOptions;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The controller's answer for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every populated class with a goal clears `goal × (1 − threshold)`.
    Admit,
    /// The first class that failed the margin (workloads without goals are
    /// always admitted).
    Reject {
        /// Service-class name that tripped the rule.
        class: String,
        /// Its predicted mean response time, ms (NaN counts as a miss,
        /// exactly as in the runtime model).
        predicted_mrt_ms: f64,
        /// Its SLA goal, ms.
        goal_ms: f64,
    },
}

impl Verdict {
    /// True for [`Verdict::Admit`].
    pub fn admitted(&self) -> bool {
        matches!(self, Verdict::Admit)
    }
}

/// Admission controller sharing [`RuntimeOptions`] with the resource
/// manager's runtime evaluation. Clones share one threshold cell, so a
/// [`AdmissionController::set_threshold`] on any clone retunes them all.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    threshold_bits: Arc<AtomicU64>,
}

impl AdmissionController {
    /// Builds a controller, validating the threshold (NaN and values
    /// outside `[0, 1)` are rejected by [`RuntimeOptions::validate`]).
    pub fn new(opts: RuntimeOptions) -> Result<AdmissionController, perfpred_core::PredictError> {
        opts.validate()?;
        Ok(AdmissionController {
            threshold_bits: Arc::new(AtomicU64::new(opts.threshold.to_bits())),
        })
    }

    /// The current (validated) rejection threshold.
    pub fn threshold(&self) -> f64 {
        f64::from_bits(self.threshold_bits.load(Ordering::Relaxed))
    }

    /// Atomically swaps the threshold under live traffic. The candidate
    /// goes through the same [`RuntimeOptions`] validation as at build
    /// time, so an invalid value leaves the running threshold untouched.
    pub fn set_threshold(&self, threshold: f64) -> Result<(), perfpred_core::PredictError> {
        let opts = RuntimeOptions::with_threshold(threshold)?;
        self.threshold_bits
            .store(opts.threshold.to_bits(), Ordering::Relaxed);
        Ok(())
    }

    /// Judges one prediction against the workload's SLA goals.
    ///
    /// Mirrors `within_threshold` in the runtime model: empty workloads
    /// and classes without goals are admitted; a class violates when its
    /// predicted mean response time is NaN or exceeds
    /// `goal × (1 − threshold)`.
    pub fn judge(&self, workload: &Workload, prediction: &Prediction) -> Verdict {
        let threshold = self.threshold();
        for (i, load) in workload.classes.iter().enumerate() {
            if load.clients == 0 {
                continue;
            }
            let Some(goal) = load.class.rt_goal_ms else {
                continue;
            };
            let mrt = prediction
                .per_class_mrt_ms
                .get(i)
                .copied()
                .unwrap_or(f64::NAN);
            if mrt.is_nan() || mrt > goal * (1.0 - threshold) {
                metrics::counter("serve.admission.rejected").incr();
                return Verdict::Reject {
                    class: load.class.name.clone(),
                    predicted_mrt_ms: mrt,
                    goal_ms: goal,
                };
            }
        }
        metrics::counter("serve.admission.admitted").incr();
        Verdict::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_core::workload::{ClassLoad, RequestType, ServiceClass};

    fn workload(goal_ms: Option<f64>, clients: u32) -> Workload {
        Workload {
            classes: vec![ClassLoad {
                class: ServiceClass {
                    name: "browse".into(),
                    request_type: RequestType::Browse,
                    think_time_ms: 7_000.0,
                    rt_goal_ms: goal_ms,
                },
                clients,
            }],
        }
    }

    fn prediction(mrt_ms: f64) -> Prediction {
        Prediction {
            mrt_ms,
            per_class_mrt_ms: vec![mrt_ms],
            throughput_rps: 1.0,
            utilization: None,
            saturated: false,
        }
    }

    #[test]
    fn admits_with_margin_and_rejects_inside_threshold() {
        let c = AdmissionController::new(RuntimeOptions::with_threshold(0.05).unwrap()).unwrap();
        // goal 300 ms, threshold 5 % → admit up to 285 ms.
        assert!(c
            .judge(&workload(Some(300.0), 10), &prediction(284.0))
            .admitted());
        assert!(c
            .judge(&workload(Some(300.0), 10), &prediction(285.0))
            .admitted());
        let v = c.judge(&workload(Some(300.0), 10), &prediction(286.0));
        assert_eq!(
            v,
            Verdict::Reject {
                class: "browse".into(),
                predicted_mrt_ms: 286.0,
                goal_ms: 300.0
            }
        );
    }

    #[test]
    fn nan_predictions_and_missing_classes_reject() {
        let c = AdmissionController::new(RuntimeOptions::default()).unwrap();
        assert!(!c
            .judge(&workload(Some(300.0), 10), &prediction(f64::NAN))
            .admitted());
        // Prediction with no per-class entry for a populated goal class.
        let mut p = prediction(10.0);
        p.per_class_mrt_ms.clear();
        assert!(!c.judge(&workload(Some(300.0), 10), &p).admitted());
    }

    #[test]
    fn goalless_and_empty_classes_always_admit() {
        let c = AdmissionController::new(RuntimeOptions::default()).unwrap();
        assert!(c.judge(&workload(None, 10), &prediction(1e9)).admitted());
        assert!(c
            .judge(&workload(Some(1.0), 0), &prediction(1e9))
            .admitted());
    }

    #[test]
    fn invalid_thresholds_cannot_build_a_controller() {
        for bad in [f64::NAN, -0.1, 1.0, 2.0] {
            let opts = RuntimeOptions {
                threshold: bad,
                ..Default::default()
            };
            assert!(AdmissionController::new(opts).is_err());
        }
    }

    #[test]
    fn hot_reload_is_shared_across_clones_and_validated() {
        let c = AdmissionController::new(RuntimeOptions::with_threshold(0.05).unwrap()).unwrap();
        let clone = c.clone();
        // 286 ms vs goal 300 rejects at 5 % ...
        assert!(!c
            .judge(&workload(Some(300.0), 10), &prediction(286.0))
            .admitted());
        // ... admits after loosening to 0 % through the *clone* ...
        clone.set_threshold(0.0).unwrap();
        assert_eq!(c.threshold(), 0.0);
        assert!(c
            .judge(&workload(Some(300.0), 10), &prediction(286.0))
            .admitted());
        // ... and an invalid candidate leaves the running value alone.
        for bad in [f64::NAN, -0.1, 1.0] {
            assert!(clone.set_threshold(bad).is_err());
        }
        assert_eq!(c.threshold(), 0.0);
    }
}
