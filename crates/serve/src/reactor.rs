//! The event-driven serving core: N per-core reactor shards, each a
//! nonblocking epoll loop multiplexing thousands of keep-alive
//! connections through the [`crate::conn`] state machine.
//!
//! ## Why a reactor
//!
//! The threaded core ([`crate::server`]) spends one OS thread per
//! in-flight connection: at 10k parked keep-alive sockets that is 10k
//! threads' worth of stacks and context switches for work that is almost
//! entirely *waiting*. A shard replaces the thread-per-connection model
//! with one thread per core parked in `epoll_wait`, so a connection costs
//! one slab slot and one fd while idle — buffers detach to a per-shard
//! pool — and the steady-state request path (read → parse → route →
//! serialize → write) performs zero heap allocations (`tests/zeroalloc.rs`
//! asserts this with a counting allocator).
//!
//! ## Topology
//!
//! ```text
//!   listener (shared fd, EPOLLEXCLUSIVE: kernel wakes ONE shard per conn)
//!      │
//!   ┌──┴────────┬────────────┐
//! shard 0     shard 1      shard N     epoll loops; conns pinned to the
//!   │            │            │        shard that accepted them
//!   │  inline fast path: GET endpoints, cache-hit /predict — answered
//!   │  on the shard, no handoff, no epoll_ctl, no allocation
//!   │            │            │
//!   └── offload ─┴── offload ─┘        /observe, /plan, solver-bound
//!             │                        /predict (may block seconds)
//!      dispatcher pool ── App::handle_at ──┐
//!             │                            │
//!       solver pool (micro-batch,          │
//!       unchanged from the threaded core)  │
//!             │                            │
//!      completion → shard's eventfd doorbell; the shard writes the
//!      response on the connection's pooled buffers, in request order
//! ```
//!
//! Admission control, deadline propagation (anchored at *arrival*, so
//! dispatch queueing consumes the budget), the degraded ladder and fault
//! injection all live in [`crate::router::App`] and are shared verbatim
//! with the threaded core — `tests/reactor.rs` holds the two cores
//! byte-identical over a differential request trace.

use crate::batch::solver_loop;
use crate::conn::{BufPool, Conn, State, Step};
use crate::http::{Request, Response};
use crate::router::App;
use crate::shutdown::Shutdown;
use perfpred_core::faults::{self, FaultSite};
use perfpred_core::metrics;
use perfpred_core::sys;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Epoll cookie for the shared listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll cookie for the shard's completion/shutdown eventfd doorbell.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Upper bound on one `epoll_wait` sleep: the backstop cadence for
/// signal-delivered shutdown (a signal handler cannot ring the doorbell)
/// and for the stall sweep.
const EPOLL_TIMEOUT_MS: i32 = 50;
/// Ready events drained per `epoll_wait` call.
const EVENTS_PER_WAIT: usize = 256;
/// Cadence of the slow-loris stall sweep.
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);
/// Extra connections (beyond `max_conns`) that may briefly occupy slab
/// slots while a shed 503 flushes; past the slack the socket just drops.
const SHED_SLACK: usize = 256;
/// Default eviction threshold for connections stalled mid-request,
/// mid-response or mid-drain — the reactor's slow-loris defence,
/// matching the threaded core's ~100 × 100 ms mid-request stall budget.
/// Idle keep-alive connections are never evicted.
pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(10);
/// Default cap on concurrently open connections across all shards,
/// comfortably under a 20k fd ulimit with headroom for listener/epoll/
/// eventfd/store descriptors.
pub const DEFAULT_MAX_CONNS: usize = 16_000;

/// A dispatched request's answer, travelling dispatcher → shard. Carries
/// the scratch [`Request`] back home so the connection's buffer set stays
/// allocation-free across offloaded requests.
struct Completion {
    token: u64,
    req: Request,
    response: Response,
}

/// A shard's cross-thread mailbox: completions land here and the eventfd
/// doorbell interrupts the shard's `epoll_wait`. Also rung (empty) by the
/// shutdown waker. The fd closes when the last `Arc` drops — the shutdown
/// waker and dispatcher pool hold clones, so a rung doorbell can never be
/// a reused fd.
struct ShardHandle {
    wake_fd: i32,
    completions: Mutex<Vec<Completion>>,
}

impl ShardHandle {
    fn new() -> io::Result<ShardHandle> {
        Ok(ShardHandle {
            wake_fd: sys::eventfd_create()?,
            completions: Mutex::new(Vec::new()),
        })
    }

    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion mailbox lock")
            .push(completion);
        let _ = sys::eventfd_signal(self.wake_fd);
    }

    fn wake(&self) {
        let _ = sys::eventfd_signal(self.wake_fd);
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        sys::close_fd(self.wake_fd);
    }
}

/// One offloaded request, bound for the dispatcher pool.
struct DispatchJob {
    shard: usize,
    token: u64,
    req: Request,
    arrival: Instant,
}

/// Bounded queue feeding the dispatcher pool; overflow answers 503 on the
/// shard, mirroring the threaded core's bounded accept queue.
struct DispatchQueue {
    jobs: Mutex<VecDeque<DispatchJob>>,
    available: Condvar,
    capacity: usize,
    /// Mirror of the live queue length, shared with `App.dispatch_depth`
    /// so `/healthz` reads it without taking the queue lock.
    depth: Arc<AtomicUsize>,
}

impl DispatchQueue {
    fn new(capacity: usize, depth: Arc<AtomicUsize>) -> DispatchQueue {
        DispatchQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            depth,
        }
    }

    /// `Err(job)` hands the request back on overflow.
    fn push(&self, job: DispatchJob) -> Result<(), DispatchJob> {
        let mut jobs = self.jobs.lock().expect("dispatch queue lock");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        self.depth.store(jobs.len(), Ordering::Relaxed);
        drop(jobs);
        self.available.notify_one();
        Ok(())
    }

    fn pop(&self, wait: Duration) -> Option<DispatchJob> {
        let jobs = self.jobs.lock().expect("dispatch queue lock");
        let (mut jobs, _) = self
            .available
            .wait_timeout_while(jobs, wait, |j| j.is_empty())
            .expect("dispatch queue lock");
        let job = jobs.pop_front();
        self.depth.store(jobs.len(), Ordering::Relaxed);
        job
    }
}

/// A bound-and-listening event-driven daemon, one `run()` away from
/// serving — the reactor counterpart of [`crate::server::Server`], built
/// around the same [`App`] so the two cores answer byte-identically.
pub struct ReactorServer {
    listener: TcpListener,
    addr: SocketAddr,
    app: Arc<App>,
    shards: usize,
    dispatchers: usize,
    solvers: usize,
    batch_max: usize,
    queue_depth: usize,
    stall_timeout: Duration,
    max_conns: usize,
}

impl ReactorServer {
    /// Binds `host:port` (port 0 = ephemeral) around an assembled [`App`].
    /// `dispatchers` sizes the blocking-work pool (the threaded core's
    /// `workers` knob); `shards` sizes the epoll reactor itself.
    #[allow(clippy::too_many_arguments)]
    pub fn bind(
        host: &str,
        port: u16,
        app: App,
        shards: usize,
        dispatchers: usize,
        solvers: usize,
        batch_max: usize,
        queue_depth: usize,
    ) -> io::Result<ReactorServer> {
        let listener = TcpListener::bind((host, port))?;
        let addr = listener.local_addr()?;
        // Publish the shard count so /healthz can report the serving
        // topology (0 means the threaded core is running instead).
        app.reactor_shards.store(shards.max(1), Ordering::Relaxed);
        Ok(ReactorServer {
            listener,
            addr,
            app: Arc::new(app),
            shards: shards.max(1),
            dispatchers: dispatchers.max(1),
            solvers: solvers.max(1),
            batch_max: batch_max.max(1),
            queue_depth: queue_depth.max(1),
            stall_timeout: DEFAULT_STALL_TIMEOUT,
            max_conns: DEFAULT_MAX_CONNS,
        })
    }

    /// Overrides the stalled-connection eviction threshold (tests shrink
    /// it to exercise slow-loris eviction without waiting 10 s).
    pub fn set_stall_timeout(&mut self, timeout: Duration) {
        self.stall_timeout = timeout.max(Duration::from_millis(1));
    }

    /// Overrides the global open-connection cap.
    pub fn set_max_conns(&mut self, max_conns: usize) {
        self.max_conns = max_conns.max(1);
    }

    /// The bound address (resolves `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The token that stops this server (shared with the [`App`]).
    pub fn shutdown_handle(&self) -> Arc<Shutdown> {
        Arc::clone(&self.app.shutdown)
    }

    /// Serves until shutdown is requested, then drains in dependency
    /// order: shards stop accepting, close idle connections and finish
    /// in-flight responses; the dispatcher pool exits once no shard can
    /// enqueue more work; the solver pool exits once no dispatcher can;
    /// and the observation log's tail syncs last.
    pub fn run(self) -> io::Result<()> {
        let shutdown = self.shutdown_handle();
        self.listener.set_nonblocking(true)?;

        // Solver pool — identical to the threaded core, private done
        // token so solvers outlive everything that can enqueue jobs.
        let solvers_done = Shutdown::new();
        let mut solver_handles = Vec::with_capacity(self.solvers);
        for i in 0..self.solvers {
            let queue = Arc::clone(&self.app.queue);
            let app = Arc::clone(&self.app);
            let done = Arc::clone(&solvers_done);
            let batch_max = self.batch_max;
            solver_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-solver-{i}"))
                    .spawn(move || solver_loop(&queue, &app.host.lqns, batch_max, &done))
                    .expect("spawn solver thread"),
            );
        }

        // Dispatcher pool for blocking work, with its own drain token.
        let dispatch = Arc::new(DispatchQueue::new(
            self.queue_depth,
            Arc::clone(&self.app.dispatch_depth),
        ));
        let handles: Vec<Arc<ShardHandle>> = (0..self.shards)
            .map(|_| ShardHandle::new().map(Arc::new))
            .collect::<io::Result<_>>()?;
        let dispatchers_done = Shutdown::new();
        let mut dispatcher_handles = Vec::with_capacity(self.dispatchers);
        for i in 0..self.dispatchers {
            let queue = Arc::clone(&dispatch);
            let app = Arc::clone(&self.app);
            let shard_handles = handles.clone();
            let done = Arc::clone(&dispatchers_done);
            dispatcher_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(&queue, &app, &shard_handles, &done))
                    .expect("spawn dispatcher thread"),
            );
        }

        // `request()` rings every shard's doorbell so parked epoll waits
        // notice immediately; the waker's Arcs keep the fds alive.
        {
            let handles = handles.clone();
            shutdown.on_request(move || {
                for handle in &handles {
                    handle.wake();
                }
            });
        }

        let open_conns = Arc::new(AtomicUsize::new(0));
        let mut shard_threads = Vec::with_capacity(self.shards);
        for (id, handle) in handles.iter().enumerate() {
            let shard = Shard::new(
                id,
                self.listener.try_clone()?,
                Arc::clone(handle),
                Arc::clone(&self.app),
                Arc::clone(&shutdown),
                Arc::clone(&dispatch),
                Arc::clone(&open_conns),
                self.max_conns,
                self.stall_timeout,
                self.shards,
            )?;
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-shard-{id}"))
                    .spawn(move || shard.run())
                    .expect("spawn shard thread"),
            );
        }

        for t in shard_threads {
            let _ = t.join();
        }
        dispatchers_done.request();
        for t in dispatcher_handles {
            let _ = t.join();
        }
        solvers_done.request();
        for t in solver_handles {
            let _ = t.join();
        }
        self.app
            .store
            .sync()
            .map_err(|e| io::Error::other(format!("observation log sync: {e}")))?;
        Ok(())
    }
}

/// Pops offloaded requests and runs the blocking route handlers, posting
/// each answer back to the owning shard's mailbox.
fn dispatcher_loop(queue: &DispatchQueue, app: &App, shards: &[Arc<ShardHandle>], done: &Shutdown) {
    loop {
        match queue.pop(Duration::from_millis(20)) {
            Some(job) => {
                let response = app.handle_at(&job.req, job.arrival);
                shards[job.shard].complete(Completion {
                    token: job.token,
                    req: job.req,
                    response,
                });
            }
            None => {
                if done.requested() {
                    return;
                }
            }
        }
    }
}

/// A slab-resident connection plus the generation stamped into its epoll
/// cookie; stale events and completions for a recycled slot fail the
/// generation check and are discarded.
struct Entry {
    conn: Conn,
    gen: u32,
}

/// What handling a freshly parsed request did to the connection.
enum ReqOutcome {
    /// Answered on the shard; the response is queued and flushing.
    Inline,
    /// Handed to the dispatcher pool; the connection parks in `Dispatch`
    /// with epoll interest zero until the completion doorbell rings.
    Offloaded,
    /// The connection must close (fault injection).
    Closed,
}

/// One reactor shard: an epoll fd, a connection slab, a buffer pool, and
/// the loop that multiplexes them.
struct Shard {
    id: usize,
    epfd: i32,
    listener: TcpListener,
    listener_fd: i32,
    handle: Arc<ShardHandle>,
    app: Arc<App>,
    shutdown: Arc<Shutdown>,
    dispatch: Arc<DispatchQueue>,
    pool: BufPool,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    active: usize,
    gen_counter: u32,
    open_conns: Arc<AtomicUsize>,
    max_conns: usize,
    stall_timeout: Duration,
    accepted: Arc<metrics::ShardedCounter>,
    comp_scratch: Vec<Completion>,
    draining: bool,
}

impl Drop for Shard {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

impl Shard {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: usize,
        listener: TcpListener,
        handle: Arc<ShardHandle>,
        app: Arc<App>,
        shutdown: Arc<Shutdown>,
        dispatch: Arc<DispatchQueue>,
        open_conns: Arc<AtomicUsize>,
        max_conns: usize,
        stall_timeout: Duration,
        nshards: usize,
    ) -> io::Result<Shard> {
        let epfd = sys::epoll_create()?;
        let listener_fd = listener.as_raw_fd();
        // Every shard watches the same listening socket; EPOLLEXCLUSIVE
        // (Linux ≥ 4.5) makes the kernel wake exactly one shard per
        // pending connection instead of thundering the whole herd. Older
        // kernels reject the flag — fall back to plain (racy but correct)
        // shared watching.
        if sys::epoll_add(
            epfd,
            listener_fd,
            sys::EPOLLIN | sys::EPOLLEXCLUSIVE,
            LISTENER_TOKEN,
        )
        .is_err()
        {
            if let Err(e) = sys::epoll_add(epfd, listener_fd, sys::EPOLLIN, LISTENER_TOKEN) {
                sys::close_fd(epfd);
                return Err(e);
            }
        }
        if let Err(e) = sys::epoll_add(epfd, handle.wake_fd, sys::EPOLLIN, WAKE_TOKEN) {
            sys::close_fd(epfd);
            return Err(e);
        }
        Ok(Shard {
            id,
            epfd,
            listener,
            listener_fd,
            handle,
            app,
            shutdown,
            dispatch,
            pool: BufPool::new(1024),
            slab: Vec::new(),
            free: Vec::new(),
            active: 0,
            gen_counter: 1,
            open_conns,
            max_conns,
            stall_timeout,
            // One padded lane per shard: accepts count contention-free
            // and aggregate into a single `serve.accepted` on scrape.
            accepted: metrics::sharded_counter("serve.accepted", nshards),
            comp_scratch: Vec::new(),
            draining: false,
        })
    }

    fn run(mut self) {
        let mut events = [sys::EpollEvent::default(); EVENTS_PER_WAIT];
        let mut last_sweep = Instant::now();
        loop {
            let n = match sys::epoll_wait_events(self.epfd, &mut events, EPOLL_TIMEOUT_MS) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(_) => return,
            };
            let now = Instant::now();
            for event in &events[..n] {
                let ev = *event;
                // Braces force copies out of the (packed) event record.
                let flags = { ev.events };
                let token = { ev.data };
                match token {
                    LISTENER_TOKEN => self.accept_burst(now),
                    WAKE_TOKEN => {
                        sys::eventfd_drain(self.handle.wake_fd);
                        self.apply_completions(now);
                    }
                    token => self.on_conn_event(token, flags, now),
                }
            }
            let now = Instant::now();
            if now.duration_since(last_sweep) >= SWEEP_INTERVAL {
                self.sweep(now);
                last_sweep = now;
            }
            if self.shutdown.requested() {
                if !self.draining {
                    self.begin_drain();
                }
                // The doorbell is level-triggered so no completion can be
                // missed; draining here just shortens the tail.
                self.apply_completions(now);
                if self.active == 0 {
                    return;
                }
            }
        }
    }

    /// Accepts every pending connection (level-triggered: the kernel
    /// re-reports the listener until the backlog is empty).
    fn accept_burst(&mut self, now: Instant) {
        if self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.accepted.lane(self.id).incr();
                    // Chaos harness: drop the connection on the floor the
                    // way a dying LB would, before any bytes move.
                    if faults::fires(FaultSite::AcceptReset) {
                        metrics::counter("serve.faults.accept_reset").incr();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    if self.open_conns.load(Ordering::Relaxed) >= self.max_conns {
                        metrics::counter("serve.accept_overflow").incr();
                        self.shed(stream, now);
                        continue;
                    }
                    let conn = Conn::new(stream, now);
                    self.register(conn, sys::EPOLLIN | sys::EPOLLRDHUP);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Installs a connection into the slab and epoll with `interest`.
    fn register(&mut self, mut conn: Conn, interest: u32) -> Option<usize> {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let gen = self.gen_counter;
        self.gen_counter = self.gen_counter.wrapping_add(1);
        let token = ((gen as u64) << 32) | slot as u64;
        conn.interest = interest;
        if sys::epoll_add(self.epfd, conn.stream.as_raw_fd(), interest, token).is_err() {
            self.free.push(slot);
            return None;
        }
        self.slab[slot] = Some(Entry { conn, gen });
        self.active += 1;
        self.open_conns.fetch_add(1, Ordering::Relaxed);
        Some(slot)
    }

    /// Sheds a connection over the cap: best-effort 503 through the same
    /// pooled write path normal responses use, then drain-and-close. If
    /// the 503 doesn't flush in one write, the connection may park in the
    /// slab within a small slack; past the slack it just drops.
    fn shed(&mut self, stream: TcpStream, now: Instant) {
        let mut conn = Conn::new(stream, now);
        let response = Response::error(503, "server is overloaded, retry later");
        conn.queue_response(&response, false, &mut self.pool);
        conn.drain_after_write = true;
        match conn.flush(now) {
            Step::WantWrite => {
                if self.open_conns.load(Ordering::Relaxed) < self.max_conns + SHED_SLACK {
                    self.register(conn, sys::EPOLLOUT | sys::EPOLLRDHUP);
                }
            }
            Step::WantRead => {
                // Response flushed; mid-drain. Park briefly so the peer
                // can read the 503 through a FIN instead of an RST.
                if self.open_conns.load(Ordering::Relaxed) < self.max_conns + SHED_SLACK {
                    self.register(conn, sys::EPOLLIN | sys::EPOLLRDHUP);
                }
            }
            Step::Dispatch | Step::Close => {
                if let Some(bufs) = conn.bufs.take() {
                    self.pool.put(bufs);
                }
            }
        }
    }

    /// Routes one ready event to its connection, discarding stale tokens.
    fn on_conn_event(&mut self, token: u64, flags: u32, now: Instant) {
        let slot = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        let Some(entry) = self.slab.get(slot).and_then(|e| e.as_ref()) else {
            return;
        };
        if entry.gen != gen {
            return;
        }
        let broken = flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
        if broken && entry.conn.state == State::Dispatch {
            // The peer died while its request is in flight; close now.
            // The eventual completion fails the generation check.
            let entry = self.slab[slot].take().expect("checked above");
            self.finish_close(slot, entry);
            return;
        }
        let readable = flags & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 || broken;
        self.drive(slot, readable, now);
    }

    /// Advances one connection as far as it can go without blocking:
    /// fill → parse → handle → serialize → flush, looping across
    /// pipelined requests, then re-arms epoll with the minimal interest
    /// set (no `epoll_ctl` at all when the interest didn't change — the
    /// inline fast path's common case).
    fn drive(&mut self, slot: usize, mut can_read: bool, now: Instant) {
        let Some(mut entry) = self.slab.get_mut(slot).and_then(|e| e.take()) else {
            return;
        };
        loop {
            let step = match entry.conn.state {
                State::Write => entry.conn.flush(now),
                State::Drain => entry.conn.advance(now),
                State::Dispatch => {
                    // Spurious wakeup while awaiting a completion: park
                    // with zero interest (pipelined bytes wait in the
                    // kernel buffer to preserve response order).
                    self.park(slot, entry, 0);
                    return;
                }
                _ => {
                    if can_read {
                        can_read = false;
                        if entry.conn.fill(&mut self.pool, now).is_err() {
                            self.finish_close(slot, entry);
                            return;
                        }
                    }
                    entry.conn.advance(now)
                }
            };
            match step {
                Step::Dispatch => match self.on_request(&mut entry, slot, now) {
                    ReqOutcome::Inline => {}
                    ReqOutcome::Offloaded => {
                        self.park(slot, entry, 0);
                        return;
                    }
                    ReqOutcome::Closed => {
                        self.finish_close(slot, entry);
                        return;
                    }
                },
                Step::WantRead => {
                    entry.conn.release_if_idle(&mut self.pool);
                    self.park(slot, entry, sys::EPOLLIN | sys::EPOLLRDHUP);
                    return;
                }
                Step::WantWrite => {
                    self.park(slot, entry, sys::EPOLLOUT | sys::EPOLLRDHUP);
                    return;
                }
                Step::Close => {
                    self.finish_close(slot, entry);
                    return;
                }
            }
        }
    }

    /// Handles the parsed request sitting in the connection's scratch:
    /// inline on the shard when the route can't block, otherwise offload
    /// to the dispatcher pool.
    fn on_request(&mut self, entry: &mut Entry, slot: usize, now: Instant) -> ReqOutcome {
        // Chaos harness: reset an established connection mid-stream.
        if faults::fires(FaultSite::ConnReset) {
            metrics::counter("serve.faults.conn_reset").incr();
            return ReqOutcome::Closed;
        }
        // The deadline budget anchors here — at arrival — so time spent
        // queued behind the dispatcher pool consumes it, exactly like
        // queue time consumed it on the threaded core's workers.
        let arrival = now;
        let app = Arc::clone(&self.app);
        let bufs = entry
            .conn
            .bufs
            .as_mut()
            .expect("request parsed into scratch");
        match app.try_handle(&bufs.req, arrival) {
            Some(response) => {
                let keep = bufs.req.keep_alive && !self.shutdown.requested();
                entry.conn.queue_response(&response, keep, &mut self.pool);
                ReqOutcome::Inline
            }
            None => {
                let req = std::mem::take(&mut bufs.req);
                let token = ((entry.gen as u64) << 32) | slot as u64;
                match self.dispatch.push(DispatchJob {
                    shard: self.id,
                    token,
                    req,
                    arrival,
                }) {
                    Ok(()) => ReqOutcome::Offloaded,
                    Err(job) => {
                        metrics::counter("serve.dispatch_overflow").incr();
                        entry.conn.bufs.as_mut().expect("still attached").req = job.req;
                        let response = Response::error(503, "server is overloaded, retry later");
                        entry.conn.queue_response(&response, false, &mut self.pool);
                        ReqOutcome::Inline
                    }
                }
            }
        }
    }

    /// Applies every queued completion: the scratch request returns to
    /// its connection's buffers, the response serializes, and the write
    /// drives immediately.
    fn apply_completions(&mut self, now: Instant) {
        let mut comps = std::mem::take(&mut self.comp_scratch);
        {
            let mut mailbox = self
                .handle
                .completions
                .lock()
                .expect("completion mailbox lock");
            std::mem::swap(&mut *mailbox, &mut comps);
        }
        for comp in comps.drain(..) {
            let slot = (comp.token & 0xFFFF_FFFF) as usize;
            let gen = (comp.token >> 32) as u32;
            let Some(mut entry) = self.slab.get_mut(slot).and_then(|e| e.take()) else {
                continue; // connection closed while the request was in flight
            };
            if entry.gen != gen || entry.conn.state != State::Dispatch {
                self.slab[slot] = Some(entry); // someone else's live conn
                continue;
            }
            let keep = comp.req.keep_alive && !self.shutdown.requested();
            if entry.conn.bufs.is_none() {
                entry.conn.bufs = Some(self.pool.get());
            }
            entry.conn.bufs.as_mut().expect("attached above").req = comp.req;
            entry
                .conn
                .queue_response(&comp.response, keep, &mut self.pool);
            self.slab[slot] = Some(entry);
            self.drive(slot, false, now);
        }
        self.comp_scratch = comps; // keep the capacity for next time
    }

    /// Evicts connections stalled mid-request, mid-response or mid-drain
    /// past the stall timeout — the slow-loris defence. Idle keep-alive
    /// connections and dispatched requests (the solver-reply timeout
    /// governs those) are exempt.
    fn sweep(&mut self, now: Instant) {
        for slot in 0..self.slab.len() {
            let Some(entry) = self.slab[slot].as_ref() else {
                continue;
            };
            let mid_stream = match entry.conn.state {
                State::Dispatch => false,
                State::ReadHead => entry.conn.bufs.as_ref().is_some_and(|b| !b.read.is_empty()),
                State::ReadBody | State::Write | State::Drain => true,
            };
            if mid_stream && now.duration_since(entry.conn.last_progress) > self.stall_timeout {
                metrics::counter("serve.stalled_conns").incr();
                let entry = self.slab[slot].take().expect("checked above");
                self.finish_close(slot, entry);
            }
        }
    }

    /// First shutdown tick: stop accepting and close idle connections.
    /// Mid-request connections finish (their responses go out with
    /// `Connection: close`); the stall sweep bounds the tail.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = sys::epoll_del(self.epfd, self.listener_fd);
        for slot in 0..self.slab.len() {
            let idle = self.slab[slot].as_ref().is_some_and(|e| {
                e.conn.state == State::ReadHead
                    && e.conn.bufs.as_ref().is_none_or(|b| b.read.is_empty())
            });
            if idle {
                let entry = self.slab[slot].take().expect("checked above");
                self.finish_close(slot, entry);
            }
        }
    }

    /// Re-inserts a driven connection, updating epoll interest only when
    /// it changed.
    fn park(&mut self, slot: usize, mut entry: Entry, interest: u32) {
        if entry.conn.interest != interest {
            let token = ((entry.gen as u64) << 32) | slot as u64;
            if sys::epoll_mod(self.epfd, entry.conn.stream.as_raw_fd(), interest, token).is_err() {
                self.finish_close(slot, entry);
                return;
            }
            entry.conn.interest = interest;
        }
        self.slab[slot] = Some(entry);
    }

    /// Final close for an already-removed entry: deregister, recycle the
    /// buffers and slot, drop the socket.
    fn finish_close(&mut self, slot: usize, mut entry: Entry) {
        let _ = sys::epoll_del(self.epfd, entry.conn.stream.as_raw_fd());
        if let Some(bufs) = entry.conn.bufs.take() {
            self.pool.put(bufs);
        }
        self.free.push(slot);
        self.active -= 1;
        self.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionController;
    use crate::batch::JobQueue;
    use crate::models::ModelHost;
    use crate::router::App;
    use perfpred_core::CacheOptions;
    use perfpred_resman::RuntimeOptions;
    use std::io::{Read as _, Write as _};

    fn start() -> (SocketAddr, Arc<Shutdown>, std::thread::JoinHandle<()>) {
        let app = App::new(
            ModelHost::paper(&CacheOptions::default()),
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(64),
            Shutdown::new(),
        );
        let server = ReactorServer::bind("127.0.0.1", 0, app, 2, 2, 1, 8, 16).unwrap();
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, shutdown, handle)
    }

    #[test]
    fn serves_inline_and_offloaded_routes_then_drains() {
        let (addr, shutdown, handle) = start();
        // Inline fast path (GET) and an offloaded route (POST /observe)
        // over one keep-alive connection, then a clean drain.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 4096];
        let n = stream.read(&mut buf).unwrap();
        let reply = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("keep-alive"), "{reply}");

        let body = r#"{"server": "AppServS", "clients": 50, "mrt_ms": 120.0}"#;
        let raw = format!(
            "POST /observe HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");

        shutdown.request();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_stops_the_reactor() {
        let (addr, _shutdown, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /shutdown HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        handle.join().unwrap();
    }

    #[test]
    fn oversized_post_gets_a_413_not_a_reset() {
        let (addr, shutdown, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            8 * 1024 * 1024
        );
        stream.write_all(head.as_bytes()).unwrap();
        let _ = stream.write_all(&vec![b'x'; 64 * 1024]);
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
        shutdown.request();
        handle.join().unwrap();
    }
}
