//! Per-connection state machine for the event-driven serving core.
//!
//! Each reactor connection moves through
//! `ReadHead → ReadBody → Dispatch → Write → Drain`, parsing requests
//! *incrementally* out of a pooled read buffer: the nonblocking socket
//! delivers bytes in arbitrary chunks, so [`parse_head`] is re-run over
//! the accumulated buffer until a full head (then body) is present,
//! producing exactly the outcomes `http::read_request` produces on the
//! blocking core — same 413/431 limits, same malformed-framing closes —
//! so the two cores answer byte-identically.
//!
//! Nothing here allocates on the steady-state path: requests parse into
//! a reused [`Request`] scratch (strings cleared, capacity kept),
//! responses serialize into a reused write buffer, and a whole
//! connection's buffers ([`ConnBufs`]) detach back to a per-shard
//! [`BufPool`] while the connection idles between keep-alive requests —
//! ten thousand parked connections hold sockets, not buffers.

use crate::http::{Request, MAX_BODY_BYTES, MAX_HEADERS, MAX_HEAD_BYTES};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Bytes added to the read buffer per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// Upper bound on buffered inbound bytes per connection: one maximal
/// request (head + body) plus a chunk of pipelined follow-on. A client
/// flooding faster than we dispatch keeps the rest in the kernel buffer.
const READ_CAP: usize = MAX_HEAD_BYTES + MAX_BODY_BYTES + READ_CHUNK;
/// Pooled buffers larger than this are shrunk before re-pooling, so one
/// 1 MiB body doesn't pin megabytes in the pool forever.
const MAX_POOLED_CAPACITY: usize = 64 * 1024;
/// Initial capacity for pooled buffers (a typical head + JSON response).
const INITIAL_CAPACITY: usize = 4 * 1024;
/// Bound on bytes drained from a connection being closed with an error
/// response — same budget as the blocking core's `drain_then_close`.
pub const DRAIN_BUDGET_BYTES: usize = 256 * 1024;

/// A parsed head's framing facts, carried from `ReadHead` to `ReadBody`.
#[derive(Debug, Clone, Copy)]
pub struct HeadInfo {
    /// Bytes of request line + headers + terminating empty line.
    pub head_len: usize,
    /// Advertised `Content-Length` (0 when absent).
    pub content_length: usize,
}

impl HeadInfo {
    /// Total framed size of the request: head plus body.
    pub fn total_len(&self) -> usize {
        self.head_len + self.content_length
    }
}

/// What one incremental head-parse attempt produced.
#[derive(Debug)]
pub enum HeadOutcome {
    /// Head complete: method/path/keep-alive are parsed into the scratch
    /// request; the body (if any) still needs `content_length` bytes.
    Complete(HeadInfo),
    /// Not enough bytes yet; keep reading.
    Partial,
    /// Malformed or unsupported framing; close without answering (the
    /// blocking core's `ReadOutcome::Closed`).
    Malformed,
    /// A size limit tripped but framing was intact enough to answer:
    /// write this error (`Connection: close`), then drain and close.
    Reject {
        /// 413 (body too large) or 431 (head too large / too many headers).
        status: u16,
        /// Human-readable reason for the error envelope.
        message: &'static str,
    },
}

/// One complete line (through `\n`) starting at `*pos`, or `None`.
fn next_line<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let rest = &buf[*pos..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    *pos += nl + 1;
    Some(&rest[..=nl])
}

/// Incrementally parses an HTTP/1.1 request head out of `buf`, writing
/// method, path and keep-alive into the reused `req` scratch (body is
/// left alone — the caller copies it once `content_length` bytes are
/// buffered). Re-run from scratch whenever more bytes arrive; heads are
/// capped at 8 KiB so the rescan stays trivially cheap.
///
/// Limit and malformed-framing behaviour mirrors `http::read_request`
/// outcome-for-outcome; `tests/reactor.rs` holds the two byte-identical.
pub fn parse_head(buf: &[u8], req: &mut Request) -> HeadOutcome {
    let mut pos = 0usize;

    // Request line.
    let Some(line) = next_line(buf, &mut pos) else {
        return if buf.len() > MAX_HEAD_BYTES {
            HeadOutcome::Reject {
                status: 431,
                message: "request line too long",
            }
        } else {
            HeadOutcome::Partial
        };
    };
    if line.len() > MAX_HEAD_BYTES {
        return HeadOutcome::Reject {
            status: 431,
            message: "request line too long",
        };
    }
    let text = String::from_utf8_lossy(line);
    let text = text.trim_end();
    let mut parts = text.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HeadOutcome::Malformed;
    };
    if !version.starts_with("HTTP/1.") {
        return HeadOutcome::Malformed;
    }
    req.method.clear();
    req.method.push_str(method);
    req.method.make_ascii_uppercase();
    req.path.clear();
    req.path
        .push_str(target.split('?').next().unwrap_or(target));
    req.keep_alive = true; // HTTP/1.1 default

    // Headers.
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    let mut headers = 0usize;
    loop {
        let Some(hline) = next_line(buf, &mut pos) else {
            // An unterminated header line past the whole head budget can
            // never become legal; answer now instead of buffering on.
            return if buf.len() - pos > MAX_HEAD_BYTES {
                HeadOutcome::Reject {
                    status: 431,
                    message: "header line too long",
                }
            } else {
                HeadOutcome::Partial
            };
        };
        if hline.len() > MAX_HEAD_BYTES {
            return HeadOutcome::Reject {
                status: 431,
                message: "header line too long",
            };
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return HeadOutcome::Reject {
                status: 431,
                message: "request head exceeds 8 KiB",
            };
        }
        let text = String::from_utf8_lossy(hline);
        let text = text.trim_end();
        if text.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return HeadOutcome::Reject {
                status: 431,
                message: "too many header fields",
            };
        }
        let Some((name, value)) = text.split_once(':') else {
            return HeadOutcome::Malformed;
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<u64>() {
                Ok(n) if n as usize <= MAX_BODY_BYTES => content_length = n as usize,
                Ok(_) => {
                    return HeadOutcome::Reject {
                        status: 413,
                        message: "request body exceeds 1 MiB",
                    }
                }
                Err(_) => return HeadOutcome::Malformed,
            }
        } else if name.eq_ignore_ascii_case("connection") {
            req.keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return HeadOutcome::Malformed; // unsupported
        }
    }

    HeadOutcome::Complete(HeadInfo {
        head_len: pos,
        content_length,
    })
}

/// The buffers and scratch one active connection borrows from the pool.
#[derive(Debug, Default)]
pub struct ConnBufs {
    /// Accumulated inbound bytes awaiting parse.
    pub read: Vec<u8>,
    /// Serialized response bytes awaiting flush.
    pub write: Vec<u8>,
    /// The reused parse target (strings cleared, capacity kept).
    pub req: Request,
}

/// A per-shard free list of [`ConnBufs`]. Connections borrow on first
/// inbound byte and return the set once they go idle between requests,
/// so buffer memory scales with *active* connections, not open sockets.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<ConnBufs>,
    cap: usize,
}

impl BufPool {
    /// A pool retaining at most `cap` idle buffer sets.
    pub fn new(cap: usize) -> BufPool {
        BufPool {
            free: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Borrows a buffer set (allocating a fresh one only when the pool is
    /// dry — the amortized steady state pops and pushes).
    pub fn get(&mut self) -> ConnBufs {
        self.free.pop().unwrap_or_else(|| ConnBufs {
            read: Vec::with_capacity(INITIAL_CAPACITY),
            write: Vec::with_capacity(INITIAL_CAPACITY),
            req: Request {
                method: String::new(),
                path: String::new(),
                body: Vec::new(),
                keep_alive: true,
            },
        })
    }

    /// Returns a buffer set, clearing it and shedding outsized capacity
    /// (one 1 MiB request must not pin megabytes in the pool).
    pub fn put(&mut self, mut bufs: ConnBufs) {
        if self.free.len() >= self.cap {
            return;
        }
        bufs.read.clear();
        bufs.write.clear();
        bufs.req.body.clear();
        if bufs.read.capacity() > MAX_POOLED_CAPACITY {
            bufs.read.shrink_to(INITIAL_CAPACITY);
        }
        if bufs.write.capacity() > MAX_POOLED_CAPACITY {
            bufs.write.shrink_to(INITIAL_CAPACITY);
        }
        if bufs.req.body.capacity() > MAX_POOLED_CAPACITY {
            bufs.req.body.shrink_to(INITIAL_CAPACITY);
        }
        self.free.push(bufs);
    }

    /// Idle buffer sets currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no buffer sets are pooled.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Accumulating request line + headers (idle keep-alive connections
    /// park here with an empty buffer).
    ReadHead,
    /// Head parsed; awaiting the advertised body bytes.
    ReadBody,
    /// Request handed to a dispatcher; response not yet produced. Epoll
    /// interest drops to zero — inbound pipelined bytes wait in the
    /// kernel buffer until the in-order response is written.
    Dispatch,
    /// Response bytes pending in the write buffer.
    Write,
    /// Error response written; discarding inbound until EOF or budget so
    /// the close is a FIN the peer can read the response through, not an
    /// RST that destroys it.
    Drain,
}

/// What [`Conn::advance`] wants the reactor to do next.
#[derive(Debug, PartialEq, Eq)]
pub enum Step {
    /// A complete request sits in the scratch (`bufs.req`); dispatch it.
    Dispatch,
    /// Waiting for more inbound bytes (epoll interest: readable).
    WantRead,
    /// Write buffer not yet flushed (epoll interest: writable).
    WantWrite,
    /// Connection finished or broken; deregister and drop it.
    Close,
}

/// One nonblocking connection owned by a reactor shard.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Current state-machine position.
    pub state: State,
    /// Borrowed buffers; `None` while idling between requests.
    pub bufs: Option<ConnBufs>,
    head: Option<HeadInfo>,
    write_pos: usize,
    /// Close instead of re-entering `ReadHead` once the write flushes.
    pub close_after_write: bool,
    /// Enter `Drain` (rather than closing outright) after the flush —
    /// the reject path, where the peer may still be mid-send.
    pub drain_after_write: bool,
    /// Last time a byte moved in either direction — the slow-loris clock.
    pub last_progress: Instant,
    /// Events currently armed in epoll for this socket.
    pub interest: u32,
    drained: usize,
    peer_eof: bool,
}

impl Conn {
    /// Wraps an accepted, already-nonblocking socket.
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            state: State::ReadHead,
            bufs: None,
            head: None,
            write_pos: 0,
            close_after_write: false,
            drain_after_write: false,
            last_progress: now,
            interest: 0,
            drained: 0,
            peer_eof: false,
        }
    }

    /// True while the connection holds no buffers and no partial state —
    /// a parked keep-alive socket costing only its fd.
    pub fn is_idle(&self) -> bool {
        self.state == State::ReadHead && self.bufs.is_none()
    }

    /// Reads whatever the socket has (up to the per-connection cap),
    /// appending to the pooled read buffer. Returns `true` if any bytes
    /// arrived. Records EOF; `advance` turns it into `Close` once the
    /// buffered bytes are exhausted.
    pub fn fill(&mut self, pool: &mut BufPool, now: Instant) -> io::Result<bool> {
        if self.bufs.is_none() {
            self.bufs = Some(pool.get());
        }
        let bufs = self.bufs.as_mut().expect("bufs attached above");
        let mut got = false;
        while bufs.read.len() < READ_CAP {
            let len = bufs.read.len();
            let want = READ_CHUNK.min(READ_CAP - len);
            bufs.read.resize(len + want, 0);
            match self.stream.read(&mut bufs.read[len..len + want]) {
                Ok(0) => {
                    bufs.read.truncate(len);
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    bufs.read.truncate(len + n);
                    self.last_progress = now;
                    got = true;
                    if n < want {
                        break; // short read: socket is drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    bufs.read.truncate(len);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    bufs.read.truncate(len);
                }
                Err(e) => {
                    bufs.read.truncate(len);
                    return Err(e);
                }
            }
        }
        Ok(got)
    }

    /// Advances the read-side state machine over the buffered bytes:
    /// parses the head, then waits out the body, then yields `Dispatch`
    /// with the request in the scratch. Reject outcomes queue their error
    /// response themselves and come back as `WantWrite`.
    pub fn advance(&mut self, now: Instant) -> Step {
        loop {
            match self.state {
                State::ReadHead => {
                    let Some(bufs) = self.bufs.as_mut() else {
                        return if self.peer_eof {
                            Step::Close
                        } else {
                            Step::WantRead
                        };
                    };
                    if bufs.read.is_empty() {
                        return if self.peer_eof {
                            Step::Close
                        } else {
                            Step::WantRead
                        };
                    }
                    match parse_head(&bufs.read, &mut bufs.req) {
                        HeadOutcome::Complete(info) => {
                            self.head = Some(info);
                            self.state = State::ReadBody;
                        }
                        HeadOutcome::Partial => {
                            // EOF mid-head is a truncated request: close
                            // without answering, like the blocking core.
                            return if self.peer_eof {
                                Step::Close
                            } else {
                                Step::WantRead
                            };
                        }
                        HeadOutcome::Malformed => return Step::Close,
                        HeadOutcome::Reject { status, message } => {
                            return self.queue_reject(status, message, now);
                        }
                    }
                }
                State::ReadBody => {
                    let info = self.head.expect("ReadBody requires a parsed head");
                    let bufs = self.bufs.as_mut().expect("ReadBody requires buffers");
                    if bufs.read.len() < info.total_len() {
                        return if self.peer_eof {
                            Step::Close
                        } else {
                            Step::WantRead
                        };
                    }
                    bufs.req.body.clear();
                    bufs.req
                        .body
                        .extend_from_slice(&bufs.read[info.head_len..info.total_len()]);
                    // Consume the framed request; pipelined successors
                    // slide to the front (usually a no-op copy of zero
                    // remaining bytes).
                    bufs.read.drain(..info.total_len());
                    self.head = None;
                    self.state = State::Dispatch;
                    return Step::Dispatch;
                }
                // Dispatch/Write/Drain don't advance on reads.
                State::Dispatch => return Step::WantRead,
                State::Write => return Step::WantWrite,
                State::Drain => return self.drain_step(now),
            }
        }
    }

    /// Serializes `response` into the write buffer and transitions to
    /// `Write`. `keep` mirrors the blocking core's per-response choice
    /// (`req.keep_alive && !shutdown`).
    pub fn queue_response(
        &mut self,
        response: &crate::http::Response,
        keep: bool,
        pool: &mut BufPool,
    ) {
        if self.bufs.is_none() {
            self.bufs = Some(pool.get());
        }
        let bufs = self.bufs.as_mut().expect("bufs attached above");
        response.write_into(&mut bufs.write, keep);
        self.close_after_write = !keep;
        self.state = State::Write;
    }

    /// Queues a 413/431 reject: error response, `Connection: close`,
    /// then drain. Returns the follow-up step from flushing.
    fn queue_reject(&mut self, status: u16, message: &'static str, now: Instant) -> Step {
        perfpred_core::metrics::counter("serve.rejected_requests").incr();
        let response = crate::http::Response::error(status, message);
        let bufs = self.bufs.as_mut().expect("reject follows a parse");
        response.write_into(&mut bufs.write, false);
        self.close_after_write = true;
        self.drain_after_write = true;
        self.state = State::Write;
        self.flush(now)
    }

    /// Flushes the write buffer. `WantWrite` means the socket filled up
    /// (arm writable interest); otherwise the connection either closes,
    /// drains, or returns to `ReadHead` — where buffered pipelined bytes
    /// are paged through `advance` by the caller.
    pub fn flush(&mut self, now: Instant) -> Step {
        debug_assert_eq!(self.state, State::Write);
        let bufs = self.bufs.as_mut().expect("Write requires buffers");
        while self.write_pos < bufs.write.len() {
            match self.stream.write(&bufs.write[self.write_pos..]) {
                Ok(0) => return Step::Close,
                Ok(n) => {
                    self.write_pos += n;
                    self.last_progress = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::WantWrite,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Step::Close,
            }
        }
        bufs.write.clear();
        self.write_pos = 0;
        if self.drain_after_write {
            // Signal end-of-response, then absorb what the peer is still
            // sending so the close is a FIN, not an RST.
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
            self.state = State::Drain;
            return self.drain_step(now);
        }
        if self.close_after_write {
            return Step::Close;
        }
        self.state = State::ReadHead;
        // Pipelined successors may already be buffered — epoll will never
        // re-report bytes that left the kernel, so re-enter the parser
        // instead of parking (it returns `WantRead` if the buffer is dry).
        self.advance(now)
    }

    /// One nonblocking pass of the bounded post-reject drain.
    fn drain_step(&mut self, now: Instant) -> Step {
        let mut sink = [0u8; 4096];
        while self.drained < DRAIN_BUDGET_BYTES {
            match self.stream.read(&mut sink) {
                Ok(0) => return Step::Close, // peer saw the FIN and finished
                Ok(n) => {
                    self.drained += n;
                    self.last_progress = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::WantRead,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Step::Close,
            }
        }
        Step::Close // budget blown: the peer is hostile, RST is fine
    }

    /// Releases the buffers back to the pool if the connection is parked
    /// between requests with nothing buffered in either direction.
    pub fn release_if_idle(&mut self, pool: &mut BufPool) {
        if self.state != State::ReadHead {
            return;
        }
        let empty = self
            .bufs
            .as_ref()
            .is_some_and(|b| b.read.is_empty() && b.write.is_empty());
        if empty {
            pool.put(self.bufs.take().expect("checked above"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> Request {
        Request {
            method: String::new(),
            path: String::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    /// Parses a full request (head + body) in one shot, the way the
    /// reactor does across its ReadHead/ReadBody states.
    fn parse_full(buf: &[u8], req: &mut Request) -> Result<Option<usize>, HeadOutcome> {
        match parse_head(buf, req) {
            HeadOutcome::Complete(info) => {
                if buf.len() < info.total_len() {
                    return Ok(None);
                }
                req.body.clear();
                req.body
                    .extend_from_slice(&buf[info.head_len..info.total_len()]);
                Ok(Some(info.total_len()))
            }
            HeadOutcome::Partial => Ok(None),
            other => Err(other),
        }
    }

    #[test]
    fn parses_incrementally_at_every_split_point() {
        let raw = b"POST /predict?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 9\r\n\r\n{\"n\": 42}";
        let mut req = scratch();
        for split in 0..raw.len() {
            assert!(
                parse_full(&raw[..split], &mut req).unwrap().is_none(),
                "prefix of {split} bytes must be Partial"
            );
        }
        let consumed = parse_full(raw, &mut req).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"{\"n\": 42}");
        assert!(req.keep_alive);
    }

    #[test]
    fn scratch_reuse_resets_every_field() {
        let mut req = scratch();
        let a = b"POST /long-path HTTP/1.1\r\nConnection: close\r\nContent-Length: 3\r\n\r\nabc";
        parse_full(a, &mut req).unwrap().unwrap();
        assert!(!req.keep_alive);
        // A shorter request next: no stale suffix may survive.
        let b = b"GET /b HTTP/1.1\r\n\r\n";
        let consumed = parse_full(b, &mut req).unwrap().unwrap();
        assert_eq!(consumed, b.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/b");
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "keep-alive must reset to the 1.1 default");
    }

    #[test]
    fn limits_match_the_blocking_parser() {
        let mut req = scratch();
        // Oversized Content-Length: 413 from the head alone.
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_head(big.as_bytes(), &mut req),
            HeadOutcome::Reject { status: 413, .. }
        ));
        // Unparseable Content-Length is malformed framing, not a reject.
        assert!(matches!(
            parse_head(
                b"POST / HTTP/1.1\r\nContent-Length: umpteen\r\n\r\n",
                &mut req
            ),
            HeadOutcome::Malformed
        ));
        // Chunked transfer unsupported.
        assert!(matches!(
            parse_head(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &mut req
            ),
            HeadOutcome::Malformed
        ));
        // Too many header fields.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(
            parse_head(raw.as_bytes(), &mut req),
            HeadOutcome::Reject { status: 431, .. }
        ));
        // Cumulative head size cap.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..40 {
            raw.push_str(&format!("X-Pad{i}: {}\r\n", "p".repeat(250)));
        }
        raw.push_str("\r\n");
        assert!(matches!(
            parse_head(raw.as_bytes(), &mut req),
            HeadOutcome::Reject { status: 431, .. }
        ));
        // Oversized request line — even before its newline ever arrives.
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            parse_head(raw.as_bytes(), &mut req),
            HeadOutcome::Reject { status: 431, .. }
        ));
        let unterminated = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            parse_head(&unterminated, &mut req),
            HeadOutcome::Reject { status: 431, .. }
        ));
        // Bad version / garbage.
        assert!(matches!(
            parse_head(b"GET / SPDY/9\r\n\r\n", &mut req),
            HeadOutcome::Malformed
        ));
        assert!(matches!(
            parse_head(b"garbage\r\n\r\n", &mut req),
            HeadOutcome::Malformed
        ));
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_frame() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut req = scratch();
        let consumed = parse_full(raw, &mut req).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        let rest = &raw[consumed..];
        let consumed = parse_full(rest, &mut req).unwrap().unwrap();
        assert_eq!(req.path, "/b");
        assert_eq!(consumed, rest.len());
    }

    #[test]
    fn bare_lf_lines_parse_like_the_blocking_core() {
        let mut req = scratch();
        let raw = b"GET /lf HTTP/1.1\nHost: h\n\n";
        let consumed = parse_full(raw, &mut req).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.path, "/lf");
    }

    #[test]
    fn pool_recycles_and_sheds_outsized_buffers() {
        let mut pool = BufPool::new(2);
        let mut a = pool.get();
        a.read
            .extend_from_slice(&vec![0u8; 2 * MAX_POOLED_CAPACITY]);
        a.req.body.extend_from_slice(b"leftover");
        pool.put(a);
        assert_eq!(pool.len(), 1);
        let a = pool.get();
        assert!(a.read.is_empty() && a.write.is_empty() && a.req.body.is_empty());
        assert!(a.read.capacity() <= MAX_POOLED_CAPACITY);
        // The cap bounds retention.
        pool.put(a);
        pool.put(ConnBufs::default());
        pool.put(ConnBufs::default());
        assert_eq!(pool.len(), 2);
    }
}
