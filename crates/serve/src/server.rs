//! The TCP server: bounded accept queue, connection worker pool, solver
//! pool, and the graceful-drain ordering between them.

use crate::batch::solver_loop;
use crate::http::{read_request, ReadOutcome, Response};
use crate::router::App;
use crate::shutdown::Shutdown;
use perfpred_core::faults::{self, FaultSite};
use perfpred_core::metrics;
use std::collections::VecDeque;
use std::io::{self, BufReader, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Socket read timeout: the cadence at which idle keep-alive connections
/// re-check the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);
/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_micros(500);

/// Bounded queue of accepted connections awaiting a worker.
struct ConnQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            conns: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// `Err(stream)` hands the connection back on overflow.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut conns = self.conns.lock().expect("conn queue lock");
        if conns.len() >= self.capacity {
            return Err(stream);
        }
        conns.push_back(stream);
        drop(conns);
        self.available.notify_one();
        Ok(())
    }

    fn pop(&self, wait: Duration) -> Option<TcpStream> {
        let conns = self.conns.lock().expect("conn queue lock");
        let (mut conns, _) = self
            .available
            .wait_timeout_while(conns, wait, |c| c.is_empty())
            .expect("conn queue lock");
        conns.pop_front()
    }
}

/// A bound-and-listening daemon, one `run()` away from serving.
///
/// Splitting bind from run lets callers (tests, `--port 0` scripts) learn
/// the ephemeral address before the blocking serve loop starts.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    app: Arc<App>,
    workers: usize,
    solvers: usize,
    batch_max: usize,
    conn_queue: Arc<ConnQueue>,
}

impl Server {
    /// Binds `host:port` (port 0 = ephemeral) around an assembled [`App`].
    pub fn bind(
        host: &str,
        port: u16,
        app: App,
        workers: usize,
        solvers: usize,
        batch_max: usize,
        queue_depth: usize,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind((host, port))?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            app: Arc::new(app),
            workers: workers.max(1),
            solvers: solvers.max(1),
            batch_max: batch_max.max(1),
            conn_queue: Arc::new(ConnQueue::new(queue_depth)),
        })
    }

    /// The bound address (resolves `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The token that stops this server (shared with the [`App`]).
    pub fn shutdown_handle(&self) -> Arc<Shutdown> {
        Arc::clone(&self.app.shutdown)
    }

    /// Serves until shutdown is requested, then drains: the accept loop
    /// stops first, connection workers finish their in-flight requests,
    /// and only after the workers have joined do the solvers exit — so
    /// every job a worker enqueued gets solved and answered.
    pub fn run(self) -> io::Result<()> {
        let shutdown = self.shutdown_handle();
        self.listener.set_nonblocking(true)?;

        let mut solver_handles = Vec::with_capacity(self.solvers);
        // Solvers ignore the shared token and watch this private one, so
        // they outlive the workers during the drain.
        let solvers_done = Shutdown::new();
        for i in 0..self.solvers {
            let queue = Arc::clone(&self.app.queue);
            let cache_app = Arc::clone(&self.app);
            let done = Arc::clone(&solvers_done);
            let batch_max = self.batch_max;
            solver_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-solver-{i}"))
                    .spawn(move || solver_loop(&queue, &cache_app.host.lqns, batch_max, &done))
                    .expect("spawn solver thread"),
            );
        }

        let mut worker_handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let app = Arc::clone(&self.app);
            let conns = Arc::clone(&self.conn_queue);
            let stop = Arc::clone(&shutdown);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&app, &conns, &stop))
                    .expect("spawn worker thread"),
            );
        }

        // Accept loop: nonblocking so the shutdown flag is honoured within
        // one poll interval even with no clients connecting.
        while !shutdown.requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // One padded lane: the reactor core stripes this same
                    // counter per shard, so both cores publish one
                    // `serve.accepted` aggregate on scrape.
                    metrics::sharded_counter("serve.accepted", 1).lane(0).incr();
                    // Chaos harness: drop the connection on the floor the
                    // way a dying LB or flaky network would, before any
                    // bytes are exchanged. Clients must treat the reset as
                    // retryable.
                    if faults::fires(FaultSite::AcceptReset) {
                        metrics::counter("serve.faults.accept_reset").incr();
                        drop(stream);
                        continue;
                    }
                    if let Err(stream) = self.conn_queue.push(stream) {
                        metrics::counter("serve.accept_overflow").incr();
                        reject_overloaded(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: workers first (they stop pulling new connections and
        // finish in-flight requests), then the solver pool.
        for h in worker_handles {
            let _ = h.join();
        }
        solvers_done.request();
        for h in solver_handles {
            let _ = h.join();
        }
        // Last in the drain order: force the observation log's tail to
        // disk, now that no worker can append behind us.
        self.app
            .store
            .sync()
            .map_err(|e| io::Error::other(format!("observation log sync: {e}")))?;
        Ok(())
    }
}

/// Upper bound on bytes drained from a connection we are closing with an
/// error response. Enough for any in-flight request head plus a capped
/// body; past this the peer is hostile and an RST is acceptable.
const DRAIN_BUDGET_BYTES: usize = 256 * 1024;

/// Best-effort 503 for connections shed at the accept queue.
///
/// The response is written *first*, then the unread request bytes are
/// drained before the socket drops. Closing with unread data pending
/// makes the kernel send an RST, which on many stacks discards the
/// just-queued response — the pre-fix behaviour meant a client midway
/// through POSTing a body saw a connection reset instead of the 503.
fn reject_overloaded(stream: TcpStream) {
    use std::io::Write as _;
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let mut scratch = Vec::with_capacity(256);
    Response::error(503, "server is overloaded, retry later").write_into(&mut scratch, false);
    if stream.write_all(&scratch).is_err() {
        return;
    }
    drain_then_close(stream);
}

/// Signals end-of-response, then reads (and discards) whatever the peer
/// is still sending, bounded by [`DRAIN_BUDGET_BYTES`] and the socket
/// read timeout, so the close is a FIN rather than an RST.
fn drain_then_close(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < DRAIN_BUDGET_BYTES {
        match stream.read(&mut sink) {
            Ok(0) => return, // peer saw our FIN and finished
            Ok(n) => drained += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Timeout or hard error: the peer went quiet without closing;
            // we have given it a fair window to read the response.
            Err(_) => return,
        }
    }
}

/// One connection worker: pull a connection, serve its keep-alive request
/// stream, repeat. Exits once shutdown is requested and the current
/// connection is finished.
fn worker_loop(app: &App, conns: &ConnQueue, shutdown: &Shutdown) {
    loop {
        match conns.pop(Duration::from_millis(20)) {
            Some(stream) => serve_connection(app, stream, shutdown),
            None => {
                if shutdown.requested() {
                    return;
                }
            }
        }
    }
}

/// Serves requests off one connection until the peer closes, asks to
/// close, errors, or shutdown interrupts an idle wait.
fn serve_connection(app: &App, stream: TcpStream, shutdown: &Shutdown) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(10)))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    use std::io::Write as _;
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // One scratch buffer serializes every response on this connection —
    // status line, headers and body become a single write instead of
    // per-request `write!` formatting straight into the socket.
    let mut scratch: Vec<u8> = Vec::with_capacity(1024);
    loop {
        match read_request(&mut reader) {
            Ok(ReadOutcome::Request(req)) => {
                let response = app.handle(&req);
                // An idle daemon drains instantly; one that is answering
                // closes each connection after the in-flight response.
                let keep = req.keep_alive && !shutdown.requested();
                scratch.clear();
                response.write_into(&mut scratch, keep);
                if writer.write_all(&scratch).is_err() || !keep {
                    return;
                }
            }
            Ok(ReadOutcome::Idle) => {
                if shutdown.requested() {
                    return;
                }
            }
            Ok(ReadOutcome::Reject { status, message }) => {
                // A size limit tripped but the framing was intact: answer
                // with the status, then close. The unread remainder (e.g.
                // an oversized body the parser refused to buffer) is
                // drained so the response survives the close.
                metrics::counter("serve.rejected_requests").incr();
                scratch.clear();
                Response::error(status, message).write_into(&mut scratch, false);
                if writer.write_all(&scratch).is_ok() {
                    drain_then_close(reader.into_inner());
                }
                return;
            }
            Ok(ReadOutcome::Closed) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionController;
    use crate::batch::JobQueue;
    use crate::models::ModelHost;
    use perfpred_core::CacheOptions;
    use perfpred_resman::RuntimeOptions;
    use std::io::Write as _;

    fn start() -> (SocketAddr, Arc<Shutdown>, std::thread::JoinHandle<()>) {
        let app = App::new(
            ModelHost::paper(&CacheOptions::default()),
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(64),
            Shutdown::new(),
        );
        let server = Server::bind("127.0.0.1", 0, app, 2, 1, 8, 16).unwrap();
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, shutdown, handle)
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_healthz_and_drains_cleanly() {
        let (addr, shutdown, handle) = start();
        let reply = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"status\": \"ok\""), "{reply}");
        shutdown.request();
        handle.join().unwrap();
    }

    #[test]
    fn oversized_post_gets_a_413_not_a_reset() {
        let (addr, shutdown, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            8 * 1024 * 1024
        );
        stream.write_all(head.as_bytes()).unwrap();
        // Keep sending body bytes the way a naive client would; the
        // server must answer from the headers and drain, not reset.
        let _ = stream.write_all(&vec![b'x'; 64 * 1024]);
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
        shutdown.request();
        handle.join().unwrap();
    }

    #[test]
    fn wrong_method_gets_a_405_and_the_connection_survives() {
        let (addr, shutdown, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"DELETE /predict HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();
        let mut first = String::new();
        let mut buf = [0u8; 4096];
        // Accumulate until the JSON error body's closing brace arrives —
        // one response can straddle reads.
        while !first.contains('}') {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "connection reset instead of a 405: {first:?}");
            first.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        assert!(first.starts_with("HTTP/1.1 405"), "{first}");
        assert!(first.contains("Allow: POST\r\n"), "{first}");
        assert!(first.contains("Connection: keep-alive"), "{first}");
        // The same socket still answers the next (correct) request.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");
        shutdown.request();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let (addr, _shutdown, handle) = start();
        let reply = roundtrip(addr, "POST /shutdown HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        // run() returns once the flag propagates through accept + workers.
        handle.join().unwrap();
    }
}
