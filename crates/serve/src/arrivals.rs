//! Per-class arrival-rate metering for the control plane.
//!
//! The §9 planner sizes a cluster from the *offered load* — how many
//! requests per second each service class is pushing at the tier — but
//! the daemon's registries only hold monotonic counters, forcing every
//! scraper to differentiate (and to agree on a smoothing window). This
//! meter does the differentiation once, server-side: `/predict` arrivals
//! bump lock-free per-class counters, and each scrape folds the deltas
//! into an exponentially-weighted moving average with a fixed time
//! constant, so `/healthz` and `/metrics` expose a ready-to-use
//! requests-per-second *gauge* per class.
//!
//! The EWMA weight is `1 − exp(−Δt/τ)` with τ = 10 s: irregular scrape
//! cadences converge to the same smoothed rate a fixed-step EWMA would
//! see, and a single slow scrape cannot overshoot the average.

use perfpred_core::Workload;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Smoothing time constant for the arrival-rate EWMA.
const TAU_S: f64 = 10.0;

/// Minimum fold interval: scrapes closer together than this reuse the
/// last folded rates instead of dividing by a near-zero Δt.
const MIN_FOLD_S: f64 = 0.05;

/// Arrival classes the meter distinguishes. `Total` counts every
/// `/predict` arrival; `Browse`/`Buy` count arrivals whose workload
/// populates that request type (a mixed workload bumps both).
const CLASSES: [&str; 3] = ["total", "browse", "buy"];
const TOTAL: usize = 0;
const BROWSE: usize = 1;
const BUY: usize = 2;

/// One smoothed arrival rate, per class, requests per second.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArrivalRates {
    /// Every `/predict` arrival.
    pub total_rps: f64,
    /// Arrivals whose workload populates a browse class.
    pub browse_rps: f64,
    /// Arrivals whose workload populates a buy class.
    pub buy_rps: f64,
}

#[derive(Debug)]
struct Folded {
    at: Instant,
    counts: [u64; 3],
    ewma_rps: [f64; 3],
}

/// The meter: lock-free counters on the request path, a mutex-guarded
/// fold on the (cold) scrape path.
#[derive(Debug)]
pub struct ArrivalMeter {
    counts: [AtomicU64; 3],
    folded: Mutex<Folded>,
}

impl ArrivalMeter {
    /// A fresh meter; rates start at zero.
    #[allow(clippy::new_without_default)]
    pub fn new() -> ArrivalMeter {
        ArrivalMeter {
            counts: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            folded: Mutex::new(Folded {
                at: Instant::now(),
                counts: [0; 3],
                ewma_rps: [0.0; 3],
            }),
        }
    }

    /// Records one `/predict` arrival for `workload` (request path:
    /// three relaxed atomic adds, no lock).
    pub fn note(&self, workload: &Workload) {
        self.counts[TOTAL].fetch_add(1, Ordering::Relaxed);
        let mut browse = false;
        let mut buy = false;
        for load in &workload.classes {
            if load.clients == 0 {
                continue;
            }
            match load.class.request_type {
                perfpred_core::workload::RequestType::Browse => browse = true,
                perfpred_core::workload::RequestType::Buy => buy = true,
            }
        }
        if browse {
            self.counts[BROWSE].fetch_add(1, Ordering::Relaxed);
        }
        if buy {
            self.counts[BUY].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds counter deltas since the last fold into the EWMA and returns
    /// the smoothed per-class rates (scrape path).
    pub fn rates(&self) -> ArrivalRates {
        self.rates_at(Instant::now())
    }

    fn rates_at(&self, now: Instant) -> ArrivalRates {
        let mut f = self.folded.lock().unwrap();
        let dt = now.saturating_duration_since(f.at).as_secs_f64();
        if dt >= MIN_FOLD_S {
            let w = 1.0 - (-dt / TAU_S).exp();
            for i in 0..CLASSES.len() {
                let count = self.counts[i].load(Ordering::Relaxed);
                let inst = (count - f.counts[i]) as f64 / dt;
                f.ewma_rps[i] += w * (inst - f.ewma_rps[i]);
                f.counts[i] = count;
            }
            f.at = now;
        }
        ArrivalRates {
            total_rps: f.ewma_rps[TOTAL],
            browse_rps: f.ewma_rps[BROWSE],
            buy_rps: f.ewma_rps[BUY],
        }
    }

    /// Raw monotonic arrival count (total class), for tests and counters.
    pub fn total(&self) -> u64 {
        self.counts[TOTAL].load(Ordering::Relaxed)
    }

    /// Prometheus-exposition gauge lines for the three class rates.
    pub fn render_exposition(&self) -> String {
        let r = self.rates();
        let mut out = String::from("# TYPE serve_arrival_rate_rps gauge\n");
        for (name, v) in CLASSES.iter().zip([r.total_rps, r.browse_rps, r.buy_rps]) {
            out.push_str(&format!("serve_arrival_rate_rps{{class=\"{name}\"}} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ewma_converges_to_a_steady_rate() {
        let m = ArrivalMeter::new();
        // A browse + buy mix, so both class meters tick.
        let w = Workload::with_buy_pct(100, 10.0);
        let epoch = m.folded.lock().unwrap().at;
        // 100 req/s for 60 simulated seconds, folded once a second.
        for tick in 1..=60u64 {
            for _ in 0..100 {
                m.note(&w);
            }
            m.rates_at(epoch + Duration::from_secs(tick));
        }
        let r = m.rates_at(epoch + Duration::from_secs(60));
        assert!(
            (r.total_rps - 100.0).abs() < 1.0,
            "total ewma {} should be ~100",
            r.total_rps
        );
        assert!(r.browse_rps > 90.0, "{r:?}");
        assert!(r.buy_rps > 90.0, "{r:?}");
    }

    #[test]
    fn rapid_scrapes_reuse_the_last_fold() {
        let m = ArrivalMeter::new();
        let w = Workload::typical(10);
        let epoch = m.folded.lock().unwrap().at;
        for _ in 0..50 {
            m.note(&w);
        }
        let first = m.rates_at(epoch + Duration::from_secs(1));
        // A scrape 1 ms later must not re-divide by the tiny Δt.
        let again = m.rates_at(epoch + Duration::from_millis(1_001));
        assert_eq!(first, again);
    }

    #[test]
    fn class_counters_follow_the_workload_mix() {
        use perfpred_core::workload::{ClassLoad, RequestType, ServiceClass};
        let m = ArrivalMeter::new();
        let browse_only = Workload {
            classes: vec![ClassLoad {
                class: ServiceClass {
                    name: "b".into(),
                    request_type: RequestType::Browse,
                    think_time_ms: 0.0,
                    rt_goal_ms: None,
                },
                clients: 1,
            }],
        };
        m.note(&browse_only);
        assert_eq!(m.counts[TOTAL].load(Ordering::Relaxed), 1);
        assert_eq!(m.counts[BROWSE].load(Ordering::Relaxed), 1);
        assert_eq!(m.counts[BUY].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn exposition_lists_every_class() {
        let m = ArrivalMeter::new();
        let text = m.render_exposition();
        for class in CLASSES {
            assert!(
                text.contains(&format!("serve_arrival_rate_rps{{class=\"{class}\"}}")),
                "{text}"
            );
        }
    }
}
