//! Proof of the reactor's zero-allocation framing contract: once a
//! connection's pooled buffers are warm, the steady-state request path —
//! incremental head parse into the reused [`Request`] scratch, body copy,
//! response serialization via [`Response::write_into`] — performs **zero**
//! heap allocations, asserted with the same counting-`#[global_allocator]`
//! trick as `crates/bench/benches/allocator.rs`.
//!
//! Scope: the contract covers the *framing* layer the reactor executes
//! per request on a shard (parse + serialize on pooled buffers). Route
//! handlers (`App::handle_at`) build JSON and intentionally allocate;
//! DESIGN.md documents the boundary.
//!
//! `harness = false`: libtest spawns threads whose allocations would
//! pollute the counter, so this is a plain `main`.

use perfpred_serve::conn::{parse_head, BufPool, HeadOutcome};
use perfpred_serve::http::Response;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation the process makes (frees are free).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ROUNDS: u64 = 1_000;

fn main() {
    // One keep-alive connection's worth of state, borrowed once.
    let mut pool = BufPool::new(4);
    let mut bufs = pool.get();

    let raw: &[u8] =
        b"POST /predict?cache=1 HTTP/1.1\r\nHost: bench\r\nContent-Length: 25\r\nConnection: keep-alive\r\n\r\n{\"server\": \"AppServS\", 1}";
    // A response of realistic size, built once — the reactor reuses the
    // route handler's Response; the per-request work is serialization.
    let response = Response::error(200, "prediction body placeholder, ~normal size");

    // Warm-up: size the scratch strings, body and write buffer.
    for _ in 0..8 {
        cycle(raw, &mut bufs, &response);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..ROUNDS {
        cycle(black_box(raw), &mut bufs, &response);
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;

    println!("zeroalloc: {allocs} allocations / {ROUNDS} warm request cycles");
    assert_eq!(
        allocs, 0,
        "steady-state framing (parse_head + body copy + write_into) must not allocate"
    );

    // And the pool round-trip itself (detach while idle, reattach on the
    // next request) must also be allocation-free. One warm-up lap sizes
    // the pool's own free list.
    pool.put(bufs);
    bufs = pool.get();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..ROUNDS {
        pool.put(black_box(bufs));
        bufs = pool.get();
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    println!("zeroalloc: {allocs} allocations / {ROUNDS} pool round-trips");
    assert_eq!(allocs, 0, "BufPool get/put must not allocate when warm");
}

/// One full framing cycle: accumulate bytes, parse the head, copy the
/// body into the scratch request, consume the frame, serialize the
/// response — exactly what a reactor shard does per request.
fn cycle(raw: &[u8], bufs: &mut perfpred_serve::conn::ConnBufs, response: &Response) {
    bufs.read.extend_from_slice(raw);
    let info = match parse_head(&bufs.read, &mut bufs.req) {
        HeadOutcome::Complete(info) => info,
        other => panic!("warm parse must complete, got {other:?}"),
    };
    bufs.req.body.clear();
    bufs.req
        .body
        .extend_from_slice(&bufs.read[info.head_len..info.total_len()]);
    bufs.read.drain(..info.total_len());
    assert!(bufs.read.is_empty());
    black_box(&bufs.req);

    bufs.write.clear();
    response.write_into(&mut bufs.write, true);
    black_box(&bufs.write);
}
