//! Chaos test: a real daemon with fault injection armed — solver delays,
//! accept resets and store I/O errors all firing at once — stays
//! available through degraded serving, never emits a malformed HTTP
//! response, never deadlocks, and recovers its durable state
//! byte-identically after a restart.
//!
//! This binary owns the whole process, so it installs the process-global
//! fault plan up front; everything (accept loop, solver pool, store)
//! reads the same plan.

use perfpred_core::faults::{self, FaultPlan};
use perfpred_core::metrics::{self, names};
use perfpred_core::{CacheOptions, Json};
use perfpred_resman::RuntimeOptions;
use perfpred_serve::admission::AdmissionController;
use perfpred_serve::batch::JobQueue;
use perfpred_serve::router::App;
use perfpred_serve::{ModelHost, Server, Shutdown};
use perfpred_store::{LogOptions, ObservationStore, RefitOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

// `conn_reset` only fires in the reactor core's connection state machine;
// the threaded leg never draws from that site.
const CHAOS_SPEC: &str =
    "solver_delay=40ms:p0.35,accept_reset=p0.1,store_io_err=p0.25,conn_reset=p0.03";
const CHAOS_SEED: u64 = 42;
const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 50;
const MAX_ATTEMPTS: usize = 6;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perfpred-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn refit_opts() -> RefitOptions {
    RefitOptions {
        refit_window: 30,
        ..RefitOptions::default()
    }
}

struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    handle: Option<thread::JoinHandle<()>>,
    store: Arc<ObservationStore>,
}

impl Daemon {
    /// Starts a daemon over the durable store in `dir`, shaped like
    /// `main` wires it: paper models sharing the store's registry, a
    /// deliberately shallow solver queue, and a tight default deadline so
    /// injected solver delays actually blow budgets. `reactor` selects
    /// the epoll core (Linux) instead of the thread-per-connection core.
    fn start(dir: &std::path::Path, reactor: bool) -> Daemon {
        let servers = perfpred_bench::context::Experiments::servers();
        let (store, _report) =
            ObservationStore::open(dir, LogOptions::default(), &servers, refit_opts()).unwrap();
        let store = Arc::new(store);
        let host = ModelHost::paper_with_registry(&CacheOptions::default(), store.registry());
        let mut app = App::with_store(
            host,
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(8),
            Shutdown::new(),
            Arc::clone(&store),
        );
        app.deadline = Duration::from_millis(200);
        let (addr, shutdown, handle) = if reactor {
            #[cfg(target_os = "linux")]
            {
                let server =
                    perfpred_serve::ReactorServer::bind("127.0.0.1", 0, app, 2, 4, 2, 8, 8)
                        .unwrap();
                let addr = server.local_addr();
                let shutdown = server.shutdown_handle();
                (addr, shutdown, thread::spawn(move || server.run().unwrap()))
            }
            #[cfg(not(target_os = "linux"))]
            unreachable!("the reactor leg only runs on Linux")
        } else {
            let server = Server::bind("127.0.0.1", 0, app, 4, 2, 8, 8).unwrap();
            let addr = server.local_addr();
            let shutdown = server.shutdown_handle();
            (addr, shutdown, thread::spawn(move || server.run().unwrap()))
        };
        Daemon {
            addr,
            shutdown,
            handle: Some(handle),
            store,
        }
    }

    fn stop(&mut self) {
        self.shutdown.request();
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One HTTP exchange over a fresh connection.
enum Reply {
    /// A well-formed response: status and body.
    Http(u16, String),
    /// The connection died before any bytes arrived (injected accept
    /// reset, worker-pool shed) — retryable, not a protocol violation.
    Transport,
    /// Bytes arrived that are not an HTTP/1.1 response — the failure the
    /// whole test exists to rule out.
    Malformed(String),
}

fn attempt(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return Reply::Transport,
    };
    let mut stream = stream;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    if write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .is_err()
    {
        return Reply::Transport;
    }
    let mut raw = Vec::new();
    // A mid-stream reset after some bytes is still judged on what arrived:
    // the server must never have emitted a non-HTTP prefix.
    let _ = stream.read_to_end(&mut raw);
    if raw.is_empty() {
        return Reply::Transport;
    }
    if !raw.starts_with(b"HTTP/1.1 ") {
        return Reply::Malformed(String::from_utf8_lossy(&raw[..raw.len().min(120)]).into_owned());
    }
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = match text.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
        Some(s) => s,
        None => return Reply::Malformed(text[..text.len().min(120)].to_string()),
    };
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Reply::Http(status, body)
}

/// Retries transport failures; returns the first real response, if any.
fn call_with_retries(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    malformed: &mut Vec<String>,
) -> Option<(u16, String)> {
    for _ in 0..MAX_ATTEMPTS {
        match attempt(addr, method, path, body) {
            Reply::Http(status, body) => return Some((status, body)),
            Reply::Transport => thread::sleep(Duration::from_millis(2)),
            Reply::Malformed(prefix) => {
                malformed.push(prefix);
                return None;
            }
        }
    }
    None
}

/// A synthetic AppServF measurement shaped like the paper's curves:
/// exponential MRT growth below saturation, linear above, cycling through
/// client counts on both sides of the knee (n* ≈ 1306).
fn observation_point(k: usize) -> (u32, f64) {
    let n_star = 186.0 * 7_020.0 / 1_000.0;
    let frac = 0.15 + 1.45 * ((k % 29) as f64) / 28.0;
    let n = (frac * n_star).round().max(1.0);
    let mrt = if frac < 1.0 {
        20.0 * (1.8 * frac).exp()
    } else {
        (7.0 * n / 1.3 - 6_000.0).max(100.0)
    };
    (n as u32, mrt)
}

#[derive(Default)]
struct ClientTally {
    predicts: u64,
    predict_ok: u64,
    degraded: u64,
    observes: u64,
    observe_ok: u64,
    observe_io_failed: u64,
    malformed: Vec<String>,
}

fn client_loop(addr: SocketAddr, t: usize) -> ClientTally {
    let mut tally = ClientTally::default();
    for i in 0..REQUESTS_PER_CLIENT {
        if i % 3 == 0 {
            // Observation intake: exercises the injected store I/O fault.
            // Points span both sides of the AppServF saturation knee so
            // the refitter can establish its two-regime fit and publish.
            let (a_n, a_mrt) = observation_point(t * 17 + i * 5);
            let (b_n, b_mrt) = observation_point(t * 17 + i * 5 + 13);
            let body = format!(
                r#"{{"batch": [{{"server": "AppServF", "clients": {a_n}, "mrt_ms": {a_mrt}}},
                     {{"server": "AppServF", "clients": {b_n}, "mrt_ms": {b_mrt}}}]}}"#,
            );
            tally.observes += 1;
            match call_with_retries(addr, "POST", "/observe", &body, &mut tally.malformed) {
                Some((200, _)) => tally.observe_ok += 1,
                Some((500, body)) if body.contains("injected store I/O fault") => {
                    // The fault surfaced as a structured 500, exactly as a
                    // real disk error would.
                    tally.observe_io_failed += 1;
                }
                Some((status, body)) => panic!("observe answered {status}: {body}"),
                None => {}
            }
        } else {
            // Layered-queuing predictions; fresh client counts keep the
            // solver pool busy, and a slice of them carry a budget so
            // tight an injected solver delay forces the degraded path.
            let clients = 50 + ((t * 31 + i * 7) % 400);
            let deadline = if i % 4 == 1 { 1 } else { 0 };
            let body = format!(
                r#"{{"method": "lqns", "server": "AppServF", "clients": {clients}, "deadline_ms": {deadline}}}"#
            );
            tally.predicts += 1;
            match call_with_retries(addr, "POST", "/predict", &body, &mut tally.malformed) {
                Some((200, body)) => {
                    tally.predict_ok += 1;
                    let j = Json::parse(&body).expect("predict bodies must be valid JSON");
                    match j.get("mode").and_then(Json::as_str) {
                        Some("normal") => {}
                        Some("degraded") => tally.degraded += 1,
                        other => panic!("unexpected mode {other:?} in {body}"),
                    }
                    assert!(
                        j.get("prediction").is_some(),
                        "every 200 carries a prediction: {body}"
                    );
                }
                Some((status, body)) => panic!("predict answered {status}: {body}"),
                None => {}
            }
        }
    }
    tally
}

/// Fans out the client workload against one daemon and aggregates.
fn run_clients(addr: SocketAddr) -> ClientTally {
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| thread::spawn(move || client_loop(addr, t)))
        .collect();
    let mut total = ClientTally::default();
    for h in handles {
        let t = h.join().unwrap();
        total.predicts += t.predicts;
        total.predict_ok += t.predict_ok;
        total.degraded += t.degraded;
        total.observes += t.observes;
        total.observe_ok += t.observe_ok;
        total.observe_io_failed += t.observe_io_failed;
        total.malformed.extend(t.malformed);
    }
    total
}

/// The whole chaos scenario in one test so the process-global fault plan
/// has a single owner.
#[test]
fn chaos_run_stays_available_wellformed_and_recovers_byte_identically() {
    faults::install(Some(Arc::new(
        FaultPlan::parse(CHAOS_SPEC, CHAOS_SEED).unwrap(),
    )));
    let dir = scratch("run");

    // Deadlock watchdog: the client loops bound every read with a timeout
    // and every request with a retry cap, so a hung daemon surfaces as
    // failed assertions — but a deadlocked shutdown would still hang the
    // harness. Abort loudly instead.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(300);
            while std::time::Instant::now() < deadline {
                if done.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(100));
            }
            eprintln!("chaos test deadlocked: 300s elapsed without completing");
            std::process::abort();
        })
    };

    let mut daemon = Daemon::start(&dir, false);
    let store = Arc::clone(&daemon.store);

    let total = run_clients(daemon.addr);

    // 1. Protocol integrity: every byte stream the server produced was an
    //    HTTP/1.1 response, under resets, floods of fresh connections and
    //    injected faults.
    assert!(
        total.malformed.is_empty(),
        "malformed responses: {:?}",
        total.malformed
    );

    // 2. Availability: /predict answers 200 at least 99% of the time —
    //    blown budgets fall back to degraded serving instead of failing.
    let availability = total.predict_ok as f64 / total.predicts as f64;
    assert!(
        availability >= 0.99,
        "predict availability {availability:.4} ({} of {})",
        total.predict_ok,
        total.predicts
    );

    // 3. The chaos actually happened: faults fired and the degraded path
    //    served real traffic.
    assert!(
        total.degraded > 0,
        "no degraded responses — the fault plan never bit"
    );
    assert!(
        total.observe_io_failed > 0,
        "no injected store I/O errors surfaced"
    );
    assert!(
        metrics::counter(names::SERVE_DEGRADED_TOTAL).get() > 0
            && metrics::counter(names::STORE_INJECTED_IO_ERRORS_TOTAL).get() > 0,
        "fault metrics must record the injections"
    );
    assert!(
        total.observe_ok > 0,
        "some observation batches must have landed"
    );

    // 4. Byte-identical recovery: reopen the log a failed-batch-riddled
    //    run produced; the replayed registry must equal the live one.
    store.sync().unwrap();
    let version_before = store.registry().version();
    let model_before = store.current_model_serialized();
    let log_len = store.log_len().unwrap();
    assert!(version_before >= 1, "ingest volume must have refitted");
    daemon.stop();
    drop(daemon);
    drop(store);

    let servers = perfpred_bench::context::Experiments::servers();
    let (replayed, report) =
        ObservationStore::open(&dir, LogOptions::default(), &servers, refit_opts()).unwrap();
    assert_eq!(report.torn_bytes, 0, "failed batches must not tear the log");
    assert_eq!(report.records, log_len);
    assert_eq!(replayed.registry().version(), version_before);
    assert_eq!(replayed.current_model_serialized(), model_before);
    drop(replayed);

    // 5. The same chaos against the reactor core (Linux): availability,
    //    protocol integrity and graceful drain hold with epoll shards in
    //    place of the worker pool — now with mid-stream connection resets
    //    armed as well, which only the reactor's state machine draws.
    #[cfg(target_os = "linux")]
    {
        let dir = scratch("reactor");
        let mut daemon = Daemon::start(&dir, true);
        let total = run_clients(daemon.addr);
        assert!(
            total.malformed.is_empty(),
            "reactor produced malformed responses: {:?}",
            total.malformed
        );
        let availability = total.predict_ok as f64 / total.predicts as f64;
        assert!(
            availability >= 0.99,
            "reactor predict availability {availability:.4} ({} of {})",
            total.predict_ok,
            total.predicts
        );
        assert!(
            total.degraded > 0,
            "no degraded responses on the reactor leg"
        );
        assert!(
            metrics::counter("serve.faults.conn_reset").get() > 0,
            "the conn_reset site never fired against the reactor"
        );
        // Graceful drain: stop() joins run(), which hangs if any shard,
        // dispatcher or solver fails to exit.
        daemon.stop();
        drop(daemon);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    done.store(true, Ordering::Relaxed);
    watchdog.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
