//! Reactor-core integration tests: adversarial framing (one-byte writes,
//! hostile chunk boundaries, pipelining), slow-loris eviction, and the
//! differential trace holding the reactor byte-identical to the threaded
//! core over every deterministic endpoint.

#![cfg(target_os = "linux")]

use perfpred_core::CacheOptions;
use perfpred_resman::RuntimeOptions;
use perfpred_serve::admission::AdmissionController;
use perfpred_serve::batch::JobQueue;
use perfpred_serve::router::App;
use perfpred_serve::{ModelHost, ReactorServer, Server, Shutdown};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn make_app() -> App {
    App::new(
        ModelHost::paper(&CacheOptions::default()),
        AdmissionController::new(RuntimeOptions::default()).unwrap(),
        JobQueue::new(64),
        Shutdown::new(),
    )
}

struct Running {
    addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Running {
    fn stop(&mut self) {
        self.shutdown.request();
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

impl Drop for Running {
    fn drop(&mut self) {
        self.stop();
    }
}

fn start_reactor_with(stall: Option<Duration>) -> Running {
    let mut server = ReactorServer::bind("127.0.0.1", 0, make_app(), 2, 2, 1, 8, 64).unwrap();
    if let Some(stall) = stall {
        server.set_stall_timeout(stall);
    }
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let handle = thread::spawn(move || server.run().unwrap());
    Running {
        addr,
        shutdown,
        handle: Some(handle),
    }
}

fn start_reactor() -> Running {
    start_reactor_with(None)
}

fn start_threaded() -> Running {
    let server = Server::bind("127.0.0.1", 0, make_app(), 2, 1, 8, 64).unwrap();
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let handle = thread::spawn(move || server.run().unwrap());
    Running {
        addr,
        shutdown,
        handle: Some(handle),
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads exactly one HTTP/1.1 response frame (head + Content-Length body)
/// so keep-alive connections can be read response-by-response.
fn read_response(stream: &mut TcpStream) -> Vec<u8> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    let head_end = loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!(
                "connection closed mid-head after {} bytes: {:?}",
                raw.len(),
                String::from_utf8_lossy(&raw)
            ),
            Ok(_) => raw.push(byte[0]),
            Err(e) => panic!("read failed: {e}"),
        }
        if raw.ends_with(b"\r\n\r\n") {
            break raw.len();
        }
        assert!(raw.len() < 64 * 1024, "response head never terminated");
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("every response carries Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).unwrap();
    raw.extend_from_slice(&body);
    raw
}

fn frame(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn status_of(raw: &[u8]) -> u16 {
    String::from_utf8_lossy(raw)
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("response must start with a status line")
}

#[test]
fn one_byte_at_a_time_writes_still_parse() {
    let server = start_reactor();
    let mut stream = connect(server.addr);
    let raw = frame(
        "POST",
        "/predict",
        r#"{"method": "hybrid", "server": "AppServS", "clients": 120}"#,
        true,
    );
    for (i, b) in raw.iter().enumerate() {
        stream.write_all(std::slice::from_ref(b)).unwrap();
        if i % 16 == 0 {
            // Defeat kernel coalescing often enough that the reactor sees
            // genuinely fragmented arrivals.
            thread::sleep(Duration::from_millis(1));
        }
    }
    let reply = read_response(&mut stream);
    assert_eq!(
        status_of(&reply),
        200,
        "{}",
        String::from_utf8_lossy(&reply)
    );
    assert!(
        String::from_utf8_lossy(&reply).contains("\"prediction\""),
        "{}",
        String::from_utf8_lossy(&reply)
    );
}

#[test]
fn adversarial_chunk_boundaries_reassemble() {
    let server = start_reactor();
    let raw = frame(
        "POST",
        "/predict",
        r#"{"method": "hybrid", "server": "AppServF", "clients": 300}"#,
        false,
    );
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .unwrap();
    // Splits at every framing landmark: inside the request line, around
    // each CR/LF, inside a header value, at the head/body seam, mid-body.
    let splits = [
        1,
        4,
        raw.iter().position(|&b| b == b'\r').unwrap(),
        raw.iter().position(|&b| b == b'\r').unwrap() + 1,
        head_end - 2,
        head_end - 1,
        head_end,
        head_end + 1,
        raw.len() - 1,
    ];
    let mut expected: Option<String> = None;
    for &split in &splits {
        let mut stream = connect(server.addr);
        stream.write_all(&raw[..split]).unwrap();
        thread::sleep(Duration::from_millis(5));
        stream.write_all(&raw[split..]).unwrap();
        let reply = read_response(&mut stream);
        assert_eq!(status_of(&reply), 200, "split at {split}");
        // The first reply computes, the rest hit the prediction cache;
        // normalize that one expected difference (the flag and the
        // Content-Length it shifts) before comparing bytes.
        let normalized = String::from_utf8_lossy(&reply)
            .replace("\"cached\": false", "\"cached\": true")
            .lines()
            .filter(|l| !l.starts_with("Content-Length: "))
            .collect::<Vec<_>>()
            .join("\n");
        match &expected {
            None => expected = Some(normalized),
            Some(e) => assert_eq!(e, &normalized, "split at {split} produced different bytes"),
        }
    }
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = start_reactor();

    // Serial baseline on one connection.
    let mut serial = connect(server.addr);
    let mut baseline = Vec::new();
    for _ in 0..5 {
        serial
            .write_all(&frame("GET", "/models", "", false))
            .unwrap();
        baseline.push(read_response(&mut serial));
    }

    // The same five requests in a single write burst.
    let mut stream = connect(server.addr);
    let mut burst = Vec::new();
    for _ in 0..5 {
        burst.extend_from_slice(&frame("GET", "/models", "", false));
    }
    stream.write_all(&burst).unwrap();
    for (i, expected) in baseline.iter().enumerate() {
        let reply = read_response(&mut stream);
        assert_eq!(expected, &reply, "pipelined response {i} diverged");
    }
}

#[test]
fn slow_loris_is_evicted_but_idle_keepalive_survives() {
    let mut server = start_reactor_with(Some(Duration::from_millis(250)));

    // An idle keep-alive connection (no bytes at all) must NOT be evicted.
    let mut idle = connect(server.addr);
    // A slow-loris connection: half a request head, then silence.
    let mut loris = connect(server.addr);
    loris.write_all(b"GET /healthz HTT").unwrap();

    thread::sleep(Duration::from_millis(900));

    // The loris read must see the server-side close (EOF or reset).
    let mut sink = [0u8; 64];
    match loris.read(&mut sink) {
        Ok(0) => {}
        Ok(n) => panic!("stalled connection got {n} bytes instead of a close"),
        Err(_) => {} // ECONNRESET is an acceptable close too
    }
    assert!(
        perfpred_core::metrics::counter("serve.stalled_conns").get() > 0,
        "eviction must be recorded"
    );

    // The idle connection still serves.
    idle.write_all(&frame("GET", "/healthz", "", true)).unwrap();
    let reply = read_response(&mut idle);
    assert_eq!(status_of(&reply), 200);
    server.stop();
}

/// The tentpole's correctness contract: both cores, fed the identical
/// request trace over the deterministic endpoints, emit identical bytes —
/// same JSON, same framing headers, same keep-alive decisions.
#[test]
fn threaded_and_reactor_traces_are_byte_identical() {
    // Serial, deterministic trace. /healthz (uptime) and /metrics
    // (latency histograms) are excluded by design; /observe pins
    // timestamp_us so nothing reads the wall clock.
    let trace: Vec<Vec<u8>> = vec![
        frame("GET", "/models", "", false),
        frame(
            "POST",
            "/predict",
            r#"{"method": "hybrid", "server": "AppServS", "clients": 150}"#,
            false,
        ),
        frame(
            "POST",
            "/predict",
            r#"{"method": "lqns", "server": "AppServF", "clients": 200}"#,
            false,
        ),
        // Identical repeat: must come back cached in both cores.
        frame(
            "POST",
            "/predict",
            r#"{"method": "lqns", "server": "AppServF", "clients": 200}"#,
            false,
        ),
        frame(
            "POST",
            "/observe",
            r#"{"server": "AppServS", "clients": 80, "mrt_ms": 140.5, "timestamp_us": 1000}"#,
            false,
        ),
        frame("GET", "/models", "", false),
        frame("GET", "/does-not-exist", "", false),
        frame("DELETE", "/predict", "", false),
        frame("POST", "/predict", "{not json", false),
        frame("POST", "/plan", r#"{"workloads": "nope"}"#, false),
    ];

    let run_trace = |addr: SocketAddr| -> Vec<Vec<u8>> {
        let mut replies = Vec::new();
        let mut stream = connect(addr);
        for req in &trace {
            stream.write_all(req).unwrap();
            replies.push(read_response(&mut stream));
        }
        // Reject path on its own connection (the server closes it).
        let mut stream = connect(addr);
        stream
            .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n")
            .unwrap();
        replies.push(read_response(&mut stream));
        // Shutdown last: its response and Connection: close must match.
        let mut stream = connect(addr);
        stream
            .write_all(&frame("POST", "/shutdown", "", false))
            .unwrap();
        replies.push(read_response(&mut stream));
        replies
    };

    let mut threaded = start_threaded();
    let threaded_replies = run_trace(threaded.addr);
    threaded.stop();

    let mut reactor = start_reactor();
    let reactor_replies = run_trace(reactor.addr);
    reactor.stop();

    assert_eq!(threaded_replies.len(), reactor_replies.len());
    for (i, (t, r)) in threaded_replies.iter().zip(&reactor_replies).enumerate() {
        assert_eq!(
            t,
            r,
            "trace step {i} diverged:\n--- threaded ---\n{}\n--- reactor ---\n{}",
            String::from_utf8_lossy(t),
            String::from_utf8_lossy(r)
        );
    }
    // Sanity: the interesting shapes actually occurred.
    assert_eq!(status_of(&threaded_replies[1]), 200);
    assert_eq!(status_of(&threaded_replies[6]), 404);
    assert_eq!(status_of(&threaded_replies[7]), 405);
    assert_eq!(status_of(&threaded_replies[8]), 400);
    assert_eq!(status_of(&threaded_replies[10]), 413);
    let cached = String::from_utf8_lossy(&threaded_replies[3]);
    assert!(cached.contains("\"cached\": true"), "{cached}");
}

#[test]
fn many_keepalive_connections_multiplex_on_few_threads() {
    let server = start_reactor();
    // A few hundred concurrently idle keep-alive connections — far more
    // than the shard count — all stay serviceable. (The full 10k soak
    // runs in CI where the fd ulimit is arranged.)
    let mut conns: Vec<TcpStream> = (0..200).map(|_| connect(server.addr)).collect();
    for (i, stream) in conns.iter_mut().enumerate() {
        stream
            .write_all(&frame("GET", "/models", "", false))
            .unwrap();
        let reply = read_response(stream);
        assert_eq!(status_of(&reply), 200, "conn {i}");
    }
    // Second round in reverse order: the connections are still alive.
    for stream in conns.iter_mut().rev() {
        stream
            .write_all(&frame("GET", "/models", "", false))
            .unwrap();
        let reply = read_response(stream);
        assert_eq!(status_of(&reply), 200);
    }
}
