//! End-to-end signal handling, isolated in its own test process: raising
//! SIGTERM sets the process-global shutdown flag every [`Shutdown`] token
//! observes. This cannot live with the unit tests — the flag is global,
//! so it would trip every concurrently running server test.

#![cfg(unix)]

use perfpred_serve::shutdown::install_signal_handlers;
use perfpred_serve::Shutdown;

#[test]
fn sigterm_requests_shutdown_process_wide() {
    let token = Shutdown::new();
    assert!(!token.requested());

    install_signal_handlers();
    extern "C" {
        fn raise(signum: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    let rc = unsafe { raise(SIGTERM) };
    assert_eq!(rc, 0, "raise(SIGTERM) failed");

    // The handler stored the flag synchronously (raise returns after the
    // handler has run on this thread).
    assert!(token.requested());
    assert!(Shutdown::new().requested(), "flag is global, not per-token");
}
