//! Three-node cluster chaos test: a primary, a designated follower and a
//! plain follower behind a `perfpred-router`, serving live load while
//! replication-level faults (connection drops, torn frames) are armed.
//! Mid-run the primary is killed; the designated follower must take over
//! under a bumped epoch, the router must rediscover the writable node,
//! availability through the router must stay ≥ 99%, the surviving nodes
//! must converge to byte-identical `/models` and `/predict` answers, and
//! the restarted old primary must come back non-writable (demoted or
//! fenced, never a second primary).
//!
//! This binary owns the whole process, so it installs the process-global
//! fault plan up front; every replication hub draws from the same plan.

use perfpred_cluster::repl::{
    rejoin_check, spawn_replicator, HubConfig, RejoinOutcome, ReplicationHub, ReplicatorConfig,
};
use perfpred_cluster::state::{ClusterState, Role};
use perfpred_cluster::{RouterConfig, RouterServer};
use perfpred_core::faults::{self, FaultPlan};
use perfpred_core::metrics;
use perfpred_core::CacheOptions;
use perfpred_resman::RuntimeOptions;
use perfpred_serve::admission::AdmissionController;
use perfpred_serve::batch::JobQueue;
use perfpred_serve::router::App;
use perfpred_serve::{ModelHost, Server, Shutdown};
use perfpred_store::{LogOptions, ObservationStore, RefitOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const FAULT_SPEC: &str = "repl_conn_drop:p0.1,repl_partial_frame:p0.1";
const FAULT_SEED: u64 = 0x3C1D;
const CLIENTS: usize = 4;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perfpred-serve-cluster-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn refit_opts() -> RefitOptions {
    RefitOptions {
        refit_window: 40,
        ..RefitOptions::default()
    }
}

fn hub_cfg() -> HubConfig {
    HubConfig {
        heartbeat: Duration::from_millis(50),
        io_timeout: Duration::from_secs(2),
    }
}

/// One in-process serve node: durable store, cluster state, replication
/// hub and an HTTP server wired the way `main` wires them.
struct Node {
    dir: PathBuf,
    store: Arc<ObservationStore>,
    state: Arc<ClusterState>,
    hub_addr: String,
    http_addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Node {
    fn start(name: &str, role: Role, dir: &Path) -> Node {
        let servers = perfpred_bench::context::Experiments::servers();
        let (store, _) =
            ObservationStore::open(dir, LogOptions::default(), &servers, refit_opts()).unwrap();
        let store = Arc::new(store);
        let state = Arc::new(ClusterState::new(name, role, store.epoch().unwrap_or(0), 0));
        let hub = ReplicationHub::bind(
            "127.0.0.1",
            0,
            Arc::clone(&state),
            Arc::clone(&store),
            hub_cfg(),
        )
        .unwrap();
        let host = ModelHost::paper_with_registry(&CacheOptions::default(), store.registry());
        let app = App::with_store(
            host,
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(64),
            Shutdown::new(),
            Arc::clone(&store),
        )
        .with_cluster(Arc::clone(&state));
        // Plenty of workers: the router's pooled keep-alive connections
        // (client threads + health prober) each pin one for the node's
        // lifetime, and the test's direct byte-identity probes at the end
        // still need free capacity on top of them.
        let server = Server::bind("127.0.0.1", 0, app, 16, 2, 8, 64).unwrap();
        let http_addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let handle = thread::spawn(move || server.run().unwrap());
        Node {
            dir: dir.to_path_buf(),
            store,
            state,
            hub_addr: hub.addr().to_string(),
            http_addr,
            shutdown,
            handle: Some(handle),
        }
    }

    fn follow(&self, peers: Vec<String>, designated: bool, grace: Duration) {
        spawn_replicator(
            ReplicatorConfig {
                peers,
                grace,
                designated,
                lease_dir: self.dir.clone(),
                io_timeout: Duration::from_secs(1),
            },
            Arc::clone(&self.state),
            Arc::clone(&self.store),
        );
    }

    /// Stops the HTTP listener; the detached hub threads keep answering
    /// (with not-primary once the state is fenced), exactly like a dead
    /// process whose peers time out instead.
    fn stop_http(&mut self) {
        self.shutdown.request();
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

/// One HTTP exchange over a fresh close-delimited connection.
fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text.split_whitespace().nth(1)?.parse().ok()?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
    Some((status, body))
}

/// Like [`roundtrip`] but retries transport failures a few times.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    for _ in 0..5 {
        if let Some(found) = roundtrip(addr, method, path, body) {
            return Some(found);
        }
        thread::sleep(Duration::from_millis(5));
    }
    None
}

/// A synthetic AppServF measurement shaped like the paper's curves,
/// cycling through client counts on both sides of the knee.
fn observation_point(k: usize) -> (u32, f64) {
    let n_star = 186.0 * 7_020.0 / 1_000.0;
    let frac = 0.15 + 1.45 * ((k % 29) as f64) / 28.0;
    let n = (frac * n_star).round().max(1.0);
    let mrt = if frac < 1.0 {
        20.0 * (1.8 * frac).exp()
    } else {
        (7.0 * n / 1.3 - 6_000.0).max(100.0)
    };
    (n as u32, mrt)
}

#[derive(Default)]
struct Tally {
    predicts: u64,
    predict_ok: u64,
    observes_ok_before: u64,
    observes_ok_after: u64,
}

/// One client thread hammering the router until `stop` rises. `phase`
/// is 0 before the primary kill and 1 once the router has rediscovered a
/// writable node — observe successes are credited per phase so the test
/// can prove writes flowed both before and after failover.
fn client_loop(router: SocketAddr, t: usize, stop: &AtomicBool, phase: &AtomicUsize) -> Tally {
    let mut tally = Tally::default();
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        i += 1;
        if i.is_multiple_of(4) {
            let (a_n, a_mrt) = observation_point(t * 17 + i * 5);
            let (b_n, b_mrt) = observation_point(t * 17 + i * 5 + 13);
            let body = format!(
                r#"{{"batch": [{{"server": "AppServF", "clients": {a_n}, "mrt_ms": {a_mrt}}},
                     {{"server": "AppServF", "clients": {b_n}, "mrt_ms": {b_mrt}}}]}}"#,
            );
            let before = phase.load(Ordering::Relaxed) == 0;
            if let Some((200, _)) = call(router, "POST", "/observe", &body) {
                if before {
                    tally.observes_ok_before += 1;
                } else {
                    tally.observes_ok_after += 1;
                }
            }
        } else {
            let clients = 50 + ((t * 31 + i * 7) % 200);
            let body =
                format!(r#"{{"method": "lqns", "server": "AppServF", "clients": {clients}}}"#);
            tally.predicts += 1;
            match call(router, "POST", "/predict", &body) {
                Some((200, _)) => tally.predict_ok += 1,
                Some((status, text)) if tally.predicts - tally.predict_ok < 4 => {
                    eprintln!("predict failed: {status} {}", &text[..text.len().min(160)]);
                }
                other => {
                    if tally.predicts - tally.predict_ok < 4 {
                        eprintln!("predict failed: {other:?}");
                    }
                }
            }
        }
        thread::sleep(Duration::from_millis(1));
    }
    tally
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn three_node_failover_under_faulted_replication_keeps_serving() {
    faults::install(Some(Arc::new(
        FaultPlan::parse(FAULT_SPEC, FAULT_SEED).unwrap(),
    )));

    // Deadlock watchdog: abort loudly rather than hang the harness.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(300);
            while Instant::now() < deadline {
                if done.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(100));
            }
            eprintln!("cluster test deadlocked: 300s elapsed without completing");
            std::process::abort();
        })
    };

    let dir_a = scratch("a");
    let dir_b = scratch("b");
    let dir_c = scratch("c");
    let mut node_a = Node::start("node-a", Role::Primary, &dir_a);
    let node_b = Node::start("node-b", Role::Follower, &dir_b);
    let node_c = Node::start("node-c", Role::Follower, &dir_c);
    node_b.follow(
        vec![node_a.hub_addr.clone(), node_c.hub_addr.clone()],
        true,
        Duration::from_millis(500),
    );
    node_c.follow(
        vec![node_a.hub_addr.clone(), node_b.hub_addr.clone()],
        false,
        Duration::from_secs(3600),
    );

    let router = RouterServer::bind(RouterConfig {
        upstreams: vec![
            node_a.http_addr.to_string(),
            node_b.http_addr.to_string(),
            node_c.http_addr.to_string(),
        ],
        probe_interval: Duration::from_millis(100),
        io_timeout: Duration::from_secs(5),
        ..RouterConfig::default()
    })
    .unwrap();
    let router_addr = router.local_addr();
    thread::spawn(move || router.run());

    // Wait for the prober to find the primary: the first observe that
    // answers 200 proves the write path is wired end to end.
    wait_until(
        "router to find the primary",
        Duration::from_secs(10),
        || {
            matches!(
                roundtrip(
                    router_addr,
                    "POST",
                    "/observe",
                    r#"{"batch": [{"server": "AppServF", "clients": 200, "mrt_ms": 25.0}]}"#,
                ),
                Some((200, _))
            )
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let phase = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let phase = Arc::clone(&phase);
            thread::spawn(move || client_loop(router_addr, t, &stop, &phase))
        })
        .collect();

    // Let replicated load flow, then kill the primary mid-run: fence its
    // state (its hub stops streaming, like a dead process) and stop its
    // HTTP listener (router probes start failing).
    thread::sleep(Duration::from_secs(1));
    node_a.state.fence();
    node_a.stop_http();

    wait_until(
        "designated follower takeover",
        Duration::from_secs(20),
        || node_b.state.role() == Role::Primary,
    );
    assert_eq!(node_b.state.epoch(), 1, "takeover bumps the epoch");
    assert!(metrics::counter("cluster.takeovers").get() >= 1);

    // The router must rediscover the writable node on its own.
    wait_until(
        "router to re-find a primary",
        Duration::from_secs(20),
        || {
            matches!(
                roundtrip(
                    router_addr,
                    "POST",
                    "/observe",
                    r#"{"batch": [{"server": "AppServF", "clients": 300, "mrt_ms": 30.0}]}"#,
                ),
                Some((200, _))
            )
        },
    );
    phase.store(1, Ordering::Relaxed);

    thread::sleep(Duration::from_millis(1500));
    stop.store(true, Ordering::Relaxed);
    let mut total = Tally::default();
    for h in handles {
        let t = h.join().unwrap();
        total.predicts += t.predicts;
        total.predict_ok += t.predict_ok;
        total.observes_ok_before += t.observes_ok_before;
        total.observes_ok_after += t.observes_ok_after;
    }

    // 1. Availability through the router: ≥ 99% of predictions answered
    //    200 across the whole run, primary kill included.
    let availability = total.predict_ok as f64 / total.predicts as f64;
    assert!(
        availability >= 0.99,
        "availability {availability:.4} ({} of {})",
        total.predict_ok,
        total.predicts
    );

    // 2. Writes flowed in both regimes.
    assert!(total.observes_ok_before > 0, "no observes before the kill");
    assert!(total.observes_ok_after > 0, "no observes after failover");

    // 3. The armed replication faults actually bit, and replication still
    //    converged: C follows the new primary B to identical state.
    assert!(
        metrics::counter("cluster.injected_conn_drops").get() > 0
            || metrics::counter("cluster.injected_partial_frames").get() > 0,
        "the replication fault plan never fired"
    );
    faults::install(None); // quiesce: let convergence finish cleanly
    wait_until("C to converge to B", Duration::from_secs(60), || {
        node_c.store.log_len() == node_b.store.log_len()
            && node_c.store.registry().version() == node_b.store.registry().version()
    });
    assert_eq!(node_c.store.epoch(), Some(1), "C adopted the new epoch");

    // 4. Byte-identical serving state on the survivors: /models verbatim,
    //    and /predict verbatim (asked twice so both answers are cache
    //    hits — the steady-state path).
    let models_b = call(node_b.http_addr, "GET", "/models", "").unwrap();
    let models_c = call(node_c.http_addr, "GET", "/models", "").unwrap();
    assert_eq!(models_b, models_c, "/models must match byte for byte");
    let probe = r#"{"method": "lqns", "server": "AppServF", "clients": 333}"#;
    let _ = call(node_b.http_addr, "POST", "/predict", probe).unwrap();
    let _ = call(node_c.http_addr, "POST", "/predict", probe).unwrap();
    let predict_b = call(node_b.http_addr, "POST", "/predict", probe).unwrap();
    let predict_c = call(node_c.http_addr, "POST", "/predict", probe).unwrap();
    assert_eq!(predict_b, predict_c, "/predict must match byte for byte");

    // 5. The old primary restarts and asks the cluster before serving:
    //    whatever the outcome (clean prefix → demoted, divergent tail →
    //    fenced), it must never come back writable.
    let restarted = Arc::new(ClusterState::new(
        "node-a",
        Role::Primary,
        node_a.store.epoch().unwrap_or(0),
        0,
    ));
    let outcome = rejoin_check(std::slice::from_ref(&node_b.hub_addr), &restarted, &node_a.store);
    assert_ne!(
        outcome,
        RejoinOutcome::Primary,
        "old primary must step down"
    );
    assert!(!restarted.is_writable());

    done.store(true, Ordering::Relaxed);
    watchdog.join().unwrap();
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
    std::fs::remove_dir_all(&dir_c).unwrap();
}
