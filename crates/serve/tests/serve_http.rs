//! End-to-end tests: a real daemon on an ephemeral port, raw TCP clients,
//! the full worker/solver/drain machinery engaged.

use perfpred_core::{CacheOptions, Json};
use perfpred_resman::RuntimeOptions;
use perfpred_serve::admission::AdmissionController;
use perfpred_serve::batch::JobQueue;
use perfpred_serve::router::App;
use perfpred_serve::{ModelHost, Server, Shutdown};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;

struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(cache: CacheOptions) -> Daemon {
        let app = App::new(
            ModelHost::paper(&cache),
            AdmissionController::new(RuntimeOptions::default()).unwrap(),
            JobQueue::new(256),
            Shutdown::new(),
        );
        let server = Server::bind("127.0.0.1", 0, app, 4, 2, 16, 64).unwrap();
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let handle = thread::spawn(move || server.run().unwrap());
        Daemon {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.request();
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

/// One request over a fresh connection; returns (status, body).
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status line in {raw:?}"))
        .parse()
        .unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> Json {
    Json::parse(body).unwrap()
}

#[test]
fn healthz_predict_plan_and_metrics_over_the_wire() {
    let d = Daemon::start(CacheOptions::default());

    let (status, body) = call(d.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json(&body).get("status").and_then(Json::as_str), Some("ok"));

    // An lqns predict goes through the real solver pool.
    let (status, body) = call(
        d.addr,
        "POST",
        "/predict",
        r#"{"method": "lqns", "server": "AppServF", "clients": 250}"#,
    );
    assert_eq!(status, 200, "{body}");
    let first = json(&body);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let mrt = first
        .get("prediction")
        .and_then(|p| p.get("mrt_ms"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(mrt > 0.0);

    // Same key again: a cache hit with identical bits.
    let (status, body) = call(
        d.addr,
        "POST",
        "/predict",
        r#"{"method": "lqns", "server": "AppServF", "clients": 250}"#,
    );
    assert_eq!(status, 200);
    let second = json(&body);
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        second
            .get("prediction")
            .and_then(|p| p.get("mrt_ms"))
            .and_then(Json::as_f64)
            .unwrap()
            .to_bits(),
        mrt.to_bits()
    );

    // A plan over the paper pool.
    let (status, body) = call(
        d.addr,
        "POST",
        "/plan",
        r#"{"method": "hybrid", "total_clients": 600, "slack": 1.1}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(!json(&body)
        .get("servers")
        .and_then(Json::as_arr)
        .unwrap()
        .is_empty());

    // Metrics exposition includes the endpoint counters we just bumped.
    let (status, body) = call(d.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("serve_http_requests"), "{body}");
    assert!(body.contains("predcache_"), "{body}");
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let d = Daemon::start(CacheOptions::default());
    let mut stream = TcpStream::connect(d.addr).unwrap();
    let body = r#"{"method": "hybrid", "clients": 80}"#;
    for i in 0..5 {
        write!(
            stream,
            "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        // Read exactly one response (headers + declared body length).
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).unwrap();
            buf.extend_from_slice(&byte);
        }
        let head = String::from_utf8_lossy(&buf).to_string();
        assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut rest = vec![0u8; len];
        stream.read_exact(&mut rest).unwrap();
        let payload = json(std::str::from_utf8(&rest).unwrap());
        assert_eq!(
            payload.get("cached").and_then(Json::as_bool),
            Some(i > 0),
            "request {i}"
        );
    }
}

#[test]
fn concurrent_clients_get_identical_cached_answers() {
    let d = Daemon::start(CacheOptions {
        client_quantum: 25,
        ..Default::default()
    });
    let mut handles = Vec::new();
    for t in 0..8 {
        let addr = d.addr;
        handles.push(thread::spawn(move || {
            let mut bits = Vec::new();
            for i in 0..10 {
                // Client counts within one quantum bucket: every request
                // must observe the single memoized solve for that bucket.
                let clients = 290 + ((t + i) % 10);
                let body =
                    format!(r#"{{"method": "lqns", "server": "AppServVF", "clients": {clients}}}"#);
                let (status, reply) = call(addr, "POST", "/predict", &body);
                assert_eq!(status, 200, "{reply}");
                let mrt = json(&reply)
                    .get("prediction")
                    .and_then(|p| p.get("mrt_ms"))
                    .and_then(Json::as_f64)
                    .unwrap();
                bits.push(mrt.to_bits());
            }
            bits
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.dedup();
    assert_eq!(
        all.len(),
        1,
        "every quantized request must share one memoized solve"
    );
}

#[test]
fn admission_rejection_is_a_structured_503_end_to_end() {
    let d = Daemon::start(CacheOptions::default());
    let (status, body) = call(
        d.addr,
        "POST",
        "/predict",
        r#"{"method": "lqns", "server": "AppServS", "clients": 900, "goal_ms": 150}"#,
    );
    assert_eq!(status, 503, "{body}");
    let j = json(&body);
    assert_eq!(j.get("admitted").and_then(Json::as_bool), Some(false));
    assert!(j.get("predicted_mrt_ms").and_then(Json::as_f64).unwrap() > 150.0 * 0.95);
    assert_eq!(j.get("goal_ms").and_then(Json::as_f64), Some(150.0));
    assert_eq!(j.get("threshold").and_then(Json::as_f64), Some(0.05));
}

#[test]
fn post_shutdown_drains_and_joins() {
    let mut d = Daemon::start(CacheOptions::default());
    let (status, body) = call(d.addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(
        json(&body).get("draining").and_then(Json::as_bool),
        Some(true)
    );
    // run() must return on its own — join without requesting again.
    d.handle.take().unwrap().join().unwrap();
    // New connections are refused once the listener is gone.
    assert!(TcpStream::connect(d.addr).is_err());
}
