#![warn(missing_docs)]

//! # perfpred-lqns
//!
//! Layered queuing network (LQN) modelling and analytic solving — a
//! from-scratch Rust implementation of the method the paper calls "the
//! layered queuing method, as implemented in the layered queuing network
//! solver (LQNS)" (§5).
//!
//! An LQN describes a distributed system as *tasks* (software servers with
//! finite thread pools) running on *processors*, offering *entries* that
//! make synchronous calls to entries of lower-layer tasks. Closed workload
//! enters through *reference tasks* — one per service class — whose
//! population and think time model the paper's closed-loop clients.
//!
//! ## Solver
//!
//! [`solve::solve`] computes an approximate analytic solution in the
//! method-of-layers family (Rolia & Sevcik), alternating:
//!
//! 1. **software contention** submodels — one closed multi-class queueing
//!    network per call-depth layer, whose stations are the layer's tasks
//!    (thread pools as multiservers) with service times equal to the
//!    current estimate of entry *thread-holding* times; and
//! 2. a **device contention** submodel whose stations are the processors.
//!
//! Each submodel is solved with Bard–Schweitzer approximate MVA
//! ([`mva::solve_amva`]); multiservers use the Seidmann transformation.
//! The fixed point iterates until the largest change in any chain's
//! predicted response time falls below a configurable absolute tolerance —
//! the paper's "convergence criterion of 20 ms" ([`solve::SolverOptions`]).
//!
//! ## Scope
//!
//! Synchronous rendezvous calls, FIFO/PS queueing, finite multiplicities
//! and closed chains — everything the paper's case study exercises — are
//! supported. Second phases, asynchronous forks/joins and request
//! forwarding are *not* (the paper itself only exercises synchronous
//! interactions; see DESIGN.md).
//!
//! ```
//! use perfpred_lqns::model::LqnModel;
//!
//! // A two-tier model: 100 clients -> app server (2 threads) -> database.
//! let mut b = LqnModel::builder();
//! let client_cpu = b.processor("client-cpu").infinite().finish();
//! let app_cpu = b.processor("app-cpu").finish();
//! let db_cpu = b.processor("db-cpu").finish();
//! let app = b.task("app", app_cpu).multiplicity(2).finish();
//! let db = b.task("db", db_cpu).finish();
//! let serve = b.entry("serve", app).demand_ms(5.0).finish();
//! let query = b.entry("query", db).demand_ms(1.0).finish();
//! b.call(serve, query, 1.14);
//! let clients = b.reference_task("clients", client_cpu, 100, 7_000.0).finish();
//! let think = b.entry("cycle", clients).demand_ms(0.0).finish();
//! b.call(think, serve, 1.0);
//! let model = b.build().unwrap();
//!
//! let solution = perfpred_lqns::solve::solve(&model, &Default::default()).unwrap();
//! assert!(solution.converged);
//! assert!(solution.chain_throughput_rps[0] > 0.0);
//! ```

pub mod format;
pub mod model;
pub mod mva;
pub mod predictor;
pub mod results;
pub mod solve;
pub mod trade;

pub use model::{EntryId, LqnModel, LqnModelBuilder, Multiplicity, ProcessorId, TaskId};
pub use mva::{solve_amva_into, solve_mixed_with, AmvaWorkspace};
pub use predictor::LqnPredictor;
pub use results::SolverResult;
pub use solve::{solve, solve_with_pool, SolverOptions};
