//! Mean value analysis for closed multi-class queueing networks.
//!
//! Two solvers are provided:
//!
//! * [`solve_exact_single_chain`] — the textbook exact MVA recursion for a
//!   single closed chain over single-server queueing stations and delay
//!   stations; used as ground truth in tests and for small models;
//! * [`solve_amva`] — the Bard–Schweitzer approximate MVA fixed point for
//!   multiple chains, which is what the layered solver uses for its
//!   submodels. Multiserver stations are handled with the Seidmann
//!   transformation: an `m`-server station with per-chain demand `d`
//!   becomes a single queueing station with demand `d/m` plus a pure delay
//!   of `d·(m−1)/m`.
//!
//! Demands are *total per chain cycle* (visits × per-visit service time),
//! in milliseconds. Throughputs come back in cycles per millisecond.

use perfpred_core::PredictError;

/// How a station serves customers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationKind {
    /// A queueing station with `servers` identical servers (FIFO or PS —
    /// identical mean values under MVA's assumptions).
    Queueing {
        /// Number of identical servers at the station.
        servers: u32,
    },
    /// An infinite server: customers never queue, only spend their demand.
    Delay,
}

/// A service station in a closed network.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Station kind.
    pub kind: StationKind,
    /// Per-chain demand per cycle (visits × service time), ms.
    pub demands: Vec<f64>,
}

/// A closed multi-class queueing network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedNetwork {
    /// Population of each chain (customers). Fractional populations are
    /// permitted (useful for derived submodels).
    pub populations: Vec<f64>,
    /// Per-chain think time (pure delay outside all stations), ms.
    pub think_ms: Vec<f64>,
    /// The stations.
    pub stations: Vec<Station>,
}

impl ClosedNetwork {
    /// Number of chains.
    pub fn n_chains(&self) -> usize {
        self.populations.len()
    }

    fn validate(&self) -> Result<(), PredictError> {
        let k = self.n_chains();
        if self.think_ms.len() != k {
            return Err(PredictError::InvalidModel(format!(
                "think_ms has {} entries for {} chains",
                self.think_ms.len(),
                k
            )));
        }
        for (i, s) in self.stations.iter().enumerate() {
            if s.demands.len() != k {
                return Err(PredictError::InvalidModel(format!(
                    "station {i} has {} demands for {} chains",
                    s.demands.len(),
                    k
                )));
            }
            if s.demands.iter().any(|d| !d.is_finite() || *d < 0.0) {
                return Err(PredictError::InvalidModel(format!(
                    "station {i} has a negative or non-finite demand"
                )));
            }
            if let StationKind::Queueing { servers: 0 } = s.kind {
                return Err(PredictError::InvalidModel(format!(
                    "station {i} has zero servers"
                )));
            }
        }
        if self
            .populations
            .iter()
            .chain(&self.think_ms)
            .any(|v| !v.is_finite() || *v < 0.0)
        {
            return Err(PredictError::InvalidModel(
                "negative or non-finite population/think time".into(),
            ));
        }
        Ok(())
    }
}

/// The solution of a closed network.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaSolution {
    /// Residence time per chain per station (waiting + service, totalled
    /// over all visits in a cycle), ms. Indexed `[chain][station]`.
    pub residence_ms: Vec<Vec<f64>>,
    /// Response time per cycle per chain (sum of residences), ms.
    pub response_ms: Vec<f64>,
    /// Chain throughput, cycles per **millisecond**.
    pub throughput_per_ms: Vec<f64>,
    /// Mean number of chain-k customers at each station.
    pub queue_len: Vec<Vec<f64>>,
    /// Iterations used (1 for exact MVA).
    pub iterations: usize,
}

impl MvaSolution {
    /// Total utilisation of station `s` (Σ_k X_k·D_k,s / servers); delay
    /// stations report mean concurrency instead.
    pub fn utilization(&self, net: &ClosedNetwork, s: usize) -> f64 {
        let raw: f64 = (0..net.n_chains())
            .map(|k| self.throughput_per_ms[k] * net.stations[s].demands[k])
            .sum();
        match net.stations[s].kind {
            StationKind::Queueing { servers } => raw / f64::from(servers),
            StationKind::Delay => raw,
        }
    }
}

/// Exact MVA for one closed chain over single-server queueing and delay
/// stations. The population must be a non-negative integer.
pub fn solve_exact_single_chain(net: &ClosedNetwork) -> Result<MvaSolution, PredictError> {
    net.validate()?;
    if net.n_chains() != 1 {
        return Err(PredictError::InvalidModel(
            "exact single-chain MVA requires exactly one chain".into(),
        ));
    }
    for (i, s) in net.stations.iter().enumerate() {
        if let StationKind::Queueing { servers } = s.kind {
            if servers != 1 {
                return Err(PredictError::InvalidModel(format!(
                    "exact single-chain MVA supports only single-server stations (station {i} has {servers})"
                )));
            }
        }
    }
    let n = net.populations[0];
    if (n.fract()).abs() > 1e-9 {
        return Err(PredictError::InvalidModel(
            "exact MVA requires an integer population".into(),
        ));
    }
    let n = n.round() as u64;
    let z = net.think_ms[0];
    let m = net.stations.len();
    let mut q = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    let mut x = 0.0f64;
    for pop in 1..=n {
        for s in 0..m {
            let d = net.stations[s].demands[0];
            w[s] = match net.stations[s].kind {
                StationKind::Queueing { .. } => d * (1.0 + q[s]),
                StationKind::Delay => d,
            };
        }
        let r: f64 = w.iter().sum();
        x = pop as f64 / (z + r);
        for s in 0..m {
            q[s] = x * w[s];
        }
    }
    let r: f64 = w.iter().sum();
    Ok(MvaSolution {
        residence_ms: vec![w],
        response_ms: vec![r],
        throughput_per_ms: vec![x],
        queue_len: vec![q],
        iterations: 1,
    })
}

/// Options for the Bard–Schweitzer fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmvaOptions {
    /// Convergence tolerance on queue lengths.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Damping factor in (0, 1]: new = old + damping·(computed − old).
    pub damping: f64,
}

impl Default for AmvaOptions {
    fn default() -> Self {
        AmvaOptions {
            tolerance: 1e-8,
            max_iterations: 20_000,
            damping: 0.7,
        }
    }
}

/// Reusable flat state for the Bard–Schweitzer fixed point.
///
/// One workspace serves any sequence of networks: every buffer is a
/// single `Vec<f64>` indexed `[chain * stations + station]` whose
/// capacity only ever grows, so a warm [`solve_amva_into`] performs no
/// heap allocation at all. After a successful solve the workspace holds
/// the solution (see the accessors) and remembers the converged queue
/// lengths; the next solve over the *same shape* starts the fixed point
/// from those, scaled per chain to the new population. Warm starts never
/// change the converged answer — the Bard–Schweitzer fixed point does
/// not depend on its starting point — only how many iterations reaching
/// it takes, which is what makes population sweeps (calibration
/// campaigns, max-throughput searches, resman cost sweeps) cheap. Call
/// [`AmvaWorkspace::invalidate`] to force the next solve cold.
#[derive(Debug, Clone, Default)]
pub struct AmvaWorkspace {
    kn: usize,
    sn: usize,
    /// Seidmann-transformed queueing demand per chain per station.
    qdemand: Vec<f64>,
    /// Queue lengths — the fixed-point state, kept between solves for
    /// warm starts.
    q: Vec<f64>,
    /// Arrival-theorem waiting-time estimate.
    w: Vec<f64>,
    /// Final residence times (waiting + Seidmann delay folded back).
    residence: Vec<f64>,
    /// Per-station total queue over all chains, updated incrementally as
    /// each chain's queue moves instead of rebuilt every iteration.
    totals: Vec<f64>,
    /// Per-chain Seidmann extra delay.
    extra_delay: Vec<f64>,
    /// Per-chain response time.
    response: Vec<f64>,
    /// Per-chain throughput, cycles per ms.
    x: Vec<f64>,
    /// Per-station open-load utilisation (all zero for closed solves).
    rho_open: Vec<f64>,
    /// Whether each station queues (false = pure delay).
    is_queueing: Vec<bool>,
    /// Populations of the last converged solve — the warm-start scaling
    /// reference.
    prev_pop: Vec<f64>,
    /// True when `q` holds a converged solution of the current shape.
    warm: bool,
    /// Iterations the last solve used.
    iterations: usize,
}

impl AmvaWorkspace {
    /// An empty workspace; buffers are sized by the first solve.
    pub fn new() -> Self {
        AmvaWorkspace::default()
    }

    /// Sizes every buffer for a `kn`-chain, `sn`-station network.
    /// Growth-only on capacity; changing shape discards warm-start state.
    fn ensure(&mut self, kn: usize, sn: usize) {
        if kn != self.kn || sn != self.sn {
            self.warm = false;
            self.kn = kn;
            self.sn = sn;
        }
        self.qdemand.resize(kn * sn, 0.0);
        self.q.resize(kn * sn, 0.0);
        self.w.resize(kn * sn, 0.0);
        self.residence.resize(kn * sn, 0.0);
        self.totals.resize(sn, 0.0);
        self.extra_delay.resize(kn, 0.0);
        self.response.resize(kn, 0.0);
        self.x.resize(kn, 0.0);
        self.rho_open.resize(sn, 0.0);
        self.is_queueing.resize(sn, false);
        self.prev_pop.resize(kn, 0.0);
    }

    /// Forgets the previous solution; the next solve starts cold.
    pub fn invalidate(&mut self) {
        self.warm = false;
    }

    /// True when the next same-shape solve will warm-start.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Iterations used by the last solve.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Response time per chain from the last solve, ms.
    pub fn response_ms(&self) -> &[f64] {
        &self.response[..self.kn]
    }

    /// Throughput per chain from the last solve, cycles per ms.
    pub fn throughput_per_ms(&self) -> &[f64] {
        &self.x[..self.kn]
    }

    /// Residence times of chain `k` at every station, ms.
    pub fn residence_ms(&self, k: usize) -> &[f64] {
        &self.residence[k * self.sn..(k + 1) * self.sn]
    }

    /// Mean chain-`k` queue length at every station.
    pub fn queue_len(&self, k: usize) -> &[f64] {
        &self.q[k * self.sn..(k + 1) * self.sn]
    }

    /// Copies the last solve out into an owned [`MvaSolution`].
    pub fn to_solution(&self) -> MvaSolution {
        MvaSolution {
            residence_ms: (0..self.kn)
                .map(|k| self.residence_ms(k).to_vec())
                .collect(),
            response_ms: self.response_ms().to_vec(),
            throughput_per_ms: self.throughput_per_ms().to_vec(),
            queue_len: (0..self.kn).map(|k| self.queue_len(k).to_vec()).collect(),
            iterations: self.iterations,
        }
    }

    /// Cold-starts chain `k`: its population spread evenly over the
    /// queueing stations it visits, zero elsewhere.
    fn init_chain_cold(&mut self, k: usize, nk: f64) {
        let row = k * self.sn;
        let visited = (0..self.sn)
            .filter(|&s| self.is_queueing[s] && self.qdemand[row + s] > 0.0)
            .count();
        let share = if visited > 0 && nk > 0.0 {
            (nk / visited as f64).min(nk)
        } else {
            0.0
        };
        for s in 0..self.sn {
            self.q[row + s] = if self.is_queueing[s] && self.qdemand[row + s] > 0.0 {
                share
            } else {
                0.0
            };
        }
    }
}

/// The Bard–Schweitzer fixed point over workspace state. `use_rho` makes
/// queueing-station demands inflate by `1/(1 − ρ_open[s])` (the mixed
/// decomposition); `ws.rho_open` must then hold per-station open
/// utilisations `< 1`. Allocation-free except for error messages.
fn amva_fixed_point(
    net: &ClosedNetwork,
    opts: &AmvaOptions,
    ws: &mut AmvaWorkspace,
    use_rho: bool,
) -> Result<(), PredictError> {
    let kn = ws.kn;
    let sn = ws.sn;

    // Seidmann transformation (+ optional open-load inflation): per-station
    // effective queueing demand and extra per-chain delay.
    ws.extra_delay[..kn].fill(0.0);
    for (s, st) in net.stations.iter().enumerate() {
        let inflation = if use_rho {
            1.0 / (1.0 - ws.rho_open[s])
        } else {
            1.0
        };
        match st.kind {
            StationKind::Queueing { servers } => {
                ws.is_queueing[s] = true;
                let m = f64::from(servers);
                for (k, d) in st.demands.iter().enumerate() {
                    let d = d * inflation;
                    ws.qdemand[k * sn + s] = d / m;
                    ws.extra_delay[k] += d * (m - 1.0) / m;
                }
            }
            StationKind::Delay => {
                ws.is_queueing[s] = false;
                for (k, d) in st.demands.iter().enumerate() {
                    ws.qdemand[k * sn + s] = *d;
                }
            }
        }
    }

    // Initial queue lengths: the previous converged solution scaled to the
    // new populations when available, else an even cold-start spread.
    // Stale mass at stations a chain no longer visits is harmless — the
    // damped update decays it geometrically toward the fixed point.
    for k in 0..kn {
        let nk = net.populations[k];
        if ws.warm && nk > 0.0 && ws.prev_pop[k] > 0.0 {
            let ratio = nk / ws.prev_pop[k];
            let row = k * sn;
            for s in 0..sn {
                ws.q[row + s] = (ws.q[row + s] * ratio).min(nk);
            }
        } else {
            ws.init_chain_cold(k, nk);
        }
    }
    for s in 0..sn {
        ws.totals[s] = (0..kn).map(|k| ws.q[k * sn + s]).sum();
    }

    let mut iterations = 0;
    for iter in 1..=opts.max_iterations {
        iterations = iter;
        let mut max_delta = 0.0f64;
        for k in 0..kn {
            let nk = net.populations[k];
            let row = k * sn;
            if nk <= 0.0 {
                ws.x[k] = 0.0;
                ws.w[row..row + sn].fill(0.0);
                continue;
            }
            let scale = (nk - 1.0).max(0.0) / nk;
            let mut r = ws.extra_delay[k];
            for s in 0..sn {
                let d = ws.qdemand[row + s];
                if d == 0.0 {
                    ws.w[row + s] = 0.0;
                    continue;
                }
                ws.w[row + s] = if ws.is_queueing[s] {
                    // Queue seen on arrival: others' queues in full, own
                    // chain scaled by (N_k − 1)/N_k (Schweitzer estimate).
                    let seen = ws.totals[s] - ws.q[row + s] + scale * ws.q[row + s];
                    d * (1.0 + seen)
                } else {
                    d
                };
                r += ws.w[row + s];
            }
            let cycle = net.think_ms[k] + r;
            ws.x[k] = if cycle > 0.0 { nk / cycle } else { 0.0 };
            for s in 0..sn {
                let old = ws.q[row + s];
                let target = ws.x[k] * ws.w[row + s];
                let updated = old + opts.damping * (target - old);
                max_delta = max_delta.max((updated - old).abs());
                ws.q[row + s] = updated;
                ws.totals[s] += updated - old;
            }
        }
        if max_delta < opts.tolerance {
            break;
        }
    }
    ws.iterations = iterations;

    // Final pass to report residence times consistent with the fixed point,
    // and fold the Seidmann extra delay back into the multiserver station's
    // residence so callers see the station's full residence time.
    let mut finite = true;
    for k in 0..kn {
        let row = k * sn;
        ws.response[k] = 0.0;
        for (s, st) in net.stations.iter().enumerate() {
            let extra = match st.kind {
                StationKind::Queueing { servers } => {
                    let m = f64::from(servers);
                    let inflation = if use_rho {
                        1.0 / (1.0 - ws.rho_open[s])
                    } else {
                        1.0
                    };
                    st.demands[k] * inflation * (m - 1.0) / m
                }
                StationKind::Delay => 0.0,
            };
            ws.residence[row + s] = ws.w[row + s] + extra;
            ws.response[k] += ws.residence[row + s];
        }
        finite &= ws.response[k].is_finite();
    }
    if !finite {
        ws.warm = false;
        return Err(PredictError::Solver(
            "AMVA produced a non-finite response time".into(),
        ));
    }
    ws.prev_pop[..kn].copy_from_slice(&net.populations);
    ws.warm = true;
    Ok(())
}

/// Bard–Schweitzer approximate MVA into a reusable workspace. After a
/// successful return the workspace exposes the solution through its
/// accessors; a warm workspace performs zero heap allocations here.
pub fn solve_amva_into(
    net: &ClosedNetwork,
    opts: &AmvaOptions,
    ws: &mut AmvaWorkspace,
) -> Result<(), PredictError> {
    net.validate()?;
    ws.ensure(net.n_chains(), net.stations.len());
    amva_fixed_point(net, opts, ws, false)
}

/// Bard–Schweitzer approximate MVA for a closed multi-class network with
/// multiserver stations (Seidmann transformation). Convenience wrapper
/// over [`solve_amva_into`] with a throwaway workspace; hot paths should
/// hold a workspace and call [`solve_amva_into`] directly.
pub fn solve_amva(net: &ClosedNetwork, opts: &AmvaOptions) -> Result<MvaSolution, PredictError> {
    let mut ws = AmvaWorkspace::new();
    solve_amva_into(net, opts, &mut ws)?;
    Ok(ws.to_solution())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(net_demand: f64, servers: u32, pop: f64, think: f64) -> ClosedNetwork {
        ClosedNetwork {
            populations: vec![pop],
            think_ms: vec![think],
            stations: vec![Station {
                kind: StationKind::Queueing { servers },
                demands: vec![net_demand],
            }],
        }
    }

    #[test]
    fn exact_single_customer_sees_no_queue() {
        // One customer, one station: R = D, X = 1/(Z+D).
        let net = single(10.0, 1, 1.0, 90.0);
        let sol = solve_exact_single_chain(&net).unwrap();
        assert!((sol.response_ms[0] - 10.0).abs() < 1e-12);
        assert!((sol.throughput_per_ms[0] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_closed_form_machine_repairman() {
        // N=2, Z=0, one station D=1: known exact MVA values.
        // n=1: W=1, X=1, Q=1. n=2: W=1·(1+1)=2, X=2/2=1, Q=2.
        let net = single(1.0, 1, 2.0, 0.0);
        let sol = solve_exact_single_chain(&net).unwrap();
        assert!((sol.response_ms[0] - 2.0).abs() < 1e-12);
        assert!((sol.throughput_per_ms[0] - 1.0).abs() < 1e-12);
        assert!((sol.queue_len[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_throughput_saturates_at_service_rate() {
        let net = single(5.0, 1, 500.0, 100.0);
        let sol = solve_exact_single_chain(&net).unwrap();
        // Bottleneck bound: X ≤ 1/D = 0.2 per ms.
        assert!(sol.throughput_per_ms[0] <= 0.2 + 1e-9);
        assert!(sol.throughput_per_ms[0] > 0.199);
        // Little's law on the full loop: N = X·(Z+R).
        let n = sol.throughput_per_ms[0] * (100.0 + sol.response_ms[0]);
        assert!((n - 500.0).abs() < 1e-6);
    }

    #[test]
    fn exact_delay_station_adds_no_queueing() {
        let net = ClosedNetwork {
            populations: vec![10.0],
            think_ms: vec![0.0],
            stations: vec![
                Station {
                    kind: StationKind::Delay,
                    demands: vec![50.0],
                },
                Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: vec![1.0],
                },
            ],
        };
        let sol = solve_exact_single_chain(&net).unwrap();
        // The delay station always contributes exactly its demand.
        assert!((sol.residence_ms[0][0] - 50.0).abs() < 1e-12);
        assert!(sol.residence_ms[0][1] >= 1.0);
    }

    #[test]
    fn exact_rejects_multichain_and_multiserver() {
        let bad = ClosedNetwork {
            populations: vec![1.0, 1.0],
            think_ms: vec![0.0, 0.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![1.0, 1.0],
            }],
        };
        assert!(solve_exact_single_chain(&bad).is_err());
        let multi = single(1.0, 2, 5.0, 0.0);
        assert!(solve_exact_single_chain(&multi).is_err());
        let frac = single(1.0, 1, 2.5, 0.0);
        assert!(solve_exact_single_chain(&frac).is_err());
    }

    #[test]
    fn amva_close_to_exact_for_single_chain() {
        for &(d, n, z) in &[(5.0, 20.0, 100.0), (1.0, 4.0, 0.0), (10.0, 200.0, 1_000.0)] {
            let net = single(d, 1, n, z);
            let exact = solve_exact_single_chain(&net).unwrap();
            let approx = solve_amva(&net, &AmvaOptions::default()).unwrap();
            let rel = (approx.throughput_per_ms[0] - exact.throughput_per_ms[0]).abs()
                / exact.throughput_per_ms[0];
            assert!(rel < 0.03, "throughput off by {rel} for d={d} n={n} z={z}");
        }
    }

    #[test]
    fn amva_single_customer_exact() {
        // With N=1 the Schweitzer estimate is exact: R = D.
        let net = single(10.0, 1, 1.0, 90.0);
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        assert!((sol.response_ms[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn amva_multiserver_below_single_server_response() {
        let one = single(10.0, 1, 50.0, 100.0);
        let four = single(10.0, 4, 50.0, 100.0);
        let r1 = solve_amva(&one, &AmvaOptions::default()).unwrap();
        let r4 = solve_amva(&four, &AmvaOptions::default()).unwrap();
        assert!(r4.response_ms[0] < r1.response_ms[0]);
        assert!(r4.throughput_per_ms[0] > r1.throughput_per_ms[0]);
        // 4 servers quadruple the saturation throughput bound.
        assert!(r4.throughput_per_ms[0] <= 4.0 / 10.0 + 1e-9);
    }

    #[test]
    fn amva_multiserver_light_load_is_pure_service() {
        // A single customer on an m-server station must see exactly D.
        let net = single(12.0, 3, 1.0, 0.0);
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        assert!((sol.response_ms[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn amva_two_chains_share_capacity() {
        let net = ClosedNetwork {
            populations: vec![30.0, 30.0],
            think_ms: vec![100.0, 100.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![4.0, 4.0],
            }],
        };
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        // Symmetric chains get symmetric results — up to the convergence
        // tolerance: chains update in sequence against live totals
        // (Gauss–Seidel), so exact symmetry is not preserved mid-iteration.
        assert!((sol.throughput_per_ms[0] - sol.throughput_per_ms[1]).abs() < 1e-6);
        assert!((sol.response_ms[0] - sol.response_ms[1]).abs() < 1e-6);
        // Combined throughput bounded by station capacity.
        let total = sol.throughput_per_ms[0] + sol.throughput_per_ms[1];
        assert!(total <= 1.0 / 4.0 + 1e-9);
        assert!(total > 0.24);
    }

    #[test]
    fn amva_asymmetric_chains() {
        let net = ClosedNetwork {
            populations: vec![10.0, 40.0],
            think_ms: vec![0.0, 0.0],
            stations: vec![
                Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: vec![2.0, 1.0],
                },
                Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: vec![0.5, 3.0],
                },
            ],
        };
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        // Little's law per chain: N_k = X_k (Z_k + R_k).
        for k in 0..2 {
            let n = sol.throughput_per_ms[k] * sol.response_ms[k];
            assert!(
                (n - net.populations[k]).abs() / net.populations[k] < 1e-4,
                "chain {k}"
            );
        }
    }

    #[test]
    fn amva_zero_population_chain_is_inert() {
        let net = ClosedNetwork {
            populations: vec![0.0, 10.0],
            think_ms: vec![50.0, 50.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![5.0, 5.0],
            }],
        };
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        assert_eq!(sol.throughput_per_ms[0], 0.0);
        assert!(sol.throughput_per_ms[1] > 0.0);
    }

    #[test]
    fn amva_utilization_reported() {
        let net = single(5.0, 1, 200.0, 100.0);
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        let u = sol.utilization(&net, 0);
        assert!(u > 0.99 && u <= 1.0 + 1e-9, "utilization {u}");
    }

    #[test]
    fn amva_response_grows_with_population() {
        let mut last = 0.0;
        for &n in &[10.0, 100.0, 400.0, 1_000.0] {
            let sol = solve_amva(&single(5.0, 1, n, 7_000.0), &AmvaOptions::default()).unwrap();
            assert!(sol.response_ms[0] >= last);
            last = sol.response_ms[0];
        }
        // Deep saturation: R ≈ N·D − Z.
        let n = 4_000.0;
        let sol = solve_amva(&single(5.0, 1, n, 7_000.0), &AmvaOptions::default()).unwrap();
        let asymptote = n * 5.0 - 7_000.0;
        assert!((sol.response_ms[0] - asymptote).abs() / asymptote < 0.02);
    }

    #[test]
    fn warm_start_matches_cold_start_across_population_sweep() {
        // One workspace rides the whole sweep; every point is checked
        // against a cold solve. The fixed point must not depend on the
        // starting queue lengths, only the iteration count may differ.
        let opts = AmvaOptions::default();
        let mut ws = AmvaWorkspace::new();
        let mut warm_iters = 0usize;
        let mut cold_iters = 0usize;
        for step in 0..30 {
            let n = 10.0 + 40.0 * f64::from(step);
            let net = ClosedNetwork {
                populations: vec![n, n / 4.0],
                think_ms: vec![7_000.0, 3_000.0],
                stations: vec![
                    Station {
                        kind: StationKind::Queueing { servers: 1 },
                        demands: vec![4.5, 9.0],
                    },
                    Station {
                        kind: StationKind::Queueing { servers: 2 },
                        demands: vec![1.1, 2.5],
                    },
                    Station {
                        kind: StationKind::Delay,
                        demands: vec![2.5, 2.5],
                    },
                ],
            };
            let cold = solve_amva(&net, &opts).unwrap();
            cold_iters += cold.iterations;
            solve_amva_into(&net, &opts, &mut ws).unwrap();
            warm_iters += ws.iterations();
            for k in 0..2 {
                let rel = (ws.response_ms()[k] - cold.response_ms[k]).abs()
                    / cold.response_ms[k].max(1e-9);
                assert!(rel < 1e-5, "n={n} chain {k}: warm differs by {rel}");
                let relx = (ws.throughput_per_ms()[k] - cold.throughput_per_ms[k]).abs()
                    / cold.throughput_per_ms[k].max(1e-12);
                assert!(relx < 1e-5, "n={n} chain {k}: throughput differs by {relx}");
            }
        }
        // The point of warm-starting: neighbouring populations converge in
        // fewer iterations than cold starts over the same sweep.
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} >= cold {cold_iters}"
        );
    }

    #[test]
    fn workspace_shape_change_and_invalidate_stay_correct() {
        let opts = AmvaOptions::default();
        let mut ws = AmvaWorkspace::new();
        // Solve a 2-chain net, then a 1-chain net (shape change → cold),
        // then the same net again warm, then invalidated.
        let two = ClosedNetwork {
            populations: vec![20.0, 5.0],
            think_ms: vec![100.0, 0.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![2.0, 3.0],
            }],
        };
        solve_amva_into(&two, &opts, &mut ws).unwrap();
        let one = single(5.0, 1, 50.0, 200.0);
        solve_amva_into(&one, &opts, &mut ws).unwrap();
        assert!(ws.is_warm());
        let warm = ws.to_solution();
        ws.invalidate();
        assert!(!ws.is_warm());
        solve_amva_into(&one, &opts, &mut ws).unwrap();
        let cold = ws.to_solution();
        let rel = (warm.response_ms[0] - cold.response_ms[0]).abs() / cold.response_ms[0];
        assert!(rel < 1e-5, "rel {rel}");
        let fresh = solve_amva(&one, &opts).unwrap();
        assert_eq!(cold.response_ms, fresh.response_ms);
    }

    #[test]
    fn warm_start_handles_population_going_to_zero_and_back() {
        let opts = AmvaOptions::default();
        let mut ws = AmvaWorkspace::new();
        let mk = |p0: f64, p1: f64| ClosedNetwork {
            populations: vec![p0, p1],
            think_ms: vec![50.0, 50.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![5.0, 5.0],
            }],
        };
        solve_amva_into(&mk(10.0, 10.0), &opts, &mut ws).unwrap();
        // Chain 0 empties: its stale queue must not poison chain 1.
        solve_amva_into(&mk(0.0, 10.0), &opts, &mut ws).unwrap();
        let expect = solve_amva(&mk(0.0, 10.0), &opts).unwrap();
        assert_eq!(ws.throughput_per_ms()[0], 0.0);
        let rel = (ws.response_ms()[1] - expect.response_ms[1]).abs() / expect.response_ms[1];
        assert!(rel < 1e-5, "rel {rel}");
        // And back to a positive population (prev_pop 0 → cold init).
        solve_amva_into(&mk(10.0, 10.0), &opts, &mut ws).unwrap();
        let expect = solve_amva(&mk(10.0, 10.0), &opts).unwrap();
        let rel = (ws.response_ms()[0] - expect.response_ms[0]).abs() / expect.response_ms[0];
        assert!(rel < 1e-5, "rel {rel}");
    }

    #[test]
    fn amva_validation_errors() {
        let mut net = single(5.0, 1, 10.0, 0.0);
        net.stations[0].demands = vec![5.0, 1.0];
        assert!(solve_amva(&net, &AmvaOptions::default()).is_err());

        let net2 = single(-1.0, 1, 10.0, 0.0);
        assert!(solve_amva(&net2, &AmvaOptions::default()).is_err());

        let net3 = single(1.0, 0, 10.0, 0.0);
        assert!(solve_amva(&net3, &AmvaOptions::default()).is_err());
    }
}

/// An open (Poisson-arrival) customer class in a mixed network.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenClass {
    /// Arrival rate, customers per millisecond.
    pub rate_per_ms: f64,
    /// Per-station demand per customer, ms.
    pub demands: Vec<f64>,
}

/// A mixed network: closed chains plus open classes sharing the stations.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedNetwork {
    /// The closed part (chains, think times, stations).
    pub closed: ClosedNetwork,
    /// The open classes.
    pub open: Vec<OpenClass>,
}

/// Solution of a mixed network.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSolution {
    /// The closed chains' solution (demands already include the open-load
    /// inflation).
    pub closed: MvaSolution,
    /// Residence time of each open class at each station, ms.
    pub open_residence_ms: Vec<Vec<f64>>,
    /// Total response time per open class, ms.
    pub open_response_ms: Vec<f64>,
}

/// Solves a mixed open/closed network with the standard decomposition:
/// open classes claim their utilisation first (stability required), closed
/// chains are solved by AMVA over demands inflated by `1/(1 − ρ_open)`,
/// and open-class residence times then see the closed queue lengths:
///
/// ```text
/// W_open[s] = D_open[s] · (1 + Q_closed[s]) / (1 − ρ_open[s])
/// ```
///
/// (multiservers via the Seidmann transformation on both sides).
pub fn solve_mixed(net: &MixedNetwork, opts: &AmvaOptions) -> Result<MixedSolution, PredictError> {
    let mut ws = AmvaWorkspace::new();
    solve_mixed_with(net, opts, &mut ws)
}

/// [`solve_mixed`] against a caller-held workspace: the closed-chain
/// fixed point runs entirely in the workspace's flat buffers (no clone of
/// the network, no per-solve state allocation) and warm-starts from the
/// workspace's previous solution when the shape matches. Only the
/// returned [`MixedSolution`] itself is allocated.
pub fn solve_mixed_with(
    net: &MixedNetwork,
    opts: &AmvaOptions,
    ws: &mut AmvaWorkspace,
) -> Result<MixedSolution, PredictError> {
    net.closed.validate()?;
    let sn = net.closed.stations.len();
    for (o, oc) in net.open.iter().enumerate() {
        if oc.demands.len() != sn {
            return Err(PredictError::InvalidModel(format!(
                "open class {o} has {} demands for {sn} stations",
                oc.demands.len()
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
        if !(oc.rate_per_ms >= 0.0) || oc.demands.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(PredictError::InvalidModel(format!(
                "open class {o} has a negative or non-finite rate/demand"
            )));
        }
    }

    ws.ensure(net.closed.n_chains(), sn);

    // Open utilisation per station (per server).
    for (s, st) in net.closed.stations.iter().enumerate() {
        let raw: f64 = net
            .open
            .iter()
            .map(|oc| oc.rate_per_ms * oc.demands[s])
            .sum();
        ws.rho_open[s] = match st.kind {
            StationKind::Queueing { servers } => raw / f64::from(servers),
            StationKind::Delay => 0.0,
        };
        if ws.rho_open[s] >= 0.999 {
            return Err(PredictError::Solver(format!(
                "open load saturates station {s} (rho = {:.3})",
                ws.rho_open[s]
            )));
        }
    }

    // Closed chains see service slowed by the open traffic: the fixed
    // point inflates queueing demands by 1/(1 − ρ_open) in place.
    amva_fixed_point(&net.closed, opts, ws, true)?;

    // Open residences against the closed queues.
    let mut open_residence = Vec::with_capacity(net.open.len());
    let mut open_response = Vec::with_capacity(net.open.len());
    for oc in &net.open {
        let mut per_station = Vec::with_capacity(sn);
        let mut total = 0.0;
        for (s, st) in net.closed.stations.iter().enumerate() {
            let d = oc.demands[s];
            let w = match st.kind {
                StationKind::Delay => d,
                StationKind::Queueing { servers } => {
                    let m = f64::from(servers);
                    let q_closed: f64 =
                        (0..net.closed.n_chains()).map(|k| ws.queue_len(k)[s]).sum();
                    // Seidmann: queueing part on d/m, the rest pure delay.
                    (d / m) * (1.0 + q_closed) / (1.0 - ws.rho_open[s]) + d * (m - 1.0) / m
                }
            };
            per_station.push(w);
            total += w;
        }
        open_residence.push(per_station);
        open_response.push(total);
    }

    Ok(MixedSolution {
        closed: ws.to_solution(),
        open_residence_ms: open_residence,
        open_response_ms: open_response,
    })
}

#[cfg(test)]
mod mixed_tests {
    use super::*;

    fn station(demands_closed: Vec<f64>, servers: u32) -> Station {
        Station {
            kind: StationKind::Queueing { servers },
            demands: demands_closed,
        }
    }

    #[test]
    fn open_only_matches_mm1() {
        // M/M/1: W = D / (1 − ρ).
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.08,
                demands: vec![10.0],
            }],
        };
        let sol = solve_mixed(&net, &AmvaOptions::default()).unwrap();
        let expect = 10.0 / (1.0 - 0.8);
        assert!(
            (sol.open_response_ms[0] - expect).abs() < 1e-9,
            "{}",
            sol.open_response_ms[0]
        );
    }

    #[test]
    fn open_load_slows_closed_chain() {
        let closed = ClosedNetwork {
            populations: vec![10.0],
            think_ms: vec![100.0],
            stations: vec![station(vec![5.0], 1)],
        };
        let quiet = solve_amva(&closed, &AmvaOptions::default()).unwrap();
        let busy = solve_mixed(
            &MixedNetwork {
                closed: closed.clone(),
                open: vec![OpenClass {
                    rate_per_ms: 0.1,
                    demands: vec![5.0],
                }],
            },
            &AmvaOptions::default(),
        )
        .unwrap();
        assert!(busy.closed.response_ms[0] > quiet.response_ms[0] * 1.5);
        // Closed throughput drops accordingly.
        assert!(busy.closed.throughput_per_ms[0] < quiet.throughput_per_ms[0]);
    }

    #[test]
    fn open_class_sees_closed_queue() {
        // A single closed customer adds queueing for the open stream.
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![5.0],
                think_ms: vec![0.0],
                stations: vec![station(vec![4.0], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.02,
                demands: vec![4.0],
            }],
        };
        let sol = solve_mixed(&net, &AmvaOptions::default()).unwrap();
        // Closed population ~5 queued at the station: open W >> D.
        assert!(
            sol.open_response_ms[0] > 4.0 * 3.0,
            "{}",
            sol.open_response_ms[0]
        );
    }

    #[test]
    fn saturating_open_load_rejected() {
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.2,
                demands: vec![10.0],
            }],
        };
        assert!(solve_mixed(&net, &AmvaOptions::default()).is_err());
    }

    #[test]
    fn multiserver_open_faster_than_single() {
        let mk = |servers| MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], servers)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.15,
                demands: vec![10.0],
            }],
        };
        let one = solve_mixed(&mk(2), &AmvaOptions::default()).unwrap();
        let four = solve_mixed(&mk(8), &AmvaOptions::default()).unwrap();
        assert!(four.open_response_ms[0] < one.open_response_ms[0]);
        // Never below the bare demand.
        assert!(four.open_response_ms[0] >= 10.0);
    }

    #[test]
    fn mixed_validation_errors() {
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.1,
                demands: vec![1.0, 2.0],
            }],
        };
        assert!(solve_mixed(&net, &AmvaOptions::default()).is_err());
        let neg = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: -0.1,
                demands: vec![1.0],
            }],
        };
        assert!(solve_mixed(&neg, &AmvaOptions::default()).is_err());
    }
}

/// Exact multi-class MVA over single-server queueing and delay stations,
/// by recursion over the population lattice with memoised queue lengths.
///
/// Cost is `∏(N_k + 1)` states; the function refuses networks with more
/// than `MAX_EXACT_STATES` states. Intended for validating the
/// Bard–Schweitzer approximation on small populations, where its error is
/// largest.
pub fn solve_exact_multiclass(
    net: &ClosedNetwork,
    populations: &[u32],
) -> Result<MvaSolution, PredictError> {
    const MAX_EXACT_STATES: u64 = 4_000_000;
    net.validate()?;
    let kn = net.n_chains();
    if populations.len() != kn {
        return Err(PredictError::InvalidModel(format!(
            "{} populations for {} chains",
            populations.len(),
            kn
        )));
    }
    for (k, (&n, &decl)) in populations.iter().zip(&net.populations).enumerate() {
        if (f64::from(n) - decl).abs() > 1e-9 {
            return Err(PredictError::InvalidModel(format!(
                "population mismatch for chain {k}: {n} vs declared {decl}"
            )));
        }
    }
    for (i, s) in net.stations.iter().enumerate() {
        if let StationKind::Queueing { servers } = s.kind {
            if servers != 1 {
                return Err(PredictError::InvalidModel(format!(
                    "exact multiclass MVA supports single-server stations only (station {i})"
                )));
            }
        }
    }
    let states: u64 = populations.iter().map(|&n| u64::from(n) + 1).product();
    if states > MAX_EXACT_STATES {
        return Err(PredictError::OutOfRange(format!(
            "exact MVA state space too large ({states} > {MAX_EXACT_STATES})"
        )));
    }

    let sn = net.stations.len();
    // Iterate the lattice in an order where every predecessor (n − e_k) is
    // already computed: mixed-radix counting does exactly that.
    let mut queues: std::collections::HashMap<Vec<u32>, Vec<f64>> =
        std::collections::HashMap::new();
    queues.insert(vec![0; kn], vec![0.0; sn]);

    let mut current = vec![0u32; kn];
    let mut last_w = vec![vec![0.0f64; sn]; kn];
    let mut last_x = vec![0.0f64; kn];
    loop {
        // Advance mixed-radix counter.
        let mut carry = true;
        for k in 0..kn {
            if !carry {
                break;
            }
            if current[k] < populations[k] {
                current[k] += 1;
                carry = false;
            } else {
                current[k] = 0;
            }
        }
        if carry {
            break; // wrapped: lattice exhausted
        }

        let mut q_here = vec![0.0f64; sn];
        let mut w = vec![vec![0.0f64; sn]; kn];
        let mut x = vec![0.0f64; kn];
        for k in 0..kn {
            if current[k] == 0 {
                continue;
            }
            let mut prev = current.clone();
            prev[k] -= 1;
            let q_prev = queues.get(&prev).expect("predecessor computed");
            let mut r = 0.0;
            for s in 0..sn {
                let d = net.stations[s].demands[k];
                w[k][s] = match net.stations[s].kind {
                    StationKind::Queueing { .. } => d * (1.0 + q_prev[s]),
                    StationKind::Delay => d,
                };
                r += w[k][s];
            }
            let cycle = net.think_ms[k] + r;
            x[k] = if cycle > 0.0 {
                f64::from(current[k]) / cycle
            } else {
                0.0
            };
        }
        for s in 0..sn {
            q_here[s] = (0..kn).map(|k| x[k] * w[k][s]).sum();
        }
        let at_target = current.iter().zip(populations).all(|(a, b)| a == b);
        if at_target {
            last_w = w;
            last_x = x;
        }
        queues.insert(current.clone(), q_here);
        if at_target {
            break;
        }
    }

    let target: Vec<u32> = populations.to_vec();
    let q_final = queues.remove(&target).unwrap_or_else(|| vec![0.0; sn]);
    let response: Vec<f64> = last_w.iter().map(|ws| ws.iter().sum()).collect();
    // Per-chain queue lengths at the final population.
    let queue_len: Vec<Vec<f64>> = (0..kn)
        .map(|k| (0..sn).map(|s| last_x[k] * last_w[k][s]).collect())
        .collect();
    let _ = q_final;
    Ok(MvaSolution {
        residence_ms: last_w,
        response_ms: response,
        throughput_per_ms: last_x,
        queue_len,
        iterations: 1,
    })
}

#[cfg(test)]
mod exact_multiclass_tests {
    use super::*;

    fn net(demands: Vec<Vec<f64>>, pops: Vec<f64>, think: Vec<f64>) -> ClosedNetwork {
        let kn = pops.len();
        let sn = demands[0].len();
        ClosedNetwork {
            populations: pops,
            think_ms: think,
            stations: (0..sn)
                .map(|s| Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: (0..kn).map(|k| demands[k][s]).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn reduces_to_single_chain_exact() {
        let n = net(vec![vec![5.0, 2.0]], vec![12.0], vec![100.0]);
        let multi = solve_exact_multiclass(&n, &[12]).unwrap();
        let single = solve_exact_single_chain(&n).unwrap();
        assert!((multi.throughput_per_ms[0] - single.throughput_per_ms[0]).abs() < 1e-12);
        assert!((multi.response_ms[0] - single.response_ms[0]).abs() < 1e-9);
    }

    #[test]
    fn symmetric_chains_get_symmetric_results() {
        let n = net(
            vec![vec![3.0, 1.0], vec![3.0, 1.0]],
            vec![6.0, 6.0],
            vec![50.0, 50.0],
        );
        let sol = solve_exact_multiclass(&n, &[6, 6]).unwrap();
        assert!((sol.throughput_per_ms[0] - sol.throughput_per_ms[1]).abs() < 1e-12);
        assert!((sol.response_ms[0] - sol.response_ms[1]).abs() < 1e-12);
        // Little's law.
        let n_back = sol.throughput_per_ms[0] * (50.0 + sol.response_ms[0]);
        assert!((n_back - 6.0).abs() < 1e-9);
    }

    #[test]
    fn amva_error_bounded_against_exact_multiclass() {
        // Asymmetric 2-chain network: Schweitzer should stay within a few
        // percent of the exact answer at these populations.
        let n = net(
            vec![vec![4.0, 1.0], vec![1.0, 6.0]],
            vec![8.0, 5.0],
            vec![20.0, 0.0],
        );
        let exact = solve_exact_multiclass(&n, &[8, 5]).unwrap();
        let approx = solve_amva(&n, &AmvaOptions::default()).unwrap();
        for k in 0..2 {
            let rel = (approx.throughput_per_ms[k] - exact.throughput_per_ms[k]).abs()
                / exact.throughput_per_ms[k];
            assert!(rel < 0.08, "chain {k} off by {rel}");
        }
    }

    #[test]
    fn rejects_oversized_and_invalid_inputs() {
        let n = net(
            vec![vec![1.0], vec![1.0]],
            vec![3000.0, 3000.0],
            vec![0.0, 0.0],
        );
        assert!(solve_exact_multiclass(&n, &[3000, 3000]).is_err());
        let n2 = net(vec![vec![1.0]], vec![5.0], vec![0.0]);
        assert!(solve_exact_multiclass(&n2, &[4]).is_err()); // mismatch
        let multi_server = ClosedNetwork {
            populations: vec![2.0],
            think_ms: vec![0.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 2 },
                demands: vec![1.0],
            }],
        };
        assert!(solve_exact_multiclass(&multi_server, &[2]).is_err());
    }
}
