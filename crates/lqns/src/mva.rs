//! Mean value analysis for closed multi-class queueing networks.
//!
//! Two solvers are provided:
//!
//! * [`solve_exact_single_chain`] — the textbook exact MVA recursion for a
//!   single closed chain over single-server queueing stations and delay
//!   stations; used as ground truth in tests and for small models;
//! * [`solve_amva`] — the Bard–Schweitzer approximate MVA fixed point for
//!   multiple chains, which is what the layered solver uses for its
//!   submodels. Multiserver stations are handled with the Seidmann
//!   transformation: an `m`-server station with per-chain demand `d`
//!   becomes a single queueing station with demand `d/m` plus a pure delay
//!   of `d·(m−1)/m`.
//!
//! Demands are *total per chain cycle* (visits × per-visit service time),
//! in milliseconds. Throughputs come back in cycles per millisecond.

use perfpred_core::PredictError;

/// How a station serves customers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationKind {
    /// A queueing station with `servers` identical servers (FIFO or PS —
    /// identical mean values under MVA's assumptions).
    Queueing {
        /// Number of identical servers at the station.
        servers: u32,
    },
    /// An infinite server: customers never queue, only spend their demand.
    Delay,
}

/// A service station in a closed network.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Station kind.
    pub kind: StationKind,
    /// Per-chain demand per cycle (visits × service time), ms.
    pub demands: Vec<f64>,
}

/// A closed multi-class queueing network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedNetwork {
    /// Population of each chain (customers). Fractional populations are
    /// permitted (useful for derived submodels).
    pub populations: Vec<f64>,
    /// Per-chain think time (pure delay outside all stations), ms.
    pub think_ms: Vec<f64>,
    /// The stations.
    pub stations: Vec<Station>,
}

impl ClosedNetwork {
    /// Number of chains.
    pub fn n_chains(&self) -> usize {
        self.populations.len()
    }

    fn validate(&self) -> Result<(), PredictError> {
        let k = self.n_chains();
        if self.think_ms.len() != k {
            return Err(PredictError::InvalidModel(format!(
                "think_ms has {} entries for {} chains",
                self.think_ms.len(),
                k
            )));
        }
        for (i, s) in self.stations.iter().enumerate() {
            if s.demands.len() != k {
                return Err(PredictError::InvalidModel(format!(
                    "station {i} has {} demands for {} chains",
                    s.demands.len(),
                    k
                )));
            }
            if s.demands.iter().any(|d| !d.is_finite() || *d < 0.0) {
                return Err(PredictError::InvalidModel(format!(
                    "station {i} has a negative or non-finite demand"
                )));
            }
            if let StationKind::Queueing { servers: 0 } = s.kind {
                return Err(PredictError::InvalidModel(format!(
                    "station {i} has zero servers"
                )));
            }
        }
        if self
            .populations
            .iter()
            .chain(&self.think_ms)
            .any(|v| !v.is_finite() || *v < 0.0)
        {
            return Err(PredictError::InvalidModel(
                "negative or non-finite population/think time".into(),
            ));
        }
        Ok(())
    }
}

/// The solution of a closed network.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaSolution {
    /// Residence time per chain per station (waiting + service, totalled
    /// over all visits in a cycle), ms. Indexed `[chain][station]`.
    pub residence_ms: Vec<Vec<f64>>,
    /// Response time per cycle per chain (sum of residences), ms.
    pub response_ms: Vec<f64>,
    /// Chain throughput, cycles per **millisecond**.
    pub throughput_per_ms: Vec<f64>,
    /// Mean number of chain-k customers at each station.
    pub queue_len: Vec<Vec<f64>>,
    /// Iterations used (1 for exact MVA).
    pub iterations: usize,
}

impl MvaSolution {
    /// Total utilisation of station `s` (Σ_k X_k·D_k,s / servers); delay
    /// stations report mean concurrency instead.
    pub fn utilization(&self, net: &ClosedNetwork, s: usize) -> f64 {
        let raw: f64 = (0..net.n_chains())
            .map(|k| self.throughput_per_ms[k] * net.stations[s].demands[k])
            .sum();
        match net.stations[s].kind {
            StationKind::Queueing { servers } => raw / f64::from(servers),
            StationKind::Delay => raw,
        }
    }
}

/// Exact MVA for one closed chain over single-server queueing and delay
/// stations. The population must be a non-negative integer.
pub fn solve_exact_single_chain(net: &ClosedNetwork) -> Result<MvaSolution, PredictError> {
    net.validate()?;
    if net.n_chains() != 1 {
        return Err(PredictError::InvalidModel(
            "exact single-chain MVA requires exactly one chain".into(),
        ));
    }
    for (i, s) in net.stations.iter().enumerate() {
        if let StationKind::Queueing { servers } = s.kind {
            if servers != 1 {
                return Err(PredictError::InvalidModel(format!(
                    "exact single-chain MVA supports only single-server stations (station {i} has {servers})"
                )));
            }
        }
    }
    let n = net.populations[0];
    if (n.fract()).abs() > 1e-9 {
        return Err(PredictError::InvalidModel(
            "exact MVA requires an integer population".into(),
        ));
    }
    let n = n.round() as u64;
    let z = net.think_ms[0];
    let m = net.stations.len();
    let mut q = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    let mut x = 0.0f64;
    for pop in 1..=n {
        for s in 0..m {
            let d = net.stations[s].demands[0];
            w[s] = match net.stations[s].kind {
                StationKind::Queueing { .. } => d * (1.0 + q[s]),
                StationKind::Delay => d,
            };
        }
        let r: f64 = w.iter().sum();
        x = pop as f64 / (z + r);
        for s in 0..m {
            q[s] = x * w[s];
        }
    }
    let r: f64 = w.iter().sum();
    Ok(MvaSolution {
        residence_ms: vec![w],
        response_ms: vec![r],
        throughput_per_ms: vec![x],
        queue_len: vec![q],
        iterations: 1,
    })
}

/// Options for the Bard–Schweitzer fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmvaOptions {
    /// Convergence tolerance on queue lengths.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Damping factor in (0, 1]: new = old + damping·(computed − old).
    pub damping: f64,
}

impl Default for AmvaOptions {
    fn default() -> Self {
        AmvaOptions {
            tolerance: 1e-8,
            max_iterations: 20_000,
            damping: 0.7,
        }
    }
}

/// Bard–Schweitzer approximate MVA for a closed multi-class network with
/// multiserver stations (Seidmann transformation).
pub fn solve_amva(net: &ClosedNetwork, opts: &AmvaOptions) -> Result<MvaSolution, PredictError> {
    net.validate()?;
    let kn = net.n_chains();
    let sn = net.stations.len();

    // Seidmann transformation: per-station effective queueing demand and
    // extra per-chain delay.
    let mut qdemand = vec![vec![0.0f64; sn]; kn]; // [chain][station]
    let mut extra_delay = vec![0.0f64; kn];
    let mut is_queueing = vec![false; sn];
    for (s, st) in net.stations.iter().enumerate() {
        match st.kind {
            StationKind::Queueing { servers } => {
                is_queueing[s] = true;
                let m = f64::from(servers);
                for (k, d) in st.demands.iter().enumerate() {
                    qdemand[k][s] = d / m;
                    extra_delay[k] += d * (m - 1.0) / m;
                }
            }
            StationKind::Delay => {
                for (k, d) in st.demands.iter().enumerate() {
                    qdemand[k][s] = *d;
                }
            }
        }
    }

    // Initial queue lengths: spread each chain's population across the
    // queueing stations it actually visits.
    let mut q = vec![vec![0.0f64; sn]; kn];
    for k in 0..kn {
        let visited: Vec<usize> = (0..sn)
            .filter(|&s| is_queueing[s] && qdemand[k][s] > 0.0)
            .collect();
        if !visited.is_empty() {
            let share = net.populations[k] / visited.len() as f64;
            for &s in &visited {
                q[k][s] = share.min(net.populations[k]);
            }
        }
    }

    let mut w = vec![vec![0.0f64; sn]; kn];
    let mut x = vec![0.0f64; kn];
    let mut iterations = 0;
    for iter in 1..=opts.max_iterations {
        iterations = iter;
        let mut max_delta = 0.0f64;
        // Total queue per station (all chains) for arrival-theorem estimate.
        let totals: Vec<f64> = (0..sn).map(|s| (0..kn).map(|k| q[k][s]).sum()).collect();
        for k in 0..kn {
            let nk = net.populations[k];
            if nk <= 0.0 {
                x[k] = 0.0;
                w[k].fill(0.0);
                continue;
            }
            let scale = (nk - 1.0).max(0.0) / nk;
            let mut r = extra_delay[k];
            for s in 0..sn {
                let d = qdemand[k][s];
                if d == 0.0 {
                    w[k][s] = 0.0;
                    continue;
                }
                w[k][s] = if is_queueing[s] {
                    // Queue seen on arrival: others' queues in full, own
                    // chain scaled by (N_k − 1)/N_k (Schweitzer estimate).
                    let seen = totals[s] - q[k][s] + scale * q[k][s];
                    d * (1.0 + seen)
                } else {
                    d
                };
                r += w[k][s];
            }
            let cycle = net.think_ms[k] + r;
            x[k] = if cycle > 0.0 { nk / cycle } else { 0.0 };
            for s in 0..sn {
                let target = x[k] * w[k][s];
                let updated = q[k][s] + opts.damping * (target - q[k][s]);
                max_delta = max_delta.max((updated - q[k][s]).abs());
                q[k][s] = updated;
            }
        }
        if max_delta < opts.tolerance {
            break;
        }
    }

    // Final pass to report residence times consistent with the fixed point,
    // and fold the Seidmann extra delay back into the multiserver station's
    // residence so callers see the station's full residence time.
    let mut residence = vec![vec![0.0f64; sn]; kn];
    let mut response = vec![0.0f64; kn];
    for k in 0..kn {
        for (s, st) in net.stations.iter().enumerate() {
            let extra = match st.kind {
                StationKind::Queueing { servers } => {
                    let m = f64::from(servers);
                    st.demands[k] * (m - 1.0) / m
                }
                StationKind::Delay => 0.0,
            };
            residence[k][s] = w[k][s] + extra;
            response[k] += residence[k][s];
        }
    }

    let sol = MvaSolution {
        residence_ms: residence,
        response_ms: response,
        throughput_per_ms: x,
        queue_len: q,
        iterations,
    };
    if sol.response_ms.iter().any(|r| !r.is_finite()) {
        return Err(PredictError::Solver(
            "AMVA produced a non-finite response time".into(),
        ));
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(net_demand: f64, servers: u32, pop: f64, think: f64) -> ClosedNetwork {
        ClosedNetwork {
            populations: vec![pop],
            think_ms: vec![think],
            stations: vec![Station {
                kind: StationKind::Queueing { servers },
                demands: vec![net_demand],
            }],
        }
    }

    #[test]
    fn exact_single_customer_sees_no_queue() {
        // One customer, one station: R = D, X = 1/(Z+D).
        let net = single(10.0, 1, 1.0, 90.0);
        let sol = solve_exact_single_chain(&net).unwrap();
        assert!((sol.response_ms[0] - 10.0).abs() < 1e-12);
        assert!((sol.throughput_per_ms[0] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_closed_form_machine_repairman() {
        // N=2, Z=0, one station D=1: known exact MVA values.
        // n=1: W=1, X=1, Q=1. n=2: W=1·(1+1)=2, X=2/2=1, Q=2.
        let net = single(1.0, 1, 2.0, 0.0);
        let sol = solve_exact_single_chain(&net).unwrap();
        assert!((sol.response_ms[0] - 2.0).abs() < 1e-12);
        assert!((sol.throughput_per_ms[0] - 1.0).abs() < 1e-12);
        assert!((sol.queue_len[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_throughput_saturates_at_service_rate() {
        let net = single(5.0, 1, 500.0, 100.0);
        let sol = solve_exact_single_chain(&net).unwrap();
        // Bottleneck bound: X ≤ 1/D = 0.2 per ms.
        assert!(sol.throughput_per_ms[0] <= 0.2 + 1e-9);
        assert!(sol.throughput_per_ms[0] > 0.199);
        // Little's law on the full loop: N = X·(Z+R).
        let n = sol.throughput_per_ms[0] * (100.0 + sol.response_ms[0]);
        assert!((n - 500.0).abs() < 1e-6);
    }

    #[test]
    fn exact_delay_station_adds_no_queueing() {
        let net = ClosedNetwork {
            populations: vec![10.0],
            think_ms: vec![0.0],
            stations: vec![
                Station {
                    kind: StationKind::Delay,
                    demands: vec![50.0],
                },
                Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: vec![1.0],
                },
            ],
        };
        let sol = solve_exact_single_chain(&net).unwrap();
        // The delay station always contributes exactly its demand.
        assert!((sol.residence_ms[0][0] - 50.0).abs() < 1e-12);
        assert!(sol.residence_ms[0][1] >= 1.0);
    }

    #[test]
    fn exact_rejects_multichain_and_multiserver() {
        let bad = ClosedNetwork {
            populations: vec![1.0, 1.0],
            think_ms: vec![0.0, 0.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![1.0, 1.0],
            }],
        };
        assert!(solve_exact_single_chain(&bad).is_err());
        let multi = single(1.0, 2, 5.0, 0.0);
        assert!(solve_exact_single_chain(&multi).is_err());
        let frac = single(1.0, 1, 2.5, 0.0);
        assert!(solve_exact_single_chain(&frac).is_err());
    }

    #[test]
    fn amva_close_to_exact_for_single_chain() {
        for &(d, n, z) in &[(5.0, 20.0, 100.0), (1.0, 4.0, 0.0), (10.0, 200.0, 1_000.0)] {
            let net = single(d, 1, n, z);
            let exact = solve_exact_single_chain(&net).unwrap();
            let approx = solve_amva(&net, &AmvaOptions::default()).unwrap();
            let rel = (approx.throughput_per_ms[0] - exact.throughput_per_ms[0]).abs()
                / exact.throughput_per_ms[0];
            assert!(rel < 0.03, "throughput off by {rel} for d={d} n={n} z={z}");
        }
    }

    #[test]
    fn amva_single_customer_exact() {
        // With N=1 the Schweitzer estimate is exact: R = D.
        let net = single(10.0, 1, 1.0, 90.0);
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        assert!((sol.response_ms[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn amva_multiserver_below_single_server_response() {
        let one = single(10.0, 1, 50.0, 100.0);
        let four = single(10.0, 4, 50.0, 100.0);
        let r1 = solve_amva(&one, &AmvaOptions::default()).unwrap();
        let r4 = solve_amva(&four, &AmvaOptions::default()).unwrap();
        assert!(r4.response_ms[0] < r1.response_ms[0]);
        assert!(r4.throughput_per_ms[0] > r1.throughput_per_ms[0]);
        // 4 servers quadruple the saturation throughput bound.
        assert!(r4.throughput_per_ms[0] <= 4.0 / 10.0 + 1e-9);
    }

    #[test]
    fn amva_multiserver_light_load_is_pure_service() {
        // A single customer on an m-server station must see exactly D.
        let net = single(12.0, 3, 1.0, 0.0);
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        assert!((sol.response_ms[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn amva_two_chains_share_capacity() {
        let net = ClosedNetwork {
            populations: vec![30.0, 30.0],
            think_ms: vec![100.0, 100.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![4.0, 4.0],
            }],
        };
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        // Symmetric chains get symmetric results.
        assert!((sol.throughput_per_ms[0] - sol.throughput_per_ms[1]).abs() < 1e-9);
        assert!((sol.response_ms[0] - sol.response_ms[1]).abs() < 1e-9);
        // Combined throughput bounded by station capacity.
        let total = sol.throughput_per_ms[0] + sol.throughput_per_ms[1];
        assert!(total <= 1.0 / 4.0 + 1e-9);
        assert!(total > 0.24);
    }

    #[test]
    fn amva_asymmetric_chains() {
        let net = ClosedNetwork {
            populations: vec![10.0, 40.0],
            think_ms: vec![0.0, 0.0],
            stations: vec![
                Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: vec![2.0, 1.0],
                },
                Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: vec![0.5, 3.0],
                },
            ],
        };
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        // Little's law per chain: N_k = X_k (Z_k + R_k).
        for k in 0..2 {
            let n = sol.throughput_per_ms[k] * sol.response_ms[k];
            assert!(
                (n - net.populations[k]).abs() / net.populations[k] < 1e-4,
                "chain {k}"
            );
        }
    }

    #[test]
    fn amva_zero_population_chain_is_inert() {
        let net = ClosedNetwork {
            populations: vec![0.0, 10.0],
            think_ms: vec![50.0, 50.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![5.0, 5.0],
            }],
        };
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        assert_eq!(sol.throughput_per_ms[0], 0.0);
        assert!(sol.throughput_per_ms[1] > 0.0);
    }

    #[test]
    fn amva_utilization_reported() {
        let net = single(5.0, 1, 200.0, 100.0);
        let sol = solve_amva(&net, &AmvaOptions::default()).unwrap();
        let u = sol.utilization(&net, 0);
        assert!(u > 0.99 && u <= 1.0 + 1e-9, "utilization {u}");
    }

    #[test]
    fn amva_response_grows_with_population() {
        let mut last = 0.0;
        for &n in &[10.0, 100.0, 400.0, 1_000.0] {
            let sol = solve_amva(&single(5.0, 1, n, 7_000.0), &AmvaOptions::default()).unwrap();
            assert!(sol.response_ms[0] >= last);
            last = sol.response_ms[0];
        }
        // Deep saturation: R ≈ N·D − Z.
        let n = 4_000.0;
        let sol = solve_amva(&single(5.0, 1, n, 7_000.0), &AmvaOptions::default()).unwrap();
        let asymptote = n * 5.0 - 7_000.0;
        assert!((sol.response_ms[0] - asymptote).abs() / asymptote < 0.02);
    }

    #[test]
    fn amva_validation_errors() {
        let mut net = single(5.0, 1, 10.0, 0.0);
        net.stations[0].demands = vec![5.0, 1.0];
        assert!(solve_amva(&net, &AmvaOptions::default()).is_err());

        let net2 = single(-1.0, 1, 10.0, 0.0);
        assert!(solve_amva(&net2, &AmvaOptions::default()).is_err());

        let net3 = single(1.0, 0, 10.0, 0.0);
        assert!(solve_amva(&net3, &AmvaOptions::default()).is_err());
    }
}

/// An open (Poisson-arrival) customer class in a mixed network.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenClass {
    /// Arrival rate, customers per millisecond.
    pub rate_per_ms: f64,
    /// Per-station demand per customer, ms.
    pub demands: Vec<f64>,
}

/// A mixed network: closed chains plus open classes sharing the stations.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedNetwork {
    /// The closed part (chains, think times, stations).
    pub closed: ClosedNetwork,
    /// The open classes.
    pub open: Vec<OpenClass>,
}

/// Solution of a mixed network.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSolution {
    /// The closed chains' solution (demands already include the open-load
    /// inflation).
    pub closed: MvaSolution,
    /// Residence time of each open class at each station, ms.
    pub open_residence_ms: Vec<Vec<f64>>,
    /// Total response time per open class, ms.
    pub open_response_ms: Vec<f64>,
}

/// Solves a mixed open/closed network with the standard decomposition:
/// open classes claim their utilisation first (stability required), closed
/// chains are solved by AMVA over demands inflated by `1/(1 − ρ_open)`,
/// and open-class residence times then see the closed queue lengths:
///
/// ```text
/// W_open[s] = D_open[s] · (1 + Q_closed[s]) / (1 − ρ_open[s])
/// ```
///
/// (multiservers via the Seidmann transformation on both sides).
pub fn solve_mixed(net: &MixedNetwork, opts: &AmvaOptions) -> Result<MixedSolution, PredictError> {
    net.closed.validate()?;
    let sn = net.closed.stations.len();
    for (o, oc) in net.open.iter().enumerate() {
        if oc.demands.len() != sn {
            return Err(PredictError::InvalidModel(format!(
                "open class {o} has {} demands for {sn} stations",
                oc.demands.len()
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
        if !(oc.rate_per_ms >= 0.0) || oc.demands.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(PredictError::InvalidModel(format!(
                "open class {o} has a negative or non-finite rate/demand"
            )));
        }
    }

    // Open utilisation per station (per server).
    let mut rho_open = vec![0.0f64; sn];
    for (s, st) in net.closed.stations.iter().enumerate() {
        let raw: f64 = net
            .open
            .iter()
            .map(|oc| oc.rate_per_ms * oc.demands[s])
            .sum();
        rho_open[s] = match st.kind {
            StationKind::Queueing { servers } => raw / f64::from(servers),
            StationKind::Delay => 0.0,
        };
        if rho_open[s] >= 0.999 {
            return Err(PredictError::Solver(format!(
                "open load saturates station {s} (rho = {:.3})",
                rho_open[s]
            )));
        }
    }

    // Closed chains see service slowed by the open traffic.
    let mut inflated = net.closed.clone();
    for (s, st) in inflated.stations.iter_mut().enumerate() {
        if matches!(st.kind, StationKind::Queueing { .. }) {
            for d in &mut st.demands {
                *d /= 1.0 - rho_open[s];
            }
        }
    }
    let closed_sol = solve_amva(&inflated, opts)?;

    // Open residences against the closed queues.
    let mut open_residence = Vec::with_capacity(net.open.len());
    let mut open_response = Vec::with_capacity(net.open.len());
    for oc in &net.open {
        let mut per_station = Vec::with_capacity(sn);
        let mut total = 0.0;
        for (s, st) in net.closed.stations.iter().enumerate() {
            let d = oc.demands[s];
            let w = match st.kind {
                StationKind::Delay => d,
                StationKind::Queueing { servers } => {
                    let m = f64::from(servers);
                    let q_closed: f64 = (0..net.closed.n_chains())
                        .map(|k| closed_sol.queue_len[k][s])
                        .sum();
                    // Seidmann: queueing part on d/m, the rest pure delay.
                    (d / m) * (1.0 + q_closed) / (1.0 - rho_open[s]) + d * (m - 1.0) / m
                }
            };
            per_station.push(w);
            total += w;
        }
        open_residence.push(per_station);
        open_response.push(total);
    }

    Ok(MixedSolution {
        closed: closed_sol,
        open_residence_ms: open_residence,
        open_response_ms: open_response,
    })
}

#[cfg(test)]
mod mixed_tests {
    use super::*;

    fn station(demands_closed: Vec<f64>, servers: u32) -> Station {
        Station {
            kind: StationKind::Queueing { servers },
            demands: demands_closed,
        }
    }

    #[test]
    fn open_only_matches_mm1() {
        // M/M/1: W = D / (1 − ρ).
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.08,
                demands: vec![10.0],
            }],
        };
        let sol = solve_mixed(&net, &AmvaOptions::default()).unwrap();
        let expect = 10.0 / (1.0 - 0.8);
        assert!(
            (sol.open_response_ms[0] - expect).abs() < 1e-9,
            "{}",
            sol.open_response_ms[0]
        );
    }

    #[test]
    fn open_load_slows_closed_chain() {
        let closed = ClosedNetwork {
            populations: vec![10.0],
            think_ms: vec![100.0],
            stations: vec![station(vec![5.0], 1)],
        };
        let quiet = solve_amva(&closed, &AmvaOptions::default()).unwrap();
        let busy = solve_mixed(
            &MixedNetwork {
                closed: closed.clone(),
                open: vec![OpenClass {
                    rate_per_ms: 0.1,
                    demands: vec![5.0],
                }],
            },
            &AmvaOptions::default(),
        )
        .unwrap();
        assert!(busy.closed.response_ms[0] > quiet.response_ms[0] * 1.5);
        // Closed throughput drops accordingly.
        assert!(busy.closed.throughput_per_ms[0] < quiet.throughput_per_ms[0]);
    }

    #[test]
    fn open_class_sees_closed_queue() {
        // A single closed customer adds queueing for the open stream.
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![5.0],
                think_ms: vec![0.0],
                stations: vec![station(vec![4.0], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.02,
                demands: vec![4.0],
            }],
        };
        let sol = solve_mixed(&net, &AmvaOptions::default()).unwrap();
        // Closed population ~5 queued at the station: open W >> D.
        assert!(
            sol.open_response_ms[0] > 4.0 * 3.0,
            "{}",
            sol.open_response_ms[0]
        );
    }

    #[test]
    fn saturating_open_load_rejected() {
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.2,
                demands: vec![10.0],
            }],
        };
        assert!(solve_mixed(&net, &AmvaOptions::default()).is_err());
    }

    #[test]
    fn multiserver_open_faster_than_single() {
        let mk = |servers| MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], servers)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.15,
                demands: vec![10.0],
            }],
        };
        let one = solve_mixed(&mk(2), &AmvaOptions::default()).unwrap();
        let four = solve_mixed(&mk(8), &AmvaOptions::default()).unwrap();
        assert!(four.open_response_ms[0] < one.open_response_ms[0]);
        // Never below the bare demand.
        assert!(four.open_response_ms[0] >= 10.0);
    }

    #[test]
    fn mixed_validation_errors() {
        let net = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: 0.1,
                demands: vec![1.0, 2.0],
            }],
        };
        assert!(solve_mixed(&net, &AmvaOptions::default()).is_err());
        let neg = MixedNetwork {
            closed: ClosedNetwork {
                populations: vec![],
                think_ms: vec![],
                stations: vec![station(vec![], 1)],
            },
            open: vec![OpenClass {
                rate_per_ms: -0.1,
                demands: vec![1.0],
            }],
        };
        assert!(solve_mixed(&neg, &AmvaOptions::default()).is_err());
    }
}

/// Exact multi-class MVA over single-server queueing and delay stations,
/// by recursion over the population lattice with memoised queue lengths.
///
/// Cost is `∏(N_k + 1)` states; the function refuses networks with more
/// than `MAX_EXACT_STATES` states. Intended for validating the
/// Bard–Schweitzer approximation on small populations, where its error is
/// largest.
pub fn solve_exact_multiclass(
    net: &ClosedNetwork,
    populations: &[u32],
) -> Result<MvaSolution, PredictError> {
    const MAX_EXACT_STATES: u64 = 4_000_000;
    net.validate()?;
    let kn = net.n_chains();
    if populations.len() != kn {
        return Err(PredictError::InvalidModel(format!(
            "{} populations for {} chains",
            populations.len(),
            kn
        )));
    }
    for (k, (&n, &decl)) in populations.iter().zip(&net.populations).enumerate() {
        if (f64::from(n) - decl).abs() > 1e-9 {
            return Err(PredictError::InvalidModel(format!(
                "population mismatch for chain {k}: {n} vs declared {decl}"
            )));
        }
    }
    for (i, s) in net.stations.iter().enumerate() {
        if let StationKind::Queueing { servers } = s.kind {
            if servers != 1 {
                return Err(PredictError::InvalidModel(format!(
                    "exact multiclass MVA supports single-server stations only (station {i})"
                )));
            }
        }
    }
    let states: u64 = populations.iter().map(|&n| u64::from(n) + 1).product();
    if states > MAX_EXACT_STATES {
        return Err(PredictError::OutOfRange(format!(
            "exact MVA state space too large ({states} > {MAX_EXACT_STATES})"
        )));
    }

    let sn = net.stations.len();
    // Iterate the lattice in an order where every predecessor (n − e_k) is
    // already computed: mixed-radix counting does exactly that.
    let mut queues: std::collections::HashMap<Vec<u32>, Vec<f64>> =
        std::collections::HashMap::new();
    queues.insert(vec![0; kn], vec![0.0; sn]);

    let mut current = vec![0u32; kn];
    let mut last_w = vec![vec![0.0f64; sn]; kn];
    let mut last_x = vec![0.0f64; kn];
    loop {
        // Advance mixed-radix counter.
        let mut carry = true;
        for k in 0..kn {
            if !carry {
                break;
            }
            if current[k] < populations[k] {
                current[k] += 1;
                carry = false;
            } else {
                current[k] = 0;
            }
        }
        if carry {
            break; // wrapped: lattice exhausted
        }

        let mut q_here = vec![0.0f64; sn];
        let mut w = vec![vec![0.0f64; sn]; kn];
        let mut x = vec![0.0f64; kn];
        for k in 0..kn {
            if current[k] == 0 {
                continue;
            }
            let mut prev = current.clone();
            prev[k] -= 1;
            let q_prev = queues.get(&prev).expect("predecessor computed");
            let mut r = 0.0;
            for s in 0..sn {
                let d = net.stations[s].demands[k];
                w[k][s] = match net.stations[s].kind {
                    StationKind::Queueing { .. } => d * (1.0 + q_prev[s]),
                    StationKind::Delay => d,
                };
                r += w[k][s];
            }
            let cycle = net.think_ms[k] + r;
            x[k] = if cycle > 0.0 {
                f64::from(current[k]) / cycle
            } else {
                0.0
            };
        }
        for s in 0..sn {
            q_here[s] = (0..kn).map(|k| x[k] * w[k][s]).sum();
        }
        let at_target = current.iter().zip(populations).all(|(a, b)| a == b);
        if at_target {
            last_w = w;
            last_x = x;
        }
        queues.insert(current.clone(), q_here);
        if at_target {
            break;
        }
    }

    let target: Vec<u32> = populations.to_vec();
    let q_final = queues.remove(&target).unwrap_or_else(|| vec![0.0; sn]);
    let response: Vec<f64> = last_w.iter().map(|ws| ws.iter().sum()).collect();
    // Per-chain queue lengths at the final population.
    let queue_len: Vec<Vec<f64>> = (0..kn)
        .map(|k| (0..sn).map(|s| last_x[k] * last_w[k][s]).collect())
        .collect();
    let _ = q_final;
    Ok(MvaSolution {
        residence_ms: last_w,
        response_ms: response,
        throughput_per_ms: last_x,
        queue_len,
        iterations: 1,
    })
}

#[cfg(test)]
mod exact_multiclass_tests {
    use super::*;

    fn net(demands: Vec<Vec<f64>>, pops: Vec<f64>, think: Vec<f64>) -> ClosedNetwork {
        let kn = pops.len();
        let sn = demands[0].len();
        ClosedNetwork {
            populations: pops,
            think_ms: think,
            stations: (0..sn)
                .map(|s| Station {
                    kind: StationKind::Queueing { servers: 1 },
                    demands: (0..kn).map(|k| demands[k][s]).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn reduces_to_single_chain_exact() {
        let n = net(vec![vec![5.0, 2.0]], vec![12.0], vec![100.0]);
        let multi = solve_exact_multiclass(&n, &[12]).unwrap();
        let single = solve_exact_single_chain(&n).unwrap();
        assert!((multi.throughput_per_ms[0] - single.throughput_per_ms[0]).abs() < 1e-12);
        assert!((multi.response_ms[0] - single.response_ms[0]).abs() < 1e-9);
    }

    #[test]
    fn symmetric_chains_get_symmetric_results() {
        let n = net(
            vec![vec![3.0, 1.0], vec![3.0, 1.0]],
            vec![6.0, 6.0],
            vec![50.0, 50.0],
        );
        let sol = solve_exact_multiclass(&n, &[6, 6]).unwrap();
        assert!((sol.throughput_per_ms[0] - sol.throughput_per_ms[1]).abs() < 1e-12);
        assert!((sol.response_ms[0] - sol.response_ms[1]).abs() < 1e-12);
        // Little's law.
        let n_back = sol.throughput_per_ms[0] * (50.0 + sol.response_ms[0]);
        assert!((n_back - 6.0).abs() < 1e-9);
    }

    #[test]
    fn amva_error_bounded_against_exact_multiclass() {
        // Asymmetric 2-chain network: Schweitzer should stay within a few
        // percent of the exact answer at these populations.
        let n = net(
            vec![vec![4.0, 1.0], vec![1.0, 6.0]],
            vec![8.0, 5.0],
            vec![20.0, 0.0],
        );
        let exact = solve_exact_multiclass(&n, &[8, 5]).unwrap();
        let approx = solve_amva(&n, &AmvaOptions::default()).unwrap();
        for k in 0..2 {
            let rel = (approx.throughput_per_ms[k] - exact.throughput_per_ms[k]).abs()
                / exact.throughput_per_ms[k];
            assert!(rel < 0.08, "chain {k} off by {rel}");
        }
    }

    #[test]
    fn rejects_oversized_and_invalid_inputs() {
        let n = net(
            vec![vec![1.0], vec![1.0]],
            vec![3000.0, 3000.0],
            vec![0.0, 0.0],
        );
        assert!(solve_exact_multiclass(&n, &[3000, 3000]).is_err());
        let n2 = net(vec![vec![1.0]], vec![5.0], vec![0.0]);
        assert!(solve_exact_multiclass(&n2, &[4]).is_err()); // mismatch
        let multi_server = ClosedNetwork {
            populations: vec![2.0],
            think_ms: vec![0.0],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 2 },
                demands: vec![1.0],
            }],
        };
        assert!(solve_exact_multiclass(&multi_server, &[2]).is_err());
    }
}
