//! A plain-text interchange format for LQN models, in the spirit of the
//! LQNS input language but deliberately minimal.
//!
//! ```text
//! # Trade, two tiers
//! processor client-cpu infinite
//! processor app-cpu multiplicity=1
//! task app processor=app-cpu multiplicity=50
//! reftask clients processor=client-cpu population=500 think=7000
//! entry serve task=app demand=4.505
//! entry cycle task=clients demand=0
//! call cycle -> serve 1.0
//! ```
//!
//! One declaration per line; `#` starts a comment; keys are `key=value`
//! pairs. Names may contain any non-whitespace characters except `=`.

use crate::model::{LqnModel, Multiplicity, TaskKind};
use perfpred_core::PredictError;
use std::collections::HashMap;
use std::fmt::Write as _;

fn perr(line_no: usize, msg: impl std::fmt::Display) -> PredictError {
    PredictError::InvalidModel(format!("line {line_no}: {msg}"))
}

fn parse_kv<'a>(
    parts: &[&'a str],
    line_no: usize,
) -> Result<HashMap<&'a str, &'a str>, PredictError> {
    let mut map = HashMap::new();
    for p in parts {
        if *p == "infinite" {
            map.insert("infinite", "true");
            continue;
        }
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| perr(line_no, format!("expected key=value, got `{p}`")))?;
        if map.insert(k, v).is_some() {
            return Err(perr(line_no, format!("duplicate key `{k}`")));
        }
    }
    Ok(map)
}

fn get_f64(map: &HashMap<&str, &str>, key: &str, line_no: usize) -> Result<f64, PredictError> {
    map.get(key)
        .ok_or_else(|| perr(line_no, format!("missing `{key}`")))?
        .parse::<f64>()
        .map_err(|_| perr(line_no, format!("invalid number for `{key}`")))
}

fn get_u32(map: &HashMap<&str, &str>, key: &str, line_no: usize) -> Result<u32, PredictError> {
    map.get(key)
        .ok_or_else(|| perr(line_no, format!("missing `{key}`")))?
        .parse::<u32>()
        .map_err(|_| perr(line_no, format!("invalid integer for `{key}`")))
}

/// Parses a model from the text format. Returns the same validation errors
/// as [`crate::model::LqnModelBuilder::build`], with line numbers for
/// syntax problems.
pub fn parse(text: &str) -> Result<LqnModel, PredictError> {
    let mut b = LqnModel::builder();
    let mut procs: HashMap<String, crate::model::ProcessorId> = HashMap::new();
    let mut tasks: HashMap<String, crate::model::TaskId> = HashMap::new();
    let mut entries: HashMap<String, crate::model::EntryId> = HashMap::new();
    // Calls are resolved after all entries are declared.
    let mut calls: Vec<(String, String, f64, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "processor" => {
                let name = *parts.get(1).ok_or_else(|| perr(line_no, "missing name"))?;
                let kv = parse_kv(&parts[2..], line_no)?;
                let pb = b.processor(name);
                let id = if kv.contains_key("infinite") {
                    pb.infinite().finish()
                } else if kv.contains_key("multiplicity") {
                    let m = get_u32(&kv, "multiplicity", line_no)?;
                    pb.multiplicity(m).finish()
                } else {
                    pb.finish()
                };
                procs.insert(name.to_string(), id);
            }
            "task" | "reftask" | "openreftask" => {
                let name = *parts.get(1).ok_or_else(|| perr(line_no, "missing name"))?;
                let kv = parse_kv(&parts[2..], line_no)?;
                let pname = *kv
                    .get("processor")
                    .ok_or_else(|| perr(line_no, "missing `processor`"))?;
                let pid = *procs
                    .get(pname)
                    .ok_or_else(|| perr(line_no, format!("unknown processor `{pname}`")))?;
                let id = if parts[0] == "reftask" {
                    let population = get_u32(&kv, "population", line_no)?;
                    let think = get_f64(&kv, "think", line_no)?;
                    b.reference_task(name, pid, population, think).finish()
                } else if parts[0] == "openreftask" {
                    let rate = get_f64(&kv, "rate", line_no)?;
                    b.open_reference_task(name, pid, rate).finish()
                } else {
                    let tb = b.task(name, pid);
                    if kv.contains_key("infinite") {
                        tb.infinite().finish()
                    } else if kv.contains_key("multiplicity") {
                        let m = get_u32(&kv, "multiplicity", line_no)?;
                        tb.multiplicity(m).finish()
                    } else {
                        tb.finish()
                    }
                };
                tasks.insert(name.to_string(), id);
            }
            "entry" => {
                let name = *parts.get(1).ok_or_else(|| perr(line_no, "missing name"))?;
                let kv = parse_kv(&parts[2..], line_no)?;
                let tname = *kv
                    .get("task")
                    .ok_or_else(|| perr(line_no, "missing `task`"))?;
                let tid = *tasks
                    .get(tname)
                    .ok_or_else(|| perr(line_no, format!("unknown task `{tname}`")))?;
                let demand = if kv.contains_key("demand") {
                    get_f64(&kv, "demand", line_no)?
                } else {
                    0.0
                };
                let phase2 = if kv.contains_key("phase2") {
                    get_f64(&kv, "phase2", line_no)?
                } else {
                    0.0
                };
                let id = b
                    .entry(name, tid)
                    .demand_ms(demand)
                    .phase2_ms(phase2)
                    .finish();
                entries.insert(name.to_string(), id);
            }
            "call" => {
                // call <from> -> <to> <mean>
                if parts.len() != 5 || parts[2] != "->" {
                    return Err(perr(line_no, "expected `call <from> -> <to> <mean>`"));
                }
                let mean: f64 = parts[4]
                    .parse()
                    .map_err(|_| perr(line_no, "invalid mean call count"))?;
                calls.push((parts[1].to_string(), parts[3].to_string(), mean, line_no));
            }
            other => return Err(perr(line_no, format!("unknown declaration `{other}`"))),
        }
    }

    for (from, to, mean, line_no) in calls {
        let f = *entries
            .get(&from)
            .ok_or_else(|| perr(line_no, format!("unknown entry `{from}`")))?;
        let t = *entries
            .get(&to)
            .ok_or_else(|| perr(line_no, format!("unknown entry `{to}`")))?;
        b.call(f, t, mean);
    }
    b.build()
}

/// Serialises a model to the text format. `parse(&serialize(m))` produces a
/// model equal to `m`.
pub fn serialize(model: &LqnModel) -> String {
    let mut out = String::new();
    for p in model.processors() {
        match p.multiplicity {
            Multiplicity::Infinite => {
                let _ = writeln!(out, "processor {} infinite", p.name);
            }
            Multiplicity::Finite(m) => {
                let _ = writeln!(out, "processor {} multiplicity={m}", p.name);
            }
        }
    }
    for t in model.tasks() {
        let pname = &model.processors()[t.processor.0].name;
        match t.kind {
            TaskKind::Reference {
                population,
                think_time_ms,
            } => {
                let _ = writeln!(
                    out,
                    "reftask {} processor={pname} population={population} think={think_time_ms}",
                    t.name
                );
            }
            TaskKind::OpenReference { rate_rps } => {
                let _ = writeln!(
                    out,
                    "openreftask {} processor={pname} rate={rate_rps}",
                    t.name
                );
            }
            TaskKind::Server => match t.multiplicity {
                Multiplicity::Infinite => {
                    let _ = writeln!(out, "task {} processor={pname} infinite", t.name);
                }
                Multiplicity::Finite(m) => {
                    let _ = writeln!(out, "task {} processor={pname} multiplicity={m}", t.name);
                }
            },
        }
    }
    for e in model.entries() {
        let tname = &model.tasks()[e.task.0].name;
        if e.phase2_demand_ms > 0.0 {
            let _ = writeln!(
                out,
                "entry {} task={tname} demand={} phase2={}",
                e.name, e.demand_ms, e.phase2_demand_ms
            );
        } else {
            let _ = writeln!(out, "entry {} task={tname} demand={}", e.name, e.demand_ms);
        }
    }
    for e in model.entries() {
        for c in &e.calls {
            let _ = writeln!(
                out,
                "call {} -> {} {}",
                e.name,
                model.entries()[c.target.0].name,
                c.mean_calls
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve, SolverOptions};

    const TRADE: &str = "\
# Trade case study, two tiers
processor client-cpu infinite
processor app-cpu multiplicity=1
processor db-cpu multiplicity=1
task app processor=app-cpu multiplicity=50
task db processor=db-cpu multiplicity=20
reftask clients processor=client-cpu population=500 think=7000
entry serve task=app demand=4.505
entry query task=db demand=0.8294
entry cycle task=clients demand=0
call serve -> query 1.14
call cycle -> serve 1.0
";

    #[test]
    fn parses_trade_model() {
        let m = parse(TRADE).unwrap();
        assert_eq!(m.processors().len(), 3);
        assert_eq!(m.tasks().len(), 3);
        assert_eq!(m.entries().len(), 3);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        assert!(sol.converged);
        assert!(sol.total_throughput_rps() > 0.0);
    }

    #[test]
    fn round_trip_preserves_model() {
        let m = parse(TRADE).unwrap();
        let text = serialize(&m);
        let m2 = parse(&text).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# only a comment\nprocessor p infinite\nreftask r processor=p population=1 think=0 # trailing\nentry e task=r demand=0\n";
        let m = parse(text).unwrap();
        assert_eq!(m.processors().len(), 1);
    }

    #[test]
    fn unknown_declaration_rejected() {
        let err = parse("frobnicate x").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn unknown_references_rejected() {
        assert!(parse("task t processor=nope").is_err());
        assert!(parse("entry e task=nope").is_err());
        let text = "processor p infinite\nreftask r processor=p population=1 think=0\nentry e task=r demand=0\ncall e -> ghost 1.0\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse("processor").is_err());
        assert!(parse("processor p multiplicity=abc").is_err());
        let bad_call = "processor p infinite\nreftask r processor=p population=1 think=0\nentry a task=r\ncall a to b 1.0\n";
        assert!(parse(bad_call).is_err());
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse("processor p multiplicity=1 multiplicity=2").is_err());
    }

    #[test]
    fn structural_validation_still_applies() {
        // Cycle between tasks survives parsing but fails build validation.
        let text = "\
processor p infinite
reftask r processor=p population=1 think=0
task t1 processor=p
task t2 processor=p
entry re task=r
entry e1 task=t1
entry e2 task=t2
call re -> e1 1
call e1 -> e2 1
call e2 -> e1 1
";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("cyclic"));
    }
}
