//! The layered queuing model of the paper's case study: the Trade
//! distributed enterprise benchmark (§5).
//!
//! The model has the §2 structure — a tier of client request generators, an
//! application-server task with a 50-thread pool on its own CPU, a database
//! task with a 20-connection pool on the database CPU, and the database
//! disk as a single-request-at-a-time processor below it. Workload is
//! broken into *request types* (browse/buy) with per-type mean processing
//! times calibrated on an established server (Table 2), and new server
//! architectures are modelled by scaling the application-tier processing
//! times with the benchmark speed ratio (§5: "multiplying the mean
//! processing times on an established server by the established/new server
//! request processing speed ratio").

use crate::model::{EntryId, LqnModel};
use crate::solve::SolverOptions;
use perfpred_core::{PredictError, RequestType, ServerArch, Workload};

/// Calibrated per-request-type parameters (the rows of Table 2 plus call
/// counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTypeParams {
    /// Mean application-server CPU demand per request on the *reference*
    /// server, ms.
    pub app_demand_ms: f64,
    /// Mean database-server CPU demand per database request, ms.
    pub db_demand_ms: f64,
    /// Mean database requests per application-server request (browse 1.14,
    /// buy 2, §5.1).
    pub db_calls: f64,
    /// Mean effective database-disk demand per database request, ms
    /// (0 when the disk is left out of the model, as in Table 2).
    pub disk_demand_ms: f64,
}

/// Full configuration of the Trade layered queuing model.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeLqnConfig {
    /// Browse request-type parameters.
    pub browse: RequestTypeParams,
    /// Buy request-type parameters.
    pub buy: RequestTypeParams,
    /// Application-server thread pool ("50 requests at the same time via
    /// time-sharing", §5.1).
    pub app_threads: u32,
    /// Database-server connection pool (20, §5.1).
    pub db_connections: u32,
    /// Speed factor of the server the demands were calibrated on
    /// (1.0 = AppServF).
    pub reference_speed: f64,
    /// Solver options used for predictions.
    pub solver: SolverOptions,
}

impl TradeLqnConfig {
    /// The paper's Table 2 calibration (AppServF): browse 4.505 / 0.8294 ms,
    /// buy 8.761 / 1.613 ms, with 1.14 / 2 database calls.
    pub fn paper_table2() -> Self {
        TradeLqnConfig {
            browse: RequestTypeParams {
                app_demand_ms: 4.505,
                db_demand_ms: 0.8294,
                db_calls: 1.14,
                disk_demand_ms: 0.0,
            },
            buy: RequestTypeParams {
                app_demand_ms: 8.761,
                db_demand_ms: 1.613,
                db_calls: 2.0,
                disk_demand_ms: 0.0,
            },
            app_threads: 50,
            db_connections: 20,
            reference_speed: 1.0,
            solver: SolverOptions::default(),
        }
    }

    /// Parameters for one request type.
    pub fn params(&self, rt: RequestType) -> &RequestTypeParams {
        match rt {
            RequestType::Browse => &self.browse,
            RequestType::Buy => &self.buy,
        }
    }

    /// Whether any request type models the database disk.
    fn has_disk(&self) -> bool {
        self.browse.disk_demand_ms > 0.0 || self.buy.disk_demand_ms > 0.0
    }

    /// Builds the LQN for `workload` on `server`. Each service class
    /// becomes its own chain (reference task + per-class entries), so the
    /// solution reports per-class response times.
    pub fn build_model(
        &self,
        server: &ServerArch,
        workload: &Workload,
    ) -> Result<LqnModel, PredictError> {
        if workload.classes.is_empty() {
            return Err(PredictError::OutOfRange(
                "workload has no service classes".into(),
            ));
        }
        if server.speed_factor <= 0.0 {
            return Err(PredictError::OutOfRange(format!(
                "server {} has non-positive speed factor",
                server.name
            )));
        }
        // Demands calibrated on the reference server are scaled by the
        // reference/new speed ratio (§5).
        let app_scale = self.reference_speed / server.speed_factor;

        let mut b = LqnModel::builder();
        let client_cpu = b.processor("client-cpu").infinite().finish();
        let app_cpu = b.processor("app-cpu").finish();
        let db_cpu = b.processor("db-cpu").finish();
        let disk = if self.has_disk() {
            Some(b.processor("db-disk").finish())
        } else {
            None
        };

        let app = b
            .task("app", app_cpu)
            .multiplicity(self.app_threads)
            .finish();
        let db = b
            .task("db", db_cpu)
            .multiplicity(self.db_connections)
            .finish();
        let disk_task = disk.map(|d| b.task("disk", d).finish());

        for (i, load) in workload.classes.iter().enumerate() {
            let p = *self.params(load.class.request_type);
            let app_entry = b
                .entry(format!("app-{i}-{}", load.class.name), app)
                .demand_ms(p.app_demand_ms * app_scale)
                .finish();
            let db_entry = b
                .entry(format!("db-{i}-{}", load.class.name), db)
                .demand_ms(p.db_demand_ms)
                .finish();
            b.call(app_entry, db_entry, p.db_calls);
            if let Some(dt) = disk_task {
                if p.disk_demand_ms > 0.0 {
                    let disk_entry = b
                        .entry(format!("disk-{i}-{}", load.class.name), dt)
                        .demand_ms(p.disk_demand_ms)
                        .finish();
                    b.call(db_entry, disk_entry, 1.0);
                }
            }
            let clients = b
                .reference_task(
                    format!("clients-{i}-{}", load.class.name),
                    client_cpu,
                    load.clients,
                    load.class.think_time_ms,
                )
                .finish();
            let cycle = b
                .entry(format!("cycle-{i}-{}", load.class.name), clients)
                .finish();
            b.call(cycle, app_entry, 1.0);
        }
        b.build()
    }

    /// The `app` entry id of class index `i` in a model built by
    /// [`TradeLqnConfig::build_model`] — useful for inspecting elapsed
    /// times in tests.
    pub fn app_entry_of_class(model: &LqnModel, i: usize) -> Option<EntryId> {
        model
            .entries()
            .iter()
            .position(|e| e.name.starts_with(&format!("app-{i}-")))
            .map(EntryId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve, SolverOptions};
    use perfpred_core::Workload;

    #[test]
    fn paper_table2_values() {
        let c = TradeLqnConfig::paper_table2();
        assert_eq!(c.browse.app_demand_ms, 4.505);
        assert_eq!(c.buy.db_demand_ms, 1.613);
        assert_eq!(c.params(RequestType::Buy).db_calls, 2.0);
        assert_eq!(c.app_threads, 50);
        assert_eq!(c.db_connections, 20);
    }

    #[test]
    fn builds_single_class_model() {
        let c = TradeLqnConfig::paper_table2();
        let m = c
            .build_model(&ServerArch::app_serv_f(), &Workload::typical(500))
            .unwrap();
        // client-cpu, app-cpu, db-cpu; no disk with zero disk demand.
        assert_eq!(m.processors().len(), 3);
        assert_eq!(m.reference_tasks().len(), 1);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        assert!(sol.converged);
        // 500 clients at ~7 s cycles ≈ 71 req/s, well under saturation.
        assert!((sol.total_throughput_rps() - 71.0).abs() < 2.0);
    }

    #[test]
    fn speed_scaling_inflates_demands_on_slow_server() {
        let c = TradeLqnConfig::paper_table2();
        let fast = c
            .build_model(&ServerArch::app_serv_f(), &Workload::typical(100))
            .unwrap();
        let slow = c
            .build_model(&ServerArch::app_serv_s(), &Workload::typical(100))
            .unwrap();
        let fd = fast.entries()[TradeLqnConfig::app_entry_of_class(&fast, 0).unwrap().0].demand_ms;
        let sd = slow.entries()[TradeLqnConfig::app_entry_of_class(&slow, 0).unwrap().0].demand_ms;
        let ratio = sd / fd;
        // AppServS speed = 86/186 of F, so demands are 186/86 ≈ 2.16×.
        assert!((ratio - 186.0 / 86.0).abs() < 1e-9, "ratio {ratio}");
        // Database demands are NOT scaled (same DB server).
        let fdb = fast.entry_by_name("db-0-browse").unwrap();
        let sdb = slow.entry_by_name("db-0-browse").unwrap();
        assert_eq!(
            fast.entries()[fdb.0].demand_ms,
            slow.entries()[sdb.0].demand_ms
        );
    }

    #[test]
    fn two_class_model_reports_heavier_buy() {
        let c = TradeLqnConfig::paper_table2();
        let w = Workload::with_buy_pct(1_000, 25.0);
        let m = c.build_model(&ServerArch::app_serv_f(), &w).unwrap();
        assert_eq!(m.reference_tasks().len(), 2);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        // Class order matches workload order: browse then buy.
        assert!(sol.chain_response_ms[1] > sol.chain_response_ms[0]);
    }

    #[test]
    fn disk_becomes_fourth_layer_when_configured() {
        let mut c = TradeLqnConfig::paper_table2();
        c.browse.disk_demand_ms = 0.5;
        let m = c
            .build_model(&ServerArch::app_serv_f(), &Workload::typical(300))
            .unwrap();
        assert!(m.processor_by_name("db-disk").is_some());
        assert!(m.task_by_name("disk").is_some());
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        // Disk adds 1.14 × 0.5 ≈ 0.57 ms to the light-load response.
        let base = {
            let c0 = TradeLqnConfig::paper_table2();
            let m0 = c0
                .build_model(&ServerArch::app_serv_f(), &Workload::typical(300))
                .unwrap();
            solve(&m0, &SolverOptions::default())
                .unwrap()
                .chain_response_ms[0]
        };
        assert!(sol.chain_response_ms[0] > base + 0.4);
    }

    #[test]
    fn rejects_empty_workload_and_bad_server() {
        let c = TradeLqnConfig::paper_table2();
        assert!(c
            .build_model(&ServerArch::app_serv_f(), &Workload::empty())
            .is_err());
        let mut bad = ServerArch::app_serv_f();
        bad.speed_factor = 0.0;
        assert!(c.build_model(&bad, &Workload::typical(10)).is_err());
    }
}
