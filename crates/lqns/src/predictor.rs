//! The [`PerformanceModel`] implementation for the layered queuing method.

use crate::mva::AmvaWorkspace;
use crate::solve::solve_with_pool;
use crate::trade::TradeLqnConfig;
use perfpred_core::{PerformanceModel, PredictError, Prediction, ServerArch, Workload};

/// Application-server utilisation above which an operating point is
/// reported as saturated (at/after max throughput).
const SATURATION_UTILIZATION: f64 = 0.985;

/// The layered queuing prediction method (§5): builds the Trade LQN for the
/// requested server/workload and solves it analytically.
///
/// Each prediction costs one full solver run — the paper's "delay when
/// evaluating a prediction" drawback (§8.5) — which the
/// `prediction_delay` criterion bench quantifies.
#[derive(Debug, Clone)]
pub struct LqnPredictor {
    config: TradeLqnConfig,
}

impl LqnPredictor {
    /// A predictor over a calibrated Trade LQN configuration.
    pub fn new(config: TradeLqnConfig) -> Self {
        LqnPredictor { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &TradeLqnConfig {
        &self.config
    }

    /// Finds the server's max throughput for the given workload *mix* by
    /// sweeping the population upward until the application CPU saturates,
    /// then evaluating just past the knee (§8.2: with the layered queuing
    /// solver "the number of clients can only be an input so it is
    /// necessary to search").
    ///
    /// Measuring *at* 1.35× the saturation knee — exactly how the
    /// benchmark service loads a physical server — matters for mixed
    /// workloads: far past the knee the slower class's clients cycle less
    /// often, the served request mix drifts toward the cheap class, and
    /// the plateau creeps upward, overstating the mix's max throughput.
    pub fn max_throughput_rps(
        &self,
        server: &ServerArch,
        template: &Workload,
    ) -> Result<f64, PredictError> {
        if template.is_empty() {
            return Err(PredictError::OutOfRange(
                "template workload is empty".into(),
            ));
        }
        // One workspace pool rides the whole search: each probe solves the
        // same model shape at a neighbouring population, so every AMVA
        // fixed point after the first warm-starts. The pool is local to
        // this call — the search stays a pure function of its inputs.
        let mut pool: Vec<AmvaWorkspace> = Vec::new();
        let base = f64::from(template.total_clients());
        let mut n = base.max(64.0);
        for _ in 0..40 {
            let w = template.scaled(n / base);
            let p = self.predict_with_pool(server, &w, &mut pool)?;
            let util = p.utilization.unwrap_or(0.0);
            if util >= 0.99 {
                let w = template.scaled(n * 1.35 / base);
                return Ok(self
                    .predict_with_pool(server, &w, &mut pool)?
                    .throughput_rps);
            }
            let factor = (0.995 / util.max(0.05)).clamp(1.25, 3.0);
            n *= factor;
        }
        // Never saturated (e.g. a non-CPU bottleneck): report the largest
        // observed rate.
        self.predict_with_pool(server, &template.scaled(n / base), &mut pool)
            .map(|p| p.throughput_rps)
    }

    /// [`PerformanceModel::predict`] against a caller-held AMVA workspace
    /// pool, so a sweep of related predictions reuses solver buffers and
    /// warm starts across calls (see [`solve_with_pool`]).
    pub fn predict_with_pool(
        &self,
        server: &ServerArch,
        workload: &Workload,
        ws_pool: &mut Vec<AmvaWorkspace>,
    ) -> Result<Prediction, PredictError> {
        if workload.is_empty() {
            return Ok(Prediction {
                mrt_ms: 0.0,
                per_class_mrt_ms: vec![0.0; workload.classes.len()],
                throughput_rps: 0.0,
                utilization: Some(0.0),
                saturated: false,
            });
        }
        let model = self.config.build_model(server, workload)?;
        let sol = solve_with_pool(&model, &self.config.solver, ws_pool)?;
        let app_cpu = model
            .processor_by_name("app-cpu")
            .expect("trade model always has an app-cpu");
        let utilization = sol.processor_utilization[app_cpu.0];
        Ok(Prediction {
            mrt_ms: sol.workload_mrt_ms(),
            per_class_mrt_ms: sol.chain_response_ms.clone(),
            throughput_rps: sol.total_throughput_rps(),
            utilization: Some(utilization),
            saturated: utilization >= SATURATION_UTILIZATION,
        })
    }
}

impl PerformanceModel for LqnPredictor {
    fn method_name(&self) -> &str {
        "layered-queuing"
    }

    fn predict(
        &self,
        server: &ServerArch,
        workload: &Workload,
    ) -> Result<Prediction, PredictError> {
        // Fresh pool per prediction: deterministic regardless of what this
        // predictor solved before (warm-start state never crosses calls).
        self.predict_with_pool(server, workload, &mut Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfpred_core::accuracy_pct;

    fn predictor() -> LqnPredictor {
        LqnPredictor::new(TradeLqnConfig::paper_table2())
    }

    #[test]
    fn light_load_prediction() {
        let p = predictor()
            .predict(&ServerArch::app_serv_f(), &Workload::typical(200))
            .unwrap();
        // ~5.45 ms service chain, no contention.
        assert!(p.mrt_ms > 4.0 && p.mrt_ms < 8.0, "mrt {}", p.mrt_ms);
        assert!(!p.saturated);
        assert!((p.throughput_rps - 200.0 / 7.005).abs() < 1.0);
        assert_eq!(p.per_class_mrt_ms.len(), 1);
    }

    #[test]
    fn saturation_detected_past_max_throughput() {
        // AppServF bound with Table 2 demands: 1000/4.505 ≈ 222 req/s;
        // saturation load ≈ 222·7 ≈ 1550 clients.
        let p = predictor()
            .predict(&ServerArch::app_serv_f(), &Workload::typical(2_200))
            .unwrap();
        assert!(p.saturated, "utilization {:?}", p.utilization);
        assert!(p.throughput_rps < 225.0);
        assert!(p.mrt_ms > 100.0);
    }

    #[test]
    fn empty_workload_is_zero() {
        let p = predictor()
            .predict(&ServerArch::app_serv_f(), &Workload::empty())
            .unwrap();
        assert_eq!(p.mrt_ms, 0.0);
        assert_eq!(p.throughput_rps, 0.0);
        assert!(!p.saturated);
    }

    #[test]
    fn max_throughput_scales_with_server_speed() {
        let pr = predictor();
        let w = Workload::typical(100);
        let f = pr
            .max_throughput_rps(&ServerArch::app_serv_f(), &w)
            .unwrap();
        let s = pr
            .max_throughput_rps(&ServerArch::app_serv_s(), &w)
            .unwrap();
        let vf = pr
            .max_throughput_rps(&ServerArch::app_serv_vf(), &w)
            .unwrap();
        // CPU-bound: ratios follow speed factors (§5's ratio rule).
        assert!(accuracy_pct(s / f, 86.0 / 186.0) > 97.0, "s/f {}", s / f);
        assert!(
            accuracy_pct(vf / f, 320.0 / 186.0) > 97.0,
            "vf/f {}",
            vf / f
        );
        // Absolute: ≈ 222 req/s on F for Table 2 demands.
        assert!((f - 222.0).abs() < 6.0, "f {f}");
    }

    #[test]
    fn max_clients_search_consistent_with_predictions() {
        let pr = predictor();
        let server = ServerArch::app_serv_f();
        let goal = 50.0;
        let n = pr
            .max_clients(&server, &Workload::typical(100), goal)
            .unwrap();
        assert!(n > 1_000, "n={n}");
        let at = pr.predict(&server, &Workload::typical(n)).unwrap().mrt_ms;
        let over = pr
            .predict(&server, &Workload::typical(n + 1))
            .unwrap()
            .mrt_ms;
        assert!(at <= goal + 1e-9);
        assert!(over > goal);
    }

    #[test]
    fn heavier_mix_lowers_max_throughput() {
        let pr = predictor();
        let server = ServerArch::app_serv_f();
        let typical = pr
            .max_throughput_rps(&server, &Workload::typical(100))
            .unwrap();
        let buys = pr
            .max_throughput_rps(&server, &Workload::with_buy_pct(100, 25.0))
            .unwrap();
        assert!(buys < typical, "buys {buys} vs typical {typical}");
        // The paper's LQNS reports 189 -> 158 req/s at 25% buy (a ~16%
        // drop); with Table 2 demands the drop should be in that region.
        let drop = 1.0 - buys / typical;
        assert!(drop > 0.10 && drop < 0.25, "drop {drop}");
    }

    #[test]
    fn no_direct_percentiles() {
        assert!(!predictor().supports_direct_percentiles());
        assert_eq!(predictor().method_name(), "layered-queuing");
    }
}
