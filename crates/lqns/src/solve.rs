//! The layered (method-of-layers style) solver.
//!
//! The fixed point maintains two waiting-time surfaces:
//!
//! * `task_wait[k][t]` — time a chain-`k` request waits to acquire a thread
//!   of task `t`, per call;
//! * `proc_wait[k][p]` — time a chain-`k` entry invocation waits for
//!   processor `p`, per visit;
//!
//! and alternates: (1) recompute entry *elapsed* (thread-holding) times
//! bottom-up through the acyclic call graph; (2) re-estimate `task_wait`
//! with one closed AMVA submodel per call-depth layer (tasks as multiserver
//! stations, the rest of the cycle folded into a complementary delay); and
//! (3) re-estimate `proc_wait` with a device submodel over the processors.
//! Waits are under-relaxed between iterations; convergence is declared when
//! no chain's predicted response time moves by more than
//! [`SolverOptions::convergence_ms`] — the knob the paper sets to 20 ms
//! (§5.1) and whose coarseness causes the small-`x` anomaly discussed in
//! §4.2.

use crate::model::{LqnModel, Multiplicity, TaskKind};
use crate::mva::{
    solve_mixed_with, AmvaOptions, AmvaWorkspace, ClosedNetwork, MixedNetwork, OpenClass, Station,
    StationKind,
};
use crate::results::SolverResult;
use perfpred_core::{metrics, PredictError};

/// Options for the layered solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Absolute convergence criterion on chain response times, ms. The
    /// paper uses 20 ms; the library default is stricter (1 ms).
    pub convergence_ms: f64,
    /// Cap on outer iterations.
    pub max_iterations: usize,
    /// Under-relaxation factor in (0, 1] applied to waiting-time updates.
    pub under_relax: f64,
    /// Options for the inner AMVA submodel solves.
    pub amva: AmvaOptions,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            convergence_ms: 1.0,
            max_iterations: 200,
            under_relax: 0.5,
            amva: AmvaOptions::default(),
        }
    }
}

impl SolverOptions {
    /// The configuration the paper reports: a 20 ms convergence criterion.
    pub fn paper() -> Self {
        SolverOptions {
            convergence_ms: 20.0,
            ..Default::default()
        }
    }
}

struct Prepared {
    /// Reference task per closed chain.
    chains: Vec<usize>,
    /// Population per closed chain.
    populations: Vec<f64>,
    /// Think time per closed chain, ms.
    think_ms: Vec<f64>,
    /// Reference entry per closed chain.
    ref_entry: Vec<usize>,
    /// Visit counts `[chain][entry]` per cycle.
    visits: Vec<Vec<f64>>,
    /// Source task per open flow.
    open_tasks: Vec<usize>,
    /// Arrival rate per open flow, requests per millisecond.
    open_rates: Vec<f64>,
    /// Reference entry per open flow.
    open_ref_entry: Vec<usize>,
    /// Visit counts `[open flow][entry]` per arrival.
    open_visits: Vec<Vec<f64>>,
    /// Entries in bottom-up (deepest-task-first) order.
    bottom_up: Vec<usize>,
    /// Task depth per task.
    depths: Vec<usize>,
}

fn prepare(model: &LqnModel) -> Result<Prepared, PredictError> {
    let chains: Vec<usize> = model.reference_tasks().iter().map(|t| t.0).collect();
    let mut populations = Vec::with_capacity(chains.len());
    let mut think_ms = Vec::with_capacity(chains.len());
    let mut ref_entry = Vec::with_capacity(chains.len());
    for &t in &chains {
        let task = &model.tasks()[t];
        match task.kind {
            TaskKind::Reference {
                population,
                think_time_ms,
            } => {
                populations.push(f64::from(population));
                think_ms.push(think_time_ms);
            }
            _ => unreachable!("reference_tasks returned a non-reference"),
        }
        if task.entries.len() != 1 {
            return Err(PredictError::InvalidModel(format!(
                "reference task {} must have exactly one entry (has {})",
                task.name,
                task.entries.len()
            )));
        }
        ref_entry.push(task.entries[0].0);
    }

    let open_chains: Vec<usize> = model.open_reference_tasks().iter().map(|t| t.0).collect();
    let mut open_rates = Vec::with_capacity(open_chains.len());
    let mut open_ref_entry = Vec::with_capacity(open_chains.len());
    for &t in &open_chains {
        let task = &model.tasks()[t];
        match task.kind {
            TaskKind::OpenReference { rate_rps } => open_rates.push(rate_rps / 1_000.0),
            _ => unreachable!("open_reference_tasks returned a non-open-reference"),
        }
        if task.entries.len() != 1 {
            return Err(PredictError::InvalidModel(format!(
                "open reference task {} must have exactly one entry (has {})",
                task.name,
                task.entries.len()
            )));
        }
        open_ref_entry.push(task.entries[0].0);
    }

    let depths = model.task_depths();
    // Topological order of entries by ascending task depth (callers before
    // callees), for visit propagation; reversed for bottom-up elapsed times.
    let mut order: Vec<usize> = (0..model.entries().len()).collect();
    order.sort_by_key(|&e| depths[model.entries()[e].task.0]);

    let propagate = |start: usize| -> Vec<f64> {
        let mut v = vec![0.0f64; model.entries().len()];
        v[start] = 1.0;
        for &e in &order {
            let val = v[e];
            if val == 0.0 {
                continue;
            }
            for call in &model.entries()[e].calls {
                v[call.target.0] += val * call.mean_calls;
            }
        }
        v
    };
    let visits: Vec<Vec<f64>> = ref_entry.iter().map(|&re| propagate(re)).collect();
    let open_visits: Vec<Vec<f64>> = open_ref_entry.iter().map(|&re| propagate(re)).collect();

    let bottom_up: Vec<usize> = order.iter().rev().copied().collect();
    Ok(Prepared {
        chains,
        populations,
        think_ms,
        ref_entry,
        visits,
        open_tasks: open_chains,
        open_rates,
        open_ref_entry,
        open_visits,
        bottom_up,
        depths,
    })
}

/// Solves the model analytically. See the module docs for the algorithm.
pub fn solve(model: &LqnModel, opts: &SolverOptions) -> Result<SolverResult, PredictError> {
    solve_with_pool(model, opts, &mut Vec::new())
}

/// [`solve`] against a caller-held pool of AMVA workspaces, one per
/// submodel (seed solve + one per layer). Within a solve every outer
/// iteration re-solves the same-shaped submodels, so each workspace
/// warm-starts from the previous iteration's queue lengths; a caller
/// sweeping a family of models (e.g. a max-throughput population search)
/// can hold the pool across calls to extend the warm start over the whole
/// sweep. The pool is an implementation detail of performance only — the
/// returned result is a pure function of `(model, opts)` up to the AMVA
/// convergence tolerance, and callers needing bit-exact reproducibility
/// across runs must pass pools with the same solve history (or fresh
/// ones).
pub fn solve_with_pool(
    model: &LqnModel,
    opts: &SolverOptions,
    ws_pool: &mut Vec<AmvaWorkspace>,
) -> Result<SolverResult, PredictError> {
    let prep = prepare(model)?;
    let kn = prep.chains.len();
    let en = model.entries().len();
    let tn = model.tasks().len();
    let pn = model.processors().len();

    let mut task_wait = vec![vec![0.0f64; tn]; kn];
    let mut proc_wait = vec![vec![0.0f64; pn]; kn];
    let mut elapsed = vec![vec![0.0f64; en]; kn];
    // Thread-holding time: phase-1 elapsed plus any second phase (§5's
    // "service with a second phase" — the caller does not wait for it but
    // the thread stays busy).
    let mut holding = vec![vec![0.0f64; en]; kn];
    let mut response = vec![0.0f64; kn];
    let mut throughput_per_ms = vec![0.0f64; kn];
    let mut converged = false;
    let mut converged_streak = 0usize;
    let mut iterations = 0;
    // Metrics are accumulated locally and flushed once on exit; the outer
    // iteration must not touch the shared registry per pass.
    let mut mva_solves = 0u64;
    let mut amva_iterations = 0u64;
    let mut last_delta = f64::INFINITY;

    // Chain visit totals per task and per processor (constant).
    let mut task_visits = vec![vec![0.0f64; tn]; kn];
    let mut proc_visits = vec![vec![0.0f64; pn]; kn];
    let mut proc_demand = vec![vec![0.0f64; pn]; kn];
    for k in 0..kn {
        for (e, entry) in model.entries().iter().enumerate() {
            let v = prep.visits[k][e];
            if v == 0.0 {
                continue;
            }
            task_visits[k][entry.task.0] += v;
            let total_demand = entry.demand_ms + entry.phase2_demand_ms;
            if total_demand > 0.0 {
                let p = model.tasks()[entry.task.0].processor.0;
                proc_visits[k][p] += v;
                proc_demand[k][p] += v * total_demand;
            }
        }
    }

    // Open-flow state.
    let on = prep.open_tasks.len();
    let mut open_task_wait = vec![vec![0.0f64; tn]; on];
    let mut open_proc_wait = vec![vec![0.0f64; pn]; on];
    let mut open_elapsed = vec![vec![0.0f64; en]; on];
    let mut open_holding = vec![vec![0.0f64; en]; on];
    let mut open_response = vec![0.0f64; on];
    let mut open_task_visits = vec![vec![0.0f64; tn]; on];
    let mut open_proc_demand = vec![vec![0.0f64; pn]; on];
    let mut open_proc_visits = vec![vec![0.0f64; pn]; on];
    for o in 0..on {
        for (e, entry) in model.entries().iter().enumerate() {
            let v = prep.open_visits[o][e];
            if v == 0.0 {
                continue;
            }
            open_task_visits[o][entry.task.0] += v;
            let total_demand = entry.demand_ms + entry.phase2_demand_ms;
            if total_demand > 0.0 {
                let p = model.tasks()[entry.task.0].processor.0;
                open_proc_visits[o][p] += v;
                open_proc_demand[o][p] += v * total_demand;
            }
        }
    }

    let max_depth = prep.depths.iter().copied().max().unwrap_or(0);

    // One reusable workspace per submodel: slot 0 seeds the flat device
    // model, slot 1 + level serves that layer. Submodel shapes are stable
    // across outer iterations, so every re-solve after the first
    // warm-starts from the previous iteration's queue lengths.
    ws_pool.resize_with((max_depth + 2).max(ws_pool.len()), AmvaWorkspace::new);

    // Seed the processor waits from a *flat* device-level AMVA (every chain
    // queueing directly at every finite processor it uses). This
    // deliberately overestimates contention — it ignores the concurrency
    // limits imposed by thread pools — but it starts the layered fixed
    // point in the saturated basin, from which the iteration relaxes
    // downward quickly. Starting from zero waits instead can strand the
    // solver near a degenerate unsaturated fixed point for many iterations.
    {
        let station_procs: Vec<usize> = (0..pn)
            .filter(|&p| {
                !model.processors()[p].multiplicity.is_infinite()
                    && (0..kn).any(|k| proc_demand[k][p] > 0.0)
            })
            .collect();
        if !station_procs.is_empty() {
            let net = MixedNetwork {
                closed: ClosedNetwork {
                    populations: prep.populations.clone(),
                    think_ms: prep.think_ms.clone(),
                    stations: station_procs
                        .iter()
                        .map(|&p| Station {
                            kind: StationKind::Queueing {
                                servers: match model.processors()[p].multiplicity {
                                    Multiplicity::Finite(m) => m,
                                    Multiplicity::Infinite => unreachable!(),
                                },
                            },
                            demands: (0..kn).map(|k| proc_demand[k][p]).collect(),
                        })
                        .collect(),
                },
                open: (0..on)
                    .map(|o| OpenClass {
                        rate_per_ms: prep.open_rates[o],
                        demands: station_procs
                            .iter()
                            .map(|&p| open_proc_demand[o][p])
                            .collect(),
                    })
                    .collect(),
            };
            // An open load that saturates a processor is unstable: the
            // mixed solver rejects it here, before any iteration.
            mva_solves += 1;
            let sol = solve_mixed_with(&net, &opts.amva, &mut ws_pool[0])?;
            amva_iterations += sol.closed.iterations as u64;
            for k in 0..kn {
                for (si, &p) in station_procs.iter().enumerate() {
                    if proc_visits[k][p] > 0.0 {
                        proc_wait[k][p] = ((sol.closed.residence_ms[k][si] - proc_demand[k][p])
                            / proc_visits[k][p])
                            .max(0.0);
                    }
                }
            }
            for o in 0..on {
                for (si, &p) in station_procs.iter().enumerate() {
                    if open_proc_visits[o][p] > 0.0 {
                        open_proc_wait[o][p] = ((sol.open_residence_ms[o][si]
                            - open_proc_demand[o][p])
                            / open_proc_visits[o][p])
                            .max(0.0);
                    }
                }
            }
        }
    }

    for iter in 1..=opts.max_iterations {
        iterations = iter;

        // (1) Entry elapsed times, bottom-up.
        for k in 0..kn {
            for &e in &prep.bottom_up {
                if prep.visits[k][e] == 0.0 {
                    elapsed[k][e] = 0.0;
                    continue;
                }
                let entry = &model.entries()[e];
                let p = model.tasks()[entry.task.0].processor.0;
                let mut x = entry.demand_ms;
                if entry.demand_ms > 0.0 {
                    x += proc_wait[k][p];
                }
                for call in &entry.calls {
                    let tgt = call.target.0;
                    let tgt_task = model.entries()[tgt].task.0;
                    x += call.mean_calls * (task_wait[k][tgt_task] + elapsed[k][tgt]);
                }
                elapsed[k][e] = x;
                // Holding adds the second phase's service; the single
                // per-cycle proc_wait already covers queueing for the
                // entry's full (phase 1 + phase 2) processor demand.
                holding[k][e] = x + entry.phase2_demand_ms;
            }
        }
        for o in 0..on {
            for &e in &prep.bottom_up {
                if prep.open_visits[o][e] == 0.0 {
                    open_elapsed[o][e] = 0.0;
                    continue;
                }
                let entry = &model.entries()[e];
                let p = model.tasks()[entry.task.0].processor.0;
                let mut x = entry.demand_ms;
                if entry.demand_ms > 0.0 {
                    x += open_proc_wait[o][p];
                }
                for call in &entry.calls {
                    let tgt = call.target.0;
                    let tgt_task = model.entries()[tgt].task.0;
                    x += call.mean_calls * (open_task_wait[o][tgt_task] + open_elapsed[o][tgt]);
                }
                open_elapsed[o][e] = x;
                open_holding[o][e] = x + entry.phase2_demand_ms;
            }
        }

        // (2) Chain response and throughput estimates.
        let mut max_delta = 0.0f64;
        for k in 0..kn {
            let r = elapsed[k][prep.ref_entry[k]];
            max_delta = max_delta.max((r - response[k]).abs());
            response[k] = r;
            let cycle = prep.think_ms[k] + r;
            throughput_per_ms[k] = if cycle > 0.0 && prep.populations[k] > 0.0 {
                prep.populations[k] / cycle
            } else {
                0.0
            };
        }
        for o in 0..on {
            let r = open_elapsed[o][prep.open_ref_entry[o]];
            max_delta = max_delta.max((r - open_response[o]).abs());
            open_response[o] = r;
        }
        last_delta = max_delta;

        // Never accept a fixed point that implies an infeasible operating
        // point (some finite station pushed past 100 % utilisation by the
        // current throughput estimate) — a coarse convergence criterion
        // could otherwise stop mid-ramp with throughputs above hardware
        // capacity.
        let mut feasible = true;
        for p in 0..pn {
            if let Multiplicity::Finite(m) = model.processors()[p].multiplicity {
                let closed_load: f64 = (0..kn)
                    .map(|k| throughput_per_ms[k] * proc_demand[k][p])
                    .sum();
                let open_load: f64 = (0..on)
                    .map(|o| prep.open_rates[o] * open_proc_demand[o][p])
                    .sum();
                if (closed_load + open_load) / f64::from(m) > 1.005 {
                    feasible = false;
                }
            }
        }

        // Require the criterion to hold over consecutive iterations so a
        // momentarily slow-moving ramp is not mistaken for a fixed point.
        if feasible && max_delta < opts.convergence_ms {
            converged_streak += 1;
            if iter > 3 && converged_streak >= 2 {
                converged = true;
                break;
            }
        } else {
            converged_streak = 0;
        }

        // (3) Level submodels (Method of Layers).
        //
        // Level 0: the client chains (full populations, think time Z_k)
        // queue for the thread pools of the tasks they call.
        //
        // Level ℓ ≥ 1: the *threads* of level-ℓ tasks are the customers —
        // per-(chain, task) populations follow from Little's law
        // (X·V·holding-time, capped by N_k and the pool size) — and the
        // stations are the tasks' host processors plus the thread pools of
        // the tasks they call. A thread is always either executing on its
        // processor or blocked in a callee, so the submodel think time is
        // zero.
        for level in 0..=max_depth {
            // Customer tasks at this level (reference chains at level 0).
            // The deepest level has no callee pools, but its submodel still
            // corrects the host processors' waits (the flat initialisation
            // deliberately overestimates them).
            let customer_tasks: Vec<usize> = (0..tn)
                .filter(|&t| {
                    prep.depths[t] == level
                        && if level == 0 {
                            model.tasks()[t].is_reference()
                        } else {
                            !model.tasks()[t].is_source()
                                && ((0..kn).any(|k| task_visits[k][t] > 0.0)
                                    || (0..on).any(|o| open_task_visits[o][t] > 0.0))
                        }
                })
                .collect();
            if customer_tasks.is_empty() {
                continue;
            }

            // Sub-chains: one per (chain, customer task) pair with traffic.
            struct SubChain {
                k: usize,
                t: usize,
                population: f64,
                think: f64,
            }
            let mut subchains: Vec<SubChain> = Vec::new();
            for &t in &customer_tasks {
                for k in 0..kn {
                    if level == 0 {
                        if prep.chains[k] != t {
                            continue;
                        }
                        let own = model.entries()[prep.ref_entry[k]].demand_ms;
                        subchains.push(SubChain {
                            k,
                            t,
                            population: prep.populations[k],
                            think: prep.think_ms[k] + own,
                        });
                    } else {
                        let v = task_visits[k][t];
                        if v == 0.0 {
                            continue;
                        }
                        let holding_total: f64 = model.tasks()[t]
                            .entries
                            .iter()
                            .map(|e| prep.visits[k][e.0] * holding[k][e.0])
                            .sum();
                        // Concurrently active chain-k threads of t
                        // (Little's law: X × thread-holding time per cycle).
                        let p = (throughput_per_ms[k] * holding_total).min(prep.populations[k]);
                        subchains.push(SubChain {
                            k,
                            t,
                            population: p,
                            think: 0.0,
                        });
                    }
                }
            }
            // Cap total thread-customers of a finite pool at its size.
            if level > 0 {
                for &t in &customer_tasks {
                    if let Multiplicity::Finite(m) = model.tasks()[t].multiplicity {
                        let total: f64 = subchains
                            .iter()
                            .filter(|c| c.t == t)
                            .map(|c| c.population)
                            .sum();
                        if total > f64::from(m) {
                            let scale = f64::from(m) / total;
                            for c in subchains.iter_mut().filter(|c| c.t == t) {
                                c.population *= scale;
                            }
                        }
                    }
                }
            }

            // Open sub-streams through this level: at level 0 an open
            // source injects its arrival stream; at deeper levels a stream
            // follows the flow's visit counts through the level's tasks.
            struct SubStream {
                o: usize,
                t: usize,
                rate: f64,
            }
            let mut substreams: Vec<SubStream> = Vec::new();
            for (o, (&src, &rate)) in prep.open_tasks.iter().zip(&prep.open_rates).enumerate() {
                if level == 0 {
                    substreams.push(SubStream { o, t: src, rate });
                } else {
                    for &t in &customer_tasks {
                        let v = open_task_visits[o][t];
                        if v > 0.0 {
                            substreams.push(SubStream {
                                o,
                                t,
                                rate: rate * v,
                            });
                        }
                    }
                }
            }

            // Stations: callee thread pools (finite multiplicity, any
            // deeper level) and — for level ≥ 1 — the finite processors
            // hosting the customer tasks (and open-stream source/carrier
            // tasks).
            let mut callee_tasks: Vec<usize> = Vec::new();
            let mut host_procs: Vec<usize> = Vec::new();
            for &t in customer_tasks
                .iter()
                .chain(substreams.iter().map(|ss| &ss.t))
            {
                for e in &model.tasks()[t].entries {
                    for call in &model.entries()[e.0].calls {
                        let t2 = model.entries()[call.target.0].task.0;
                        if !model.tasks()[t2].multiplicity.is_infinite()
                            && !callee_tasks.contains(&t2)
                        {
                            callee_tasks.push(t2);
                        }
                    }
                }
                if level > 0 {
                    let p = model.tasks()[t].processor.0;
                    if !model.processors()[p].multiplicity.is_infinite() && !host_procs.contains(&p)
                    {
                        host_procs.push(p);
                    }
                }
            }
            if callee_tasks.is_empty() && host_procs.is_empty() {
                continue;
            }

            // Per-subchain demands at each station, per customer-task visit.
            let cn = subchains.len();
            let sn_tasks = callee_tasks.len();
            let sn_procs = host_procs.len();
            let mut demands = vec![vec![0.0f64; sn_tasks + sn_procs]; cn];
            // Calls per cycle to each callee pool (for residence → per-call
            // wait conversion).
            let mut calls_per_cycle = vec![vec![0.0f64; sn_tasks]; cn];
            // Processor visits per cycle (entries with demand, v-weighted).
            let mut proc_visits_cycle = vec![vec![0.0f64; sn_procs]; cn];
            for (ci, c) in subchains.iter().enumerate() {
                let v_t = if level == 0 {
                    1.0
                } else {
                    task_visits[c.k][c.t]
                };
                for e in &model.tasks()[c.t].entries {
                    let entry = &model.entries()[e.0];
                    let share = prep.visits[c.k][e.0] / v_t;
                    if share == 0.0 {
                        continue;
                    }
                    for call in &entry.calls {
                        let t2 = model.entries()[call.target.0].task.0;
                        if let Some(si) = callee_tasks.iter().position(|&x| x == t2) {
                            demands[ci][si] +=
                                share * call.mean_calls * holding[c.k][call.target.0];
                            calls_per_cycle[ci][si] += share * call.mean_calls;
                        }
                    }
                    let total_demand = entry.demand_ms + entry.phase2_demand_ms;
                    if level > 0 && total_demand > 0.0 {
                        let p = model.tasks()[c.t].processor.0;
                        if let Some(pi) = host_procs.iter().position(|&x| x == p) {
                            demands[ci][sn_tasks + pi] += share * total_demand;
                            proc_visits_cycle[ci][pi] += share;
                        }
                    }
                }
            }
            let on_sub = substreams.len();
            let mut open_demands = vec![vec![0.0f64; sn_tasks + sn_procs]; on_sub];
            let mut open_calls_cycle = vec![vec![0.0f64; sn_tasks]; on_sub];
            let mut open_pvisits_cycle = vec![vec![0.0f64; sn_procs]; on_sub];
            for (oi, ss) in substreams.iter().enumerate() {
                let v_t = if level == 0 {
                    1.0
                } else {
                    open_task_visits[ss.o][ss.t]
                };
                for e in &model.tasks()[ss.t].entries {
                    let entry = &model.entries()[e.0];
                    let share = prep.open_visits[ss.o][e.0] / v_t;
                    if share == 0.0 {
                        continue;
                    }
                    for call in &entry.calls {
                        let t2 = model.entries()[call.target.0].task.0;
                        if let Some(si) = callee_tasks.iter().position(|&x| x == t2) {
                            open_demands[oi][si] +=
                                share * call.mean_calls * open_holding[ss.o][call.target.0];
                            open_calls_cycle[oi][si] += share * call.mean_calls;
                        }
                    }
                    let total_demand = entry.demand_ms + entry.phase2_demand_ms;
                    if level > 0 && total_demand > 0.0 {
                        let p = model.tasks()[ss.t].processor.0;
                        if let Some(pi) = host_procs.iter().position(|&x| x == p) {
                            open_demands[oi][sn_tasks + pi] += share * total_demand;
                            open_pvisits_cycle[oi][pi] += share;
                        }
                    }
                }
            }

            let net = MixedNetwork {
                closed: ClosedNetwork {
                    populations: subchains.iter().map(|c| c.population).collect(),
                    think_ms: subchains.iter().map(|c| c.think).collect(),
                    stations: callee_tasks
                        .iter()
                        .map(|&t| StationKind::Queueing {
                            servers: match model.tasks()[t].multiplicity {
                                Multiplicity::Finite(m) => m,
                                Multiplicity::Infinite => unreachable!(),
                            },
                        })
                        .chain(host_procs.iter().map(|&p| StationKind::Queueing {
                            servers: match model.processors()[p].multiplicity {
                                Multiplicity::Finite(m) => m,
                                Multiplicity::Infinite => unreachable!(),
                            },
                        }))
                        .enumerate()
                        .map(|(si, kind)| Station {
                            kind,
                            demands: (0..cn).map(|ci| demands[ci][si]).collect(),
                        })
                        .collect(),
                },
                open: substreams
                    .iter()
                    .enumerate()
                    .map(|(oi, ss)| OpenClass {
                        rate_per_ms: ss.rate,
                        demands: open_demands[oi].clone(),
                    })
                    .collect(),
            };
            mva_solves += 1;
            let mixed_sol = solve_mixed_with(&net, &opts.amva, &mut ws_pool[1 + level])?;
            amva_iterations += mixed_sol.closed.iterations as u64;
            let sol = &mixed_sol.closed;

            // Fold residences back into per-call / per-visit waits,
            // accumulating call-weighted means per original chain.
            let mut tw_acc = vec![vec![(0.0f64, 0.0f64); sn_tasks]; kn]; // (wait·weight, weight)
            let mut pw_acc = vec![vec![(0.0f64, 0.0f64); sn_procs]; kn];
            for (ci, c) in subchains.iter().enumerate() {
                for si in 0..sn_tasks {
                    let calls = calls_per_cycle[ci][si];
                    if calls > 0.0 {
                        let wait = ((sol.residence_ms[ci][si] - demands[ci][si]) / calls).max(0.0);
                        let weight = c.population.max(1e-12) * calls;
                        tw_acc[c.k][si].0 += wait * weight;
                        tw_acc[c.k][si].1 += weight;
                    }
                }
                for pi in 0..sn_procs {
                    let visits = proc_visits_cycle[ci][pi];
                    if visits > 0.0 {
                        let wait = ((sol.residence_ms[ci][sn_tasks + pi]
                            - demands[ci][sn_tasks + pi])
                            / visits)
                            .max(0.0);
                        let weight = c.population.max(1e-12) * visits;
                        pw_acc[c.k][pi].0 += wait * weight;
                        pw_acc[c.k][pi].1 += weight;
                    }
                }
            }
            for k in 0..kn {
                for (si, &t2) in callee_tasks.iter().enumerate() {
                    let (sum, w) = tw_acc[k][si];
                    if w > 0.0 {
                        let new_wait = sum / w;
                        task_wait[k][t2] += opts.under_relax * (new_wait - task_wait[k][t2]);
                    }
                }
                for (pi, &p) in host_procs.iter().enumerate() {
                    let (sum, w) = pw_acc[k][pi];
                    if w > 0.0 {
                        let new_wait = sum / w;
                        proc_wait[k][p] += opts.under_relax * (new_wait - proc_wait[k][p]);
                    }
                }
            }

            // Open-stream waits from the open residences.
            let mut otw_acc = vec![vec![(0.0f64, 0.0f64); sn_tasks]; on];
            let mut opw_acc = vec![vec![(0.0f64, 0.0f64); sn_procs]; on];
            for (oi, ss) in substreams.iter().enumerate() {
                for si in 0..sn_tasks {
                    let calls = open_calls_cycle[oi][si];
                    if calls > 0.0 {
                        let wait = ((mixed_sol.open_residence_ms[oi][si] - open_demands[oi][si])
                            / calls)
                            .max(0.0);
                        let weight = ss.rate.max(1e-12) * calls;
                        otw_acc[ss.o][si].0 += wait * weight;
                        otw_acc[ss.o][si].1 += weight;
                    }
                }
                for pi in 0..sn_procs {
                    let visits = open_pvisits_cycle[oi][pi];
                    if visits > 0.0 {
                        let wait = ((mixed_sol.open_residence_ms[oi][sn_tasks + pi]
                            - open_demands[oi][sn_tasks + pi])
                            / visits)
                            .max(0.0);
                        let weight = ss.rate.max(1e-12) * visits;
                        opw_acc[ss.o][pi].0 += wait * weight;
                        opw_acc[ss.o][pi].1 += weight;
                    }
                }
            }
            for o in 0..on {
                for (si, &t2) in callee_tasks.iter().enumerate() {
                    let (sum, w) = otw_acc[o][si];
                    if w > 0.0 {
                        let new_wait = sum / w;
                        open_task_wait[o][t2] +=
                            opts.under_relax * (new_wait - open_task_wait[o][t2]);
                    }
                }
                for (pi, &p) in host_procs.iter().enumerate() {
                    let (sum, w) = opw_acc[o][pi];
                    if w > 0.0 {
                        let new_wait = sum / w;
                        open_proc_wait[o][p] +=
                            opts.under_relax * (new_wait - open_proc_wait[o][p]);
                    }
                }
            }
        }
    }

    // Utilisations from the final throughputs (closed + open).
    let mut processor_utilization = vec![0.0f64; pn];
    for p in 0..pn {
        let raw: f64 = (0..kn)
            .map(|k| throughput_per_ms[k] * proc_demand[k][p])
            .sum::<f64>()
            + (0..on)
                .map(|o| prep.open_rates[o] * open_proc_demand[o][p])
                .sum::<f64>();
        processor_utilization[p] = match model.processors()[p].multiplicity {
            Multiplicity::Finite(m) => raw / f64::from(m),
            Multiplicity::Infinite => raw,
        };
    }
    let mut task_utilization = vec![0.0f64; tn];
    for (t, task) in model.tasks().iter().enumerate() {
        if task.is_source() {
            continue;
        }
        let raw: f64 = (0..kn)
            .map(|k| {
                throughput_per_ms[k]
                    * model.tasks()[t]
                        .entries
                        .iter()
                        .map(|e| prep.visits[k][e.0] * holding[k][e.0])
                        .sum::<f64>()
            })
            .sum::<f64>()
            + (0..on)
                .map(|o| {
                    prep.open_rates[o]
                        * model.tasks()[t]
                            .entries
                            .iter()
                            .map(|e| prep.open_visits[o][e.0] * open_holding[o][e.0])
                            .sum::<f64>()
                })
                .sum::<f64>();
        task_utilization[t] = match model.tasks()[t].multiplicity {
            Multiplicity::Finite(m) => raw / f64::from(m),
            Multiplicity::Infinite => raw,
        };
    }

    // Flush the locally accumulated instrumentation in one pass.
    metrics::counter("lqns.solves").incr();
    metrics::counter("lqns.iterations").add(iterations as u64);
    metrics::counter("lqns.mva_solves").add(mva_solves);
    metrics::counter("lqns.amva_iterations").add(amva_iterations);
    if last_delta.is_finite() {
        metrics::histogram("lqns.convergence_residual_ms").record(last_delta);
    }

    if response
        .iter()
        .chain(open_response.iter())
        .any(|r| !r.is_finite())
    {
        return Err(PredictError::Solver(
            "layered solver produced non-finite response".into(),
        ));
    }

    Ok(SolverResult {
        chain_tasks: model.reference_tasks(),
        chain_response_ms: response,
        chain_throughput_rps: throughput_per_ms.iter().map(|x| x * 1_000.0).collect(),
        open_tasks: model.open_reference_tasks(),
        open_response_ms: open_response,
        open_throughput_rps: prep.open_rates.iter().map(|r| r * 1_000.0).collect(),
        entry_elapsed_ms: elapsed,
        processor_utilization,
        task_utilization,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LqnModel;

    /// Clients -> app(m threads) -> db, the shape of the paper's case study.
    fn trade_like(population: u32, think: f64, app_threads: u32) -> LqnModel {
        let mut b = LqnModel::builder();
        let cp = b.processor("client-cpu").infinite().finish();
        let ap = b.processor("app-cpu").finish();
        let dp = b.processor("db-cpu").finish();
        let app = b.task("app", ap).multiplicity(app_threads).finish();
        let db = b.task("db", dp).multiplicity(20).finish();
        let serve = b.entry("serve", app).demand_ms(5.0).finish();
        let query = b.entry("query", db).demand_ms(1.0).finish();
        b.call(serve, query, 1.14);
        let clients = b.reference_task("clients", cp, population, think).finish();
        let cycle = b.entry("cycle", clients).finish();
        b.call(cycle, serve, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn light_load_response_is_sum_of_demands() {
        // One client: no contention anywhere, R = 5 + 1.14·1 = 6.14 ms.
        let m = trade_like(1, 7_000.0, 50);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        assert!(sol.converged);
        assert!(
            (sol.chain_response_ms[0] - 6.14).abs() < 0.05,
            "R={}",
            sol.chain_response_ms[0]
        );
        // X = 1/(7000+6.14) cycles/ms ≈ 0.1427 req/s.
        let x = sol.chain_throughput_rps[0];
        assert!((x - 1_000.0 / 7_006.14).abs() < 0.001, "X={x}");
    }

    #[test]
    fn throughput_saturates_at_bottleneck() {
        // App CPU demand 5 ms ⇒ bound 200 req/s.
        let m = trade_like(4_000, 7_000.0, 50);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        let x = sol.chain_throughput_rps[0];
        assert!(x <= 200.0 + 0.5, "X={x}");
        assert!(x > 190.0, "X={x}");
        // The app CPU should be nearly saturated.
        let app_cpu = m.processor_by_name("app-cpu").unwrap();
        assert!(sol.processor_utilization[app_cpu.0] > 0.95);
    }

    #[test]
    fn response_monotone_in_population() {
        let mut last = 0.0;
        for &n in &[50u32, 400, 900, 1_400, 2_000, 3_000] {
            let sol = solve(&trade_like(n, 7_000.0, 50), &SolverOptions::default()).unwrap();
            let r = sol.chain_response_ms[0];
            assert!(
                r >= last - 1.0,
                "response decreased: {last} -> {r} at n={n}"
            );
            last = r;
        }
        // Deep saturation asymptote: R ≈ N/X − Z = N·5 − 7000.
        let sol = solve(&trade_like(3_000, 7_000.0, 50), &SolverOptions::default()).unwrap();
        let expect = 3_000.0 * 5.0 - 7_000.0;
        let r = sol.chain_response_ms[0];
        assert!((r - expect).abs() / expect < 0.05, "R={r} vs {expect}");
    }

    #[test]
    fn little_law_holds_at_fixed_point() {
        for &n in &[100u32, 800, 1_500] {
            let sol = solve(&trade_like(n, 7_000.0, 50), &SolverOptions::default()).unwrap();
            let x_per_ms = sol.chain_throughput_rps[0] / 1_000.0;
            let lhs = x_per_ms * (7_000.0 + sol.chain_response_ms[0]);
            assert!((lhs - f64::from(n)).abs() / f64::from(n) < 0.01, "n={n}");
        }
    }

    #[test]
    fn thread_starvation_inflates_response() {
        // Same demands, but only 1 app thread: requests queue for the
        // thread while the db call blocks it.
        let wide = solve(&trade_like(300, 1_000.0, 50), &SolverOptions::default()).unwrap();
        let narrow = solve(&trade_like(300, 1_000.0, 1), &SolverOptions::default()).unwrap();
        assert!(
            narrow.chain_response_ms[0] > wide.chain_response_ms[0] * 1.5,
            "narrow {} vs wide {}",
            narrow.chain_response_ms[0],
            wide.chain_response_ms[0]
        );
        // 1 thread holding ~6.14 ms per request caps throughput near
        // 163/s, below the 200/s CPU bound.
        assert!(narrow.chain_throughput_rps[0] < 170.0);
    }

    #[test]
    fn two_chains_mix() {
        // Browse + buy style: buy has double the demands.
        let mut b = LqnModel::builder();
        let cp = b.processor("client-cpu").infinite().finish();
        let ap = b.processor("app-cpu").finish();
        let dp = b.processor("db-cpu").finish();
        let app = b.task("app", ap).multiplicity(50).finish();
        let db = b.task("db", dp).multiplicity(20).finish();
        let browse = b.entry("browse", app).demand_ms(4.505).finish();
        let buy = b.entry("buy", app).demand_ms(8.761).finish();
        let bq = b.entry("browse-q", db).demand_ms(0.8294).finish();
        let uq = b.entry("buy-q", db).demand_ms(1.613).finish();
        b.call(browse, bq, 1.14);
        b.call(buy, uq, 2.0);
        let c1 = b.reference_task("browsers", cp, 750, 7_000.0).finish();
        let e1 = b.entry("browse-cycle", c1).finish();
        b.call(e1, browse, 1.0);
        let c2 = b.reference_task("buyers", cp, 250, 7_000.0).finish();
        let e2 = b.entry("buy-cycle", c2).finish();
        b.call(e2, buy, 1.0);
        let m = b.build().unwrap();

        let sol = solve(&m, &SolverOptions::default()).unwrap();
        assert!(sol.converged);
        // Buy requests are heavier, so slower.
        assert!(sol.chain_response_ms[1] > sol.chain_response_ms[0]);
        // Both chains below their saturation caps but positive.
        assert!(sol.chain_throughput_rps[0] > 0.0);
        assert!(sol.chain_throughput_rps[1] > 0.0);
        // Browse is ~3x the buy population so ~3x the throughput (think
        // times equal, responses small vs think).
        let ratio = sol.chain_throughput_rps[0] / sol.chain_throughput_rps[1];
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn zero_population_chain() {
        let m = trade_like(0, 7_000.0, 50);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        assert_eq!(sol.chain_throughput_rps[0], 0.0);
    }

    #[test]
    fn coarse_convergence_criterion_converges_faster() {
        // Away from the saturation knee the paper's 20 ms criterion agrees
        // with a fine criterion while using fewer iterations.
        for &n in &[800u32, 2_500, 4_000] {
            let m = trade_like(n, 7_000.0, 50);
            let fine = solve(
                &m,
                &SolverOptions {
                    convergence_ms: 0.01,
                    ..Default::default()
                },
            )
            .unwrap();
            let coarse = solve(&m, &SolverOptions::paper()).unwrap();
            assert!(coarse.iterations <= fine.iterations, "n={n}");
            let rel = (fine.chain_response_ms[0] - coarse.chain_response_ms[0]).abs()
                / fine.chain_response_ms[0].max(1.0);
            assert!(
                rel < 0.25,
                "n={n}: fine {} vs coarse {}",
                fine.chain_response_ms[0],
                coarse.chain_response_ms[0]
            );
        }
    }

    #[test]
    fn knee_solutions_stay_feasible_under_coarse_criterion() {
        // §4.2 reports anomalies from the 20 ms convergence criterion near
        // max throughput. Our solver refuses to *stop* in an infeasible
        // state: even with the coarse criterion, the reported throughput
        // never exceeds the bottleneck capacity, and the knee solution
        // stays in the fine solution's neighbourhood.
        let m = trade_like(1_500, 7_000.0, 50); // knee ≈ 1450 clients
        let fine = solve(
            &m,
            &SolverOptions {
                convergence_ms: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let coarse = solve(&m, &SolverOptions::paper()).unwrap();
        // App CPU bound: 1000/5 = 200 req/s.
        assert!(
            coarse.chain_throughput_rps[0] <= 200.0 * 1.01,
            "infeasible throughput {}",
            coarse.chain_throughput_rps[0]
        );
        assert!(fine.chain_throughput_rps[0] <= 200.0 * 1.01);
        // Knee responses agree within the coarse criterion's slop.
        let rel = (coarse.chain_response_ms[0] - fine.chain_response_ms[0]).abs()
            / fine.chain_response_ms[0];
        assert!(
            rel < 0.35,
            "coarse {} vs fine {}",
            coarse.chain_response_ms[0],
            fine.chain_response_ms[0]
        );
    }

    #[test]
    fn reference_task_with_two_entries_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").infinite().finish();
        let r = b.reference_task("r", p, 10, 100.0).finish();
        b.entry("a", r).finish();
        b.entry("b", r).finish();
        let m = b.build().unwrap();
        assert!(solve(&m, &SolverOptions::default()).is_err());
    }

    #[test]
    fn utilization_scales_with_population() {
        let lo = solve(&trade_like(200, 7_000.0, 50), &SolverOptions::default()).unwrap();
        let hi = solve(&trade_like(1_000, 7_000.0, 50), &SolverOptions::default()).unwrap();
        assert!(hi.processor_utilization[1] > lo.processor_utilization[1]);
        // At 200 clients: X ≈ 28.5/s, U_app ≈ 28.5·0.005 ≈ 0.143.
        assert!((lo.processor_utilization[1] - 0.143).abs() < 0.01);
    }

    #[test]
    fn db_sees_visit_scaled_utilization() {
        let sol = solve(&trade_like(700, 7_000.0, 50), &SolverOptions::default()).unwrap();
        let m = trade_like(700, 7_000.0, 50);
        let app = m.processor_by_name("app-cpu").unwrap().0;
        let db = m.processor_by_name("db-cpu").unwrap().0;
        // U_db / U_app = (1.14·1.0)/(5.0) = 0.228.
        let ratio = sol.processor_utilization[db] / sol.processor_utilization[app];
        assert!((ratio - 0.228).abs() < 0.01, "ratio {ratio}");
    }
}

#[cfg(test)]
mod open_tests {
    use super::*;
    use crate::model::LqnModel;

    /// Open Poisson source -> app (50 threads) -> db, the §8.1 "constant
    /// rate" variant of the case study shape.
    fn open_trade(rate_rps: f64, app_demand: f64) -> LqnModel {
        let mut b = LqnModel::builder();
        let cp = b.processor("src-cpu").infinite().finish();
        let ap = b.processor("app-cpu").finish();
        let dp = b.processor("db-cpu").finish();
        let app = b.task("app", ap).multiplicity(50).finish();
        let db = b.task("db", dp).multiplicity(20).finish();
        let serve = b.entry("serve", app).demand_ms(app_demand).finish();
        let query = b.entry("query", db).demand_ms(1.0).finish();
        b.call(serve, query, 1.14);
        let src = b.open_reference_task("source", cp, rate_rps).finish();
        let arrive = b.entry("arrive", src).finish();
        b.call(arrive, serve, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn light_open_load_is_service_time() {
        let m = open_trade(10.0, 5.0);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.open_response_ms.len(), 1);
        // 10 req/s on a 200 req/s server: rho = 0.05, W ≈ D/(1-rho) ≈ 6.5.
        let r = sol.open_response_ms[0];
        assert!(r > 6.0 && r < 8.0, "open response {r}");
        assert_eq!(sol.open_throughput_rps[0], 10.0);
        assert_eq!(sol.total_throughput_rps(), 10.0);
    }

    #[test]
    fn open_response_grows_toward_saturation() {
        // M/M/1-like growth: at rho = 0.9 the response is ~10x the demand.
        let low = solve(&open_trade(20.0, 5.0), &SolverOptions::default()).unwrap();
        let high = solve(&open_trade(180.0, 5.0), &SolverOptions::default()).unwrap();
        assert!(
            high.open_response_ms[0] > low.open_response_ms[0] * 4.0,
            "low {} high {}",
            low.open_response_ms[0],
            high.open_response_ms[0]
        );
        // rho = 0.9 at the app CPU.
        let m = open_trade(180.0, 5.0);
        let app = m.processor_by_name("app-cpu").unwrap();
        assert!((high.processor_utilization[app.0] - 0.9).abs() < 0.02);
    }

    #[test]
    fn unstable_open_load_rejected() {
        // 250 req/s against a 200 req/s CPU: no steady state.
        let m = open_trade(250.0, 5.0);
        let err = solve(&m, &SolverOptions::default()).unwrap_err();
        assert!(err.to_string().contains("saturates"), "{err}");
    }

    #[test]
    fn open_traffic_slows_closed_chain() {
        // Closed clients sharing the app server with an open stream.
        let build = |rate: f64| {
            let mut b = LqnModel::builder();
            let cp = b.processor("client-cpu").infinite().finish();
            let ap = b.processor("app-cpu").finish();
            let app = b.task("app", ap).multiplicity(50).finish();
            let serve = b.entry("serve", app).demand_ms(5.0).finish();
            let clients = b.reference_task("clients", cp, 400, 7_000.0).finish();
            let cycle = b.entry("cycle", clients).finish();
            b.call(cycle, serve, 1.0);
            if rate > 0.0 {
                let src = b.open_reference_task("source", cp, rate).finish();
                let arrive = b.entry("arrive", src).finish();
                b.call(arrive, serve, 1.0);
            }
            b.build().unwrap()
        };
        let quiet = solve(&build(0.0), &SolverOptions::default()).unwrap();
        let busy = solve(&build(120.0), &SolverOptions::default()).unwrap();
        assert!(
            busy.chain_response_ms[0] > quiet.chain_response_ms[0] * 1.5,
            "quiet {} busy {}",
            quiet.chain_response_ms[0],
            busy.chain_response_ms[0]
        );
        // Aggregate throughput counts both flows.
        assert!(busy.total_throughput_rps() > busy.chain_throughput_rps[0] + 119.0);
    }

    #[test]
    fn open_format_round_trip() {
        let m = open_trade(42.5, 5.0);
        let text = crate::format::serialize(&m);
        assert!(text.contains("openreftask source"));
        let m2 = crate::format::parse(&text).unwrap();
        assert_eq!(m, m2);
    }
}

#[cfg(test)]
mod phase2_tests {
    use super::*;
    use crate::model::LqnModel;

    /// Clients -> app, where the app entry splits its work between phase 1
    /// (caller waits) and phase 2 (after the reply).
    fn two_phase(population: u32, phase1: f64, phase2: f64, threads: u32) -> LqnModel {
        let mut b = LqnModel::builder();
        let cp = b.processor("client-cpu").infinite().finish();
        let ap = b.processor("app-cpu").finish();
        let app = b.task("app", ap).multiplicity(threads).finish();
        let serve = b
            .entry("serve", app)
            .demand_ms(phase1)
            .phase2_ms(phase2)
            .finish();
        let clients = b
            .reference_task("clients", cp, population, 7_000.0)
            .finish();
        let cycle = b.entry("cycle", clients).finish();
        b.call(cycle, serve, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn second_phase_cuts_light_load_response() {
        // Same 8 ms of total work; phase 2 hides 5 ms of it from the
        // caller.
        let single = solve(&two_phase(50, 8.0, 0.0, 50), &SolverOptions::default()).unwrap();
        let split = solve(&two_phase(50, 3.0, 5.0, 50), &SolverOptions::default()).unwrap();
        assert!((single.chain_response_ms[0] - 8.0).abs() < 0.5);
        assert!(
            split.chain_response_ms[0] < 4.0,
            "phase-1 response {}",
            split.chain_response_ms[0]
        );
    }

    #[test]
    fn second_phase_still_consumes_the_processor() {
        // Total demand 8 ms either way: the saturation throughput must be
        // identical (phase 2 is free latency, not free work).
        let single = solve(&two_phase(3_000, 8.0, 0.0, 50), &SolverOptions::default()).unwrap();
        let split = solve(&two_phase(3_000, 3.0, 5.0, 50), &SolverOptions::default()).unwrap();
        let bound = 1_000.0 / 8.0;
        let rel = |x: f64| (x - bound).abs() / bound;
        assert!(
            rel(single.chain_throughput_rps[0]) < 0.05,
            "single X {}",
            single.chain_throughput_rps[0]
        );
        assert!(
            rel(split.chain_throughput_rps[0]) < 0.05,
            "split X {}",
            split.chain_throughput_rps[0]
        );
        // And the two agree with each other closely.
        assert!(
            (single.chain_throughput_rps[0] - split.chain_throughput_rps[0]).abs()
                / single.chain_throughput_rps[0]
                < 0.03
        );
        // Utilisation accounts for both phases.
        assert!(split.processor_utilization[1] > 0.95);
    }

    #[test]
    fn second_phase_occupies_threads() {
        // 2 threads, 1 ms phase-1 + 9 ms phase-2: thread holding is ~10 ms,
        // capping throughput at ~200/s even though phase-1 alone would
        // allow ~1000/s through the pool.
        let sol = solve(&two_phase(2_000, 1.0, 9.0, 2), &SolverOptions::default()).unwrap();
        assert!(
            sol.chain_throughput_rps[0] < 230.0,
            "X {} not limited by phase-2 thread holding",
            sol.chain_throughput_rps[0]
        );
    }

    #[test]
    fn phase2_format_round_trip() {
        let m = two_phase(100, 3.0, 5.0, 50);
        let text = crate::format::serialize(&m);
        assert!(text.contains("phase2=5"));
        let m2 = crate::format::parse(&text).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn negative_phase2_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").infinite().finish();
        let r = b.reference_task("r", p, 1, 0.0).finish();
        b.entry("e", r).phase2_ms(-1.0).finish();
        assert!(b.build().is_err());
    }
}
