//! Solver output: per-chain, per-entry, per-task and per-processor metrics.

use crate::model::{LqnModel, TaskId};

/// The solution of a layered queuing model.
///
/// Chains are indexed in the order returned by
/// [`LqnModel::reference_tasks`]; entries, tasks and processors use their
/// model indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverResult {
    /// The reference task of each chain.
    pub chain_tasks: Vec<TaskId>,
    /// Chain response time per cycle (excluding think time), ms.
    pub chain_response_ms: Vec<f64>,
    /// Chain throughput, requests (cycles) per second.
    pub chain_throughput_rps: Vec<f64>,
    /// The source task of each open flow.
    pub open_tasks: Vec<TaskId>,
    /// Response time per open flow, ms.
    pub open_response_ms: Vec<f64>,
    /// Throughput per open flow (its stable arrival rate), requests/second.
    pub open_throughput_rps: Vec<f64>,
    /// Thread-holding (elapsed) time of every entry for every chain, ms;
    /// `entry_elapsed_ms[chain][entry]` is 0 where the chain never visits.
    pub entry_elapsed_ms: Vec<Vec<f64>>,
    /// Utilisation of each processor in `[0, 1]` (∞-servers report mean
    /// concurrency instead).
    pub processor_utilization: Vec<f64>,
    /// Utilisation of each task's thread pool in `[0, 1]` (∞ pools report
    /// mean concurrency).
    pub task_utilization: Vec<f64>,
    /// Outer (layer) iterations performed.
    pub iterations: usize,
    /// Whether the outer fixed point met the convergence criterion.
    pub converged: bool,
}

impl SolverResult {
    /// Aggregate throughput over all chains and open flows,
    /// requests/second.
    pub fn total_throughput_rps(&self) -> f64 {
        self.chain_throughput_rps.iter().sum::<f64>() + self.open_throughput_rps.iter().sum::<f64>()
    }

    /// Workload mean response time: per-chain responses weighted by chain
    /// throughput, ms.
    pub fn workload_mrt_ms(&self) -> f64 {
        let total = self.total_throughput_rps();
        if total <= 0.0 {
            return 0.0;
        }
        let closed: f64 = self
            .chain_response_ms
            .iter()
            .zip(&self.chain_throughput_rps)
            .map(|(r, x)| r * x)
            .sum();
        let open: f64 = self
            .open_response_ms
            .iter()
            .zip(&self.open_throughput_rps)
            .map(|(r, x)| r * x)
            .sum();
        (closed + open) / total
    }

    /// The chain index driven by reference task `task`, if any.
    pub fn chain_of(&self, task: TaskId) -> Option<usize> {
        self.chain_tasks.iter().position(|&t| t == task)
    }

    /// Utilisation of the processor named `name`.
    pub fn processor_utilization_by_name(&self, model: &LqnModel, name: &str) -> Option<f64> {
        model
            .processor_by_name(name)
            .map(|p| self.processor_utilization[p.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverResult {
        SolverResult {
            chain_tasks: vec![TaskId(0), TaskId(2)],
            chain_response_ms: vec![100.0, 300.0],
            chain_throughput_rps: vec![30.0, 10.0],
            open_tasks: vec![],
            open_response_ms: vec![],
            open_throughput_rps: vec![],
            entry_elapsed_ms: vec![],
            processor_utilization: vec![0.5],
            task_utilization: vec![0.4],
            iterations: 7,
            converged: true,
        }
    }

    #[test]
    fn totals_and_weighted_mrt() {
        let r = sample();
        assert_eq!(r.total_throughput_rps(), 40.0);
        // (100·30 + 300·10)/40 = 150
        assert_eq!(r.workload_mrt_ms(), 150.0);
    }

    #[test]
    fn chain_lookup() {
        let r = sample();
        assert_eq!(r.chain_of(TaskId(2)), Some(1));
        assert_eq!(r.chain_of(TaskId(9)), None);
    }

    #[test]
    fn zero_throughput_mrt_is_zero() {
        let mut r = sample();
        r.chain_throughput_rps = vec![0.0, 0.0];
        assert_eq!(r.workload_mrt_ms(), 0.0);
    }
}
