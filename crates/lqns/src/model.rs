//! LQN model structure: processors, tasks, entries, synchronous calls —
//! plus a builder with structural validation.

use perfpred_core::PredictError;

/// Index of a processor within its [`LqnModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessorId(pub usize);

/// Index of a task within its [`LqnModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub usize);

/// Index of an entry within its [`LqnModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(pub usize);

/// Multiplicity of a processor (CPUs) or task (threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multiplicity {
    /// Exactly `n` servers/threads (n ≥ 1).
    Finite(u32),
    /// An infinite server — a pure delay (used for client processors).
    Infinite,
}

impl Multiplicity {
    /// The finite count, or `None` for an infinite server.
    pub fn count(&self) -> Option<u32> {
        match *self {
            Multiplicity::Finite(n) => Some(n),
            Multiplicity::Infinite => None,
        }
    }

    /// True for [`Multiplicity::Infinite`].
    pub fn is_infinite(&self) -> bool {
        matches!(self, Multiplicity::Infinite)
    }
}

/// A hardware resource tasks run on. Scheduling is processor sharing
/// (time-slicing) for multiprogrammed CPUs or FIFO for devices like the
/// database disk; under the exponential assumptions of approximate MVA the
/// two yield the same mean values, so the distinction is descriptive.
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    /// Processor name (unique among processors).
    pub name: String,
    /// Number of identical CPUs, or infinite for a pure delay.
    pub multiplicity: Multiplicity,
}

/// What drives a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskKind {
    /// A software server with a finite (or infinite) thread pool.
    Server,
    /// A closed-workload source: `population` clients cycling with an
    /// exponential think time of mean `think_time_ms` between responses and
    /// next requests (§3.1's client model).
    Reference {
        /// Number of closed-loop clients.
        population: u32,
        /// Mean exponential think time between a response and the next
        /// request, ms.
        think_time_ms: f64,
    },
    /// An open-workload source: Poisson arrivals at `rate_rps`
    /// requests/second (§8.1's "clients sending requests at a constant
    /// rate").
    OpenReference {
        /// Poisson arrival rate, requests per second.
        rate_rps: f64,
    },
}

/// A software task: a thread pool bound to one processor, offering entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name (unique among tasks).
    pub name: String,
    /// The processor the task's entries execute on.
    pub processor: ProcessorId,
    /// Thread-pool size. For reference tasks this is ignored (each client
    /// is its own thread).
    pub multiplicity: Multiplicity,
    /// Server or reference (workload source).
    pub kind: TaskKind,
    /// Entries offered by this task (filled in by the builder).
    pub entries: Vec<EntryId>,
}

impl Task {
    /// True for closed reference (client-population) tasks.
    pub fn is_reference(&self) -> bool {
        matches!(self.kind, TaskKind::Reference { .. })
    }

    /// True for open reference (Poisson-source) tasks.
    pub fn is_open_reference(&self) -> bool {
        matches!(self.kind, TaskKind::OpenReference { .. })
    }

    /// True for any workload source (closed or open).
    pub fn is_source(&self) -> bool {
        self.is_reference() || self.is_open_reference()
    }
}

/// A synchronous (rendezvous) call: the caller blocks — holding its thread —
/// until the target entry replies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Call {
    /// The entry being called.
    pub target: EntryId,
    /// Mean number of calls per invocation of the calling entry (may be
    /// fractional, e.g. 1.14 database requests per browse request, §5.1).
    pub mean_calls: f64,
}

/// A service entry: a unit of work offered by a task, with a host-processor
/// demand and synchronous calls to lower-layer entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Entry name (unique among entries).
    pub name: String,
    /// The task offering this entry.
    pub task: TaskId,
    /// Mean host-processor demand per invocation in phase 1 (before the
    /// reply), milliseconds (exponentially distributed, §5).
    pub demand_ms: f64,
    /// Mean *second-phase* demand, milliseconds: work done **after** the
    /// reply is sent (§5's "service with a second phase"). The caller does
    /// not wait for it, but the thread and processor stay busy.
    pub phase2_demand_ms: f64,
    /// Outgoing synchronous calls (made in phase 1).
    pub calls: Vec<Call>,
}

/// A validated layered queuing network model.
///
/// Construct through [`LqnModel::builder`]; the builder's
/// [`LqnModelBuilder::build`] enforces the structural invariants the solver
/// relies on (acyclic task-level call graph, valid references, no calls
/// into reference tasks, positive populations where required).
#[derive(Debug, Clone, PartialEq)]
pub struct LqnModel {
    pub(crate) processors: Vec<Processor>,
    pub(crate) tasks: Vec<Task>,
    pub(crate) entries: Vec<Entry>,
}

impl LqnModel {
    /// Starts building a model.
    pub fn builder() -> LqnModelBuilder {
        LqnModelBuilder::default()
    }

    /// All processors.
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The closed reference tasks (chains), in id order.
    pub fn reference_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_reference())
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// The open reference tasks (Poisson sources), in id order.
    pub fn open_reference_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_open_reference())
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Looks up a processor id by name.
    pub fn processor_by_name(&self, name: &str) -> Option<ProcessorId> {
        self.processors
            .iter()
            .position(|p| p.name == name)
            .map(ProcessorId)
    }

    /// Looks up a task id by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name).map(TaskId)
    }

    /// Looks up an entry id by name.
    pub fn entry_by_name(&self, name: &str) -> Option<EntryId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(EntryId)
    }

    /// Call-depth of every task: reference tasks are depth 0; a server task
    /// sits one below its deepest caller. Acyclicity is guaranteed by the
    /// builder.
    pub fn task_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.tasks.len()];
        // Iterate to fixpoint; the task call graph is a DAG so at most
        // `tasks.len()` rounds are needed.
        for _ in 0..self.tasks.len() {
            let mut changed = false;
            for entry in &self.entries {
                let caller_task = entry.task.0;
                for call in &entry.calls {
                    let callee_task = self.entries[call.target.0].task.0;
                    let want = depth[caller_task] + 1;
                    if depth[callee_task] < want {
                        depth[callee_task] = want;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        depth
    }
}

#[derive(Default)]
struct PendingProcessor {
    name: String,
    multiplicity: Option<Multiplicity>,
}

struct PendingTask {
    name: String,
    processor: ProcessorId,
    multiplicity: Multiplicity,
    kind: TaskKind,
}

impl PendingTask {
    fn is_source(&self) -> bool {
        matches!(
            self.kind,
            TaskKind::Reference { .. } | TaskKind::OpenReference { .. }
        )
    }
}

struct PendingEntry {
    name: String,
    task: TaskId,
    demand_ms: f64,
    phase2_demand_ms: f64,
    calls: Vec<Call>,
}

/// Builder for [`LqnModel`]. Ids are handed out eagerly so later items can
/// reference earlier ones; [`LqnModelBuilder::build`] validates everything
/// at once.
#[derive(Default)]
pub struct LqnModelBuilder {
    processors: Vec<PendingProcessor>,
    tasks: Vec<PendingTask>,
    entries: Vec<PendingEntry>,
}

/// Fluent configuration for a processor under construction.
pub struct ProcessorBuilder<'a> {
    owner: &'a mut LqnModelBuilder,
    id: ProcessorId,
}

impl ProcessorBuilder<'_> {
    /// Sets a finite CPU count (default 1).
    pub fn multiplicity(self, n: u32) -> Self {
        self.owner.processors[self.id.0].multiplicity = Some(Multiplicity::Finite(n));
        self
    }

    /// Marks the processor as an infinite server (pure delay).
    pub fn infinite(self) -> Self {
        self.owner.processors[self.id.0].multiplicity = Some(Multiplicity::Infinite);
        self
    }

    /// Finishes, returning the processor id.
    pub fn finish(self) -> ProcessorId {
        self.id
    }
}

/// Fluent configuration for a task under construction.
pub struct TaskBuilder<'a> {
    owner: &'a mut LqnModelBuilder,
    id: TaskId,
}

impl TaskBuilder<'_> {
    /// Sets the thread-pool size (default 1).
    pub fn multiplicity(self, n: u32) -> Self {
        self.owner.tasks[self.id.0].multiplicity = Multiplicity::Finite(n);
        self
    }

    /// Gives the task an unbounded thread pool.
    pub fn infinite(self) -> Self {
        self.owner.tasks[self.id.0].multiplicity = Multiplicity::Infinite;
        self
    }

    /// Finishes, returning the task id.
    pub fn finish(self) -> TaskId {
        self.id
    }
}

/// Fluent configuration for an entry under construction.
pub struct EntryBuilder<'a> {
    owner: &'a mut LqnModelBuilder,
    id: EntryId,
}

impl EntryBuilder<'_> {
    /// Sets the phase-1 host-processor demand per invocation, ms
    /// (default 0).
    pub fn demand_ms(self, d: f64) -> Self {
        self.owner.entries[self.id.0].demand_ms = d;
        self
    }

    /// Sets the second-phase demand, ms (default 0): work performed after
    /// the reply, holding the thread and processor but not the caller.
    pub fn phase2_ms(self, d: f64) -> Self {
        self.owner.entries[self.id.0].phase2_demand_ms = d;
        self
    }

    /// Finishes, returning the entry id.
    pub fn finish(self) -> EntryId {
        self.id
    }
}

impl LqnModelBuilder {
    /// Declares a processor (default multiplicity 1).
    pub fn processor(&mut self, name: impl Into<String>) -> ProcessorBuilder<'_> {
        self.processors.push(PendingProcessor {
            name: name.into(),
            multiplicity: None,
        });
        let id = ProcessorId(self.processors.len() - 1);
        ProcessorBuilder { owner: self, id }
    }

    /// Declares a server task on `processor` (default multiplicity 1).
    pub fn task(&mut self, name: impl Into<String>, processor: ProcessorId) -> TaskBuilder<'_> {
        self.tasks.push(PendingTask {
            name: name.into(),
            processor,
            multiplicity: Multiplicity::Finite(1),
            kind: TaskKind::Server,
        });
        let id = TaskId(self.tasks.len() - 1);
        TaskBuilder { owner: self, id }
    }

    /// Declares a reference (workload-source) task: `population` clients
    /// with exponential think time `think_time_ms`.
    pub fn reference_task(
        &mut self,
        name: impl Into<String>,
        processor: ProcessorId,
        population: u32,
        think_time_ms: f64,
    ) -> TaskBuilder<'_> {
        self.tasks.push(PendingTask {
            name: name.into(),
            processor,
            multiplicity: Multiplicity::Infinite,
            kind: TaskKind::Reference {
                population,
                think_time_ms,
            },
        });
        let id = TaskId(self.tasks.len() - 1);
        TaskBuilder { owner: self, id }
    }

    /// Declares an open reference (Poisson-source) task arriving at
    /// `rate_rps` requests per second.
    pub fn open_reference_task(
        &mut self,
        name: impl Into<String>,
        processor: ProcessorId,
        rate_rps: f64,
    ) -> TaskBuilder<'_> {
        self.tasks.push(PendingTask {
            name: name.into(),
            processor,
            multiplicity: Multiplicity::Infinite,
            kind: TaskKind::OpenReference { rate_rps },
        });
        let id = TaskId(self.tasks.len() - 1);
        TaskBuilder { owner: self, id }
    }

    /// Declares an entry on `task` (default demand 0 ms).
    pub fn entry(&mut self, name: impl Into<String>, task: TaskId) -> EntryBuilder<'_> {
        self.entries.push(PendingEntry {
            name: name.into(),
            task,
            demand_ms: 0.0,
            phase2_demand_ms: 0.0,
            calls: Vec::new(),
        });
        let id = EntryId(self.entries.len() - 1);
        EntryBuilder { owner: self, id }
    }

    /// Adds a synchronous call: `from` makes `mean_calls` calls to `to` per
    /// invocation.
    pub fn call(&mut self, from: EntryId, to: EntryId, mean_calls: f64) -> &mut Self {
        self.entries[from.0].calls.push(Call {
            target: to,
            mean_calls,
        });
        self
    }

    /// Validates and produces the model.
    pub fn build(self) -> Result<LqnModel, PredictError> {
        let inv = |msg: String| PredictError::InvalidModel(msg);

        // Unique names.
        for (kind, names) in [
            (
                "processor",
                self.processors.iter().map(|p| &p.name).collect::<Vec<_>>(),
            ),
            ("task", self.tasks.iter().map(|t| &t.name).collect()),
            ("entry", self.entries.iter().map(|e| &e.name).collect()),
        ] {
            let mut sorted = names.clone();
            sorted.sort();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(inv(format!("duplicate {kind} name: {}", w[0])));
                }
            }
        }

        // Index validity.
        for t in &self.tasks {
            if t.processor.0 >= self.processors.len() {
                return Err(inv(format!("task {} references unknown processor", t.name)));
            }
        }
        for e in &self.entries {
            if e.task.0 >= self.tasks.len() {
                return Err(inv(format!("entry {} references unknown task", e.name)));
            }
            if e.demand_ms < 0.0 || !e.demand_ms.is_finite() {
                return Err(inv(format!(
                    "entry {} has invalid demand {}",
                    e.name, e.demand_ms
                )));
            }
            if e.phase2_demand_ms < 0.0 || !e.phase2_demand_ms.is_finite() {
                return Err(inv(format!(
                    "entry {} has invalid phase-2 demand {}",
                    e.name, e.phase2_demand_ms
                )));
            }
            for c in &e.calls {
                if c.target.0 >= self.entries.len() {
                    return Err(inv(format!("entry {} calls unknown entry", e.name)));
                }
                #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
                if !(c.mean_calls > 0.0) || !c.mean_calls.is_finite() {
                    return Err(inv(format!(
                        "entry {} has non-positive mean calls {}",
                        e.name, c.mean_calls
                    )));
                }
                let target_task = &self.tasks[self.entries[c.target.0].task.0];
                if target_task.is_source() {
                    return Err(inv(format!(
                        "entry {} calls into reference task {}",
                        e.name, target_task.name
                    )));
                }
                if self.entries[c.target.0].task.0 == e.task.0 {
                    return Err(inv(format!("entry {} calls its own task", e.name)));
                }
            }
        }

        // Multiplicities.
        for p in &self.processors {
            if let Some(Multiplicity::Finite(0)) = p.multiplicity {
                return Err(inv(format!("processor {} has zero multiplicity", p.name)));
            }
        }
        for t in &self.tasks {
            if let Multiplicity::Finite(0) = t.multiplicity {
                return Err(inv(format!("task {} has zero multiplicity", t.name)));
            }
            if let TaskKind::Reference { think_time_ms, .. } = t.kind {
                if think_time_ms < 0.0 || !think_time_ms.is_finite() {
                    return Err(inv(format!("task {} has invalid think time", t.name)));
                }
            }
        }

        // At least one workload source.
        if !self.tasks.iter().any(|t| t.is_source()) {
            return Err(inv(
                "model has no reference task (no workload source)".into()
            ));
        }

        // Every source task offers at least one entry, and open rates are
        // valid.
        for (i, t) in self.tasks.iter().enumerate() {
            if t.is_source() && !self.entries.iter().any(|e| e.task.0 == i) {
                return Err(inv(format!("reference task {} has no entry", t.name)));
            }
            if let TaskKind::OpenReference { rate_rps } = t.kind {
                #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
                if !(rate_rps >= 0.0) || !rate_rps.is_finite() {
                    return Err(inv(format!("task {} has invalid arrival rate", t.name)));
                }
            }
        }

        // Acyclic task-level call graph (Kahn's algorithm).
        let n_tasks = self.tasks.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];
        let mut indeg = vec![0usize; n_tasks];
        for e in &self.entries {
            for c in &e.calls {
                let from = e.task.0;
                let to = self.entries[c.target.0].task.0;
                adj[from].push(to);
                indeg[to] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n_tasks).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(t) = queue.pop() {
            visited += 1;
            for &next in &adj[t] {
                indeg[next] -= 1;
                if indeg[next] == 0 {
                    queue.push(next);
                }
            }
        }
        if visited != n_tasks {
            return Err(inv("cyclic synchronous call graph between tasks".into()));
        }

        let processors = self
            .processors
            .into_iter()
            .map(|p| Processor {
                name: p.name,
                multiplicity: p.multiplicity.unwrap_or(Multiplicity::Finite(1)),
            })
            .collect();
        let mut tasks: Vec<Task> = self
            .tasks
            .into_iter()
            .map(|t| Task {
                name: t.name,
                processor: t.processor,
                multiplicity: t.multiplicity,
                kind: t.kind,
                entries: Vec::new(),
            })
            .collect();
        let entries: Vec<Entry> = self
            .entries
            .into_iter()
            .map(|e| Entry {
                name: e.name,
                task: e.task,
                demand_ms: e.demand_ms,
                phase2_demand_ms: e.phase2_demand_ms,
                calls: e.calls,
            })
            .collect();
        for (i, e) in entries.iter().enumerate() {
            tasks[e.task.0].entries.push(EntryId(i));
        }
        Ok(LqnModel {
            processors,
            tasks,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> LqnModelBuilder {
        let mut b = LqnModel::builder();
        let cp = b.processor("client-cpu").infinite().finish();
        let ap = b.processor("app-cpu").finish();
        let app = b.task("app", ap).multiplicity(50).finish();
        let serve = b.entry("serve", app).demand_ms(5.0).finish();
        let clients = b.reference_task("clients", cp, 100, 7_000.0).finish();
        let cycle = b.entry("cycle", clients).finish();
        b.call(cycle, serve, 1.0);
        b
    }

    #[test]
    fn builds_valid_model() {
        let m = two_tier().build().unwrap();
        assert_eq!(m.processors().len(), 2);
        assert_eq!(m.tasks().len(), 2);
        assert_eq!(m.entries().len(), 2);
        assert_eq!(m.reference_tasks().len(), 1);
        assert_eq!(m.task_by_name("app"), Some(TaskId(0)));
        assert_eq!(m.entry_by_name("cycle"), Some(EntryId(1)));
        assert_eq!(m.processor_by_name("nope"), None);
    }

    #[test]
    fn task_entries_are_linked() {
        let m = two_tier().build().unwrap();
        let app = m.task_by_name("app").unwrap();
        assert_eq!(m.tasks()[app.0].entries, vec![EntryId(0)]);
    }

    #[test]
    fn depths_follow_call_graph() {
        let mut b = two_tier();
        // Add a DB layer below the app.
        let dp = b.processor("db-cpu").finish();
        let db = b.task("db", dp).multiplicity(20).finish();
        let q = b.entry("query", db).demand_ms(1.0).finish();
        let serve = EntryId(0);
        b.call(serve, q, 1.14);
        let m = b.build().unwrap();
        let depths = m.task_depths();
        let app = m.task_by_name("app").unwrap().0;
        let dbt = m.task_by_name("db").unwrap().0;
        let clients = m.task_by_name("clients").unwrap().0;
        assert_eq!(depths[clients], 0);
        assert_eq!(depths[app], 1);
        assert_eq!(depths[dbt], 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        b.processor("p").finish();
        let t = b.task("t", p).finish();
        b.entry("e", t).finish();
        b.reference_task("r", p, 1, 0.0).finish();
        assert!(matches!(b.build(), Err(PredictError::InvalidModel(_))));
    }

    #[test]
    fn missing_reference_task_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let t = b.task("t", p).finish();
        b.entry("e", t).finish();
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("no reference task"));
    }

    #[test]
    fn reference_task_without_entry_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        b.reference_task("r", p, 5, 100.0).finish();
        assert!(b.build().is_err());
    }

    #[test]
    fn call_into_reference_task_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let r = b.reference_task("r", p, 5, 100.0).finish();
        let re = b.entry("re", r).finish();
        let t = b.task("t", p).finish();
        let te = b.entry("te", t).finish();
        b.call(re, te, 1.0);
        b.call(te, re, 1.0); // illegal: calls a reference task
        assert!(b.build().is_err());
    }

    #[test]
    fn cyclic_calls_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let r = b.reference_task("r", p, 5, 100.0).finish();
        let re = b.entry("re", r).finish();
        let t1 = b.task("t1", p).finish();
        let t2 = b.task("t2", p).finish();
        let e1 = b.entry("e1", t1).finish();
        let e2 = b.entry("e2", t2).finish();
        b.call(re, e1, 1.0);
        b.call(e1, e2, 1.0);
        b.call(e2, e1, 1.0); // cycle t1 -> t2 -> t1
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn self_call_rejected() {
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let r = b.reference_task("r", p, 5, 100.0).finish();
        b.entry("re", r).finish();
        let t = b.task("t", p).finish();
        let e1 = b.entry("e1", t).finish();
        let e2 = b.entry("e2", t).finish();
        b.call(e1, e2, 1.0); // same task
        assert!(b.build().is_err());
    }

    #[test]
    fn invalid_numbers_rejected() {
        // Negative demand.
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let r = b.reference_task("r", p, 5, 100.0).finish();
        b.entry("re", r).demand_ms(-1.0).finish();
        assert!(b.build().is_err());

        // Zero mean calls.
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let r = b.reference_task("r", p, 5, 100.0).finish();
        let re = b.entry("re", r).finish();
        let t = b.task("t", p).finish();
        let te = b.entry("te", t).finish();
        b.call(re, te, 0.0);
        assert!(b.build().is_err());

        // Zero multiplicity.
        let mut b = LqnModel::builder();
        let p = b.processor("p").finish();
        let r = b.reference_task("r", p, 5, 100.0).finish();
        b.entry("re", r).finish();
        b.task("t", p).multiplicity(0).finish();
        assert!(b.build().is_err());
    }

    #[test]
    fn multiplicity_helpers() {
        assert_eq!(Multiplicity::Finite(3).count(), Some(3));
        assert_eq!(Multiplicity::Infinite.count(), None);
        assert!(Multiplicity::Infinite.is_infinite());
        assert!(!Multiplicity::Finite(1).is_infinite());
    }
}
