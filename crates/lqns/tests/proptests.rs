//! Property-based tests for the layered queuing solver: Little's law,
//! capacity bounds, monotonicity and format round-trips on randomized
//! Trade-shaped models.

use perfpred_lqns::format;
use perfpred_lqns::model::LqnModel;
use perfpred_lqns::mva::{
    solve_amva, solve_exact_single_chain, AmvaOptions, ClosedNetwork, Station, StationKind,
};
use perfpred_lqns::solve::{solve, SolverOptions};
use proptest::prelude::*;

fn trade_shaped(
    population: u32,
    think: f64,
    app_demand: f64,
    db_demand: f64,
    db_calls: f64,
    threads: u32,
) -> LqnModel {
    let mut b = LqnModel::builder();
    let cp = b.processor("client-cpu").infinite().finish();
    let ap = b.processor("app-cpu").finish();
    let dp = b.processor("db-cpu").finish();
    let app = b.task("app", ap).multiplicity(threads).finish();
    let db = b.task("db", dp).multiplicity(20).finish();
    let serve = b.entry("serve", app).demand_ms(app_demand).finish();
    let query = b.entry("query", db).demand_ms(db_demand).finish();
    b.call(serve, query, db_calls);
    let clients = b.reference_task("clients", cp, population, think).finish();
    let cycle = b.entry("cycle", clients).finish();
    b.call(cycle, serve, 1.0);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Little's law N = X·(Z + R) holds at the solver's fixed point, and
    /// throughput never exceeds the bottleneck capacity.
    #[test]
    fn layered_solution_obeys_littles_law(
        population in 1u32..3000,
        think in 100.0f64..10_000.0,
        app_demand in 0.5f64..20.0,
        db_demand in 0.1f64..5.0,
        db_calls in 0.2f64..3.0,
        threads in 5u32..100,
    ) {
        let m = trade_shaped(population, think, app_demand, db_demand, db_calls, threads);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        let x = sol.chain_throughput_rps[0] / 1_000.0; // per ms
        let n = x * (think + sol.chain_response_ms[0]);
        prop_assert!(
            (n - f64::from(population)).abs() / f64::from(population) < 0.02,
            "Little's law: {} vs {}", n, population
        );
        // Capacity bounds per processor (3 % slack: Bard–Schweitzer can
        // overshoot slightly right at the knee).
        let app_cap = 1.0 / app_demand;
        let db_cap = 1.0 / (db_demand * db_calls);
        prop_assert!(x <= app_cap * 1.03 + 1e-9, "X {} exceeds app capacity {}", x, app_cap);
        prop_assert!(x <= db_cap * 1.03 + 1e-9, "X {} exceeds db capacity {}", x, db_cap);
        // Response at least the raw service chain.
        let service = app_demand + db_calls * db_demand;
        prop_assert!(sol.chain_response_ms[0] >= service * 0.95);
    }

    /// Throughput is monotone non-decreasing in population.
    #[test]
    fn throughput_monotone_in_population(
        base in 50u32..800,
        app_demand in 1.0f64..15.0,
    ) {
        let lo = solve(
            &trade_shaped(base, 7_000.0, app_demand, 1.0, 1.14, 50),
            &SolverOptions::default(),
        ).unwrap();
        let hi = solve(
            &trade_shaped(base * 2, 7_000.0, app_demand, 1.0, 1.14, 50),
            &SolverOptions::default(),
        ).unwrap();
        prop_assert!(hi.chain_throughput_rps[0] >= lo.chain_throughput_rps[0] * 0.99);
        prop_assert!(hi.chain_response_ms[0] >= lo.chain_response_ms[0] * 0.95);
    }

    /// Bard–Schweitzer stays near exact MVA on single-chain single-server
    /// networks.
    #[test]
    fn amva_tracks_exact_mva(
        demand in 0.1f64..50.0,
        population in 1u32..500,
        think in 0.0f64..5_000.0,
    ) {
        let net = ClosedNetwork {
            populations: vec![f64::from(population)],
            think_ms: vec![think],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![demand],
            }],
        };
        let exact = solve_exact_single_chain(&net).unwrap();
        let approx = solve_amva(&net, &AmvaOptions::default()).unwrap();
        let rel = (approx.throughput_per_ms[0] - exact.throughput_per_ms[0]).abs()
            / exact.throughput_per_ms[0].max(1e-12);
        // Schweitzer's error peaks at small populations near the knee
        // (documented ~10 % worst case) and decays gradually with N.
        let bound = if population < 10 {
            0.12
        } else if population < 60 {
            0.08
        } else {
            0.05
        };
        prop_assert!(rel < bound, "AMVA off by {} (d={}, n={}, z={})", rel, demand, population, think);
    }

    /// Text-format round trip is lossless for randomized Trade models.
    #[test]
    fn format_round_trip(
        population in 1u32..5000,
        think in 0.0f64..10_000.0,
        app_demand in 0.0f64..100.0,
        db_calls in 0.01f64..10.0,
        threads in 1u32..200,
    ) {
        let m = trade_shaped(population, think, app_demand, 1.0, db_calls, threads);
        let text = format::serialize(&m);
        let m2 = format::parse(&text).unwrap();
        prop_assert_eq!(m, m2);
    }
}
