//! Property-style tests for the layered queuing solver: Little's law,
//! capacity bounds, monotonicity and format round-trips on randomized
//! Trade-shaped models.

use perfpred_lqns::format;
use perfpred_lqns::model::LqnModel;
use perfpred_lqns::mva::{
    solve_amva, solve_exact_single_chain, AmvaOptions, ClosedNetwork, Station, StationKind,
};
use perfpred_lqns::solve::{solve, SolverOptions};

/// Minimal xorshift64* generator for deterministic case sweeps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

fn trade_shaped(
    population: u32,
    think: f64,
    app_demand: f64,
    db_demand: f64,
    db_calls: f64,
    threads: u32,
) -> LqnModel {
    let mut b = LqnModel::builder();
    let cp = b.processor("client-cpu").infinite().finish();
    let ap = b.processor("app-cpu").finish();
    let dp = b.processor("db-cpu").finish();
    let app = b.task("app", ap).multiplicity(threads).finish();
    let db = b.task("db", dp).multiplicity(20).finish();
    let serve = b.entry("serve", app).demand_ms(app_demand).finish();
    let query = b.entry("query", db).demand_ms(db_demand).finish();
    b.call(serve, query, db_calls);
    let clients = b.reference_task("clients", cp, population, think).finish();
    let cycle = b.entry("cycle", clients).finish();
    b.call(cycle, serve, 1.0);
    b.build().unwrap()
}

/// Little's law N = X·(Z + R) holds at the solver's fixed point, and
/// throughput never exceeds the bottleneck capacity.
#[test]
fn layered_solution_obeys_littles_law() {
    let mut rng = Rng::new(0x19_0001);
    for _ in 0..64 {
        let population = rng.int(1, 3_000) as u32;
        let think = rng.range(100.0, 10_000.0);
        let app_demand = rng.range(0.5, 20.0);
        let db_demand = rng.range(0.1, 5.0);
        let db_calls = rng.range(0.2, 3.0);
        let threads = rng.int(5, 100) as u32;
        let m = trade_shaped(population, think, app_demand, db_demand, db_calls, threads);
        let sol = solve(&m, &SolverOptions::default()).unwrap();
        let x = sol.chain_throughput_rps[0] / 1_000.0; // per ms
        let n = x * (think + sol.chain_response_ms[0]);
        assert!(
            (n - f64::from(population)).abs() / f64::from(population) < 0.02,
            "Little's law: {n} vs {population}"
        );
        // Capacity bounds per processor (3 % slack: Bard–Schweitzer can
        // overshoot slightly right at the knee).
        let app_cap = 1.0 / app_demand;
        let db_cap = 1.0 / (db_demand * db_calls);
        assert!(
            x <= app_cap * 1.03 + 1e-9,
            "X {x} exceeds app capacity {app_cap}"
        );
        assert!(
            x <= db_cap * 1.03 + 1e-9,
            "X {x} exceeds db capacity {db_cap}"
        );
        // Response at least the raw service chain.
        let service = app_demand + db_calls * db_demand;
        assert!(sol.chain_response_ms[0] >= service * 0.95);
    }
}

/// Throughput is monotone non-decreasing in population.
#[test]
fn throughput_monotone_in_population() {
    let mut rng = Rng::new(0x19_0002);
    for _ in 0..64 {
        let base = rng.int(50, 800) as u32;
        let app_demand = rng.range(1.0, 15.0);
        let lo = solve(
            &trade_shaped(base, 7_000.0, app_demand, 1.0, 1.14, 50),
            &SolverOptions::default(),
        )
        .unwrap();
        let hi = solve(
            &trade_shaped(base * 2, 7_000.0, app_demand, 1.0, 1.14, 50),
            &SolverOptions::default(),
        )
        .unwrap();
        assert!(hi.chain_throughput_rps[0] >= lo.chain_throughput_rps[0] * 0.99);
        assert!(hi.chain_response_ms[0] >= lo.chain_response_ms[0] * 0.95);
    }
}

/// Bard–Schweitzer stays near exact MVA on single-chain single-server
/// networks.
#[test]
fn amva_tracks_exact_mva() {
    let mut rng = Rng::new(0x19_0003);
    for _ in 0..64 {
        let demand = rng.range(0.1, 50.0);
        let population = rng.int(1, 500) as u32;
        let think = rng.range(0.0, 5_000.0);
        let net = ClosedNetwork {
            populations: vec![f64::from(population)],
            think_ms: vec![think],
            stations: vec![Station {
                kind: StationKind::Queueing { servers: 1 },
                demands: vec![demand],
            }],
        };
        let exact = solve_exact_single_chain(&net).unwrap();
        let approx = solve_amva(&net, &AmvaOptions::default()).unwrap();
        let rel = (approx.throughput_per_ms[0] - exact.throughput_per_ms[0]).abs()
            / exact.throughput_per_ms[0].max(1e-12);
        // Schweitzer's error peaks at small populations near the knee
        // (documented ~10 % worst case) and decays gradually with N.
        let bound = if population < 10 {
            0.12
        } else if population < 60 {
            0.08
        } else {
            0.05
        };
        assert!(
            rel < bound,
            "AMVA off by {rel} (d={demand}, n={population}, z={think})"
        );
    }
}

/// Text-format round trip is lossless for randomized Trade models.
#[test]
fn format_round_trip() {
    let mut rng = Rng::new(0x19_0004);
    for _ in 0..64 {
        let population = rng.int(1, 5_000) as u32;
        let think = rng.range(0.0, 10_000.0);
        let app_demand = rng.range(0.0, 100.0);
        let db_calls = rng.range(0.01, 10.0);
        let threads = rng.int(1, 200) as u32;
        let m = trade_shaped(population, think, app_demand, 1.0, db_calls, threads);
        let text = format::serialize(&m);
        let m2 = format::parse(&text).unwrap();
        assert_eq!(m, m2);
    }
}
