//! Property-style tests for the resource manager: allocation conservation,
//! capacity respect, and slack behaviour, against a transparent linear
//! capacity model.

use perfpred_core::workload::ClassLoad;
use perfpred_core::{
    PerformanceModel, PredictError, Prediction, ServerArch, ServiceClass, Workload,
};
use perfpred_resman::algorithm::allocate;
use perfpred_resman::runtime::{evaluate_runtime, RuntimeOptions};

/// Minimal xorshift64* generator for deterministic case sweeps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// Linear test model: mrt = base + total_clients · k / speed.
struct LinearModel {
    base_ms: f64,
    per_client_ms: f64,
}

impl PerformanceModel for LinearModel {
    fn method_name(&self) -> &str {
        "linear"
    }
    fn predict(&self, server: &ServerArch, w: &Workload) -> Result<Prediction, PredictError> {
        let n = f64::from(w.total_clients());
        let mrt = self.base_ms + n * self.per_client_ms / server.speed_factor;
        Ok(Prediction {
            mrt_ms: mrt,
            per_class_mrt_ms: vec![mrt; w.classes.len()],
            throughput_rps: n / 7.0,
            utilization: None,
            saturated: false,
        })
    }
}

fn pool(n_servers: usize) -> Vec<ServerArch> {
    (0..n_servers)
        .map(|i| match i % 3 {
            0 => ServerArch::app_serv_s(),
            1 => ServerArch::app_serv_f(),
            _ => ServerArch::app_serv_vf(),
        })
        .collect()
}

fn workload(counts: &[u32], goals: &[f64]) -> Workload {
    Workload {
        classes: counts
            .iter()
            .zip(goals)
            .enumerate()
            .map(|(i, (&clients, &goal))| ClassLoad {
                class: ServiceClass::browse()
                    .named(format!("c{i}"))
                    .with_goal(goal),
                clients,
            })
            .collect(),
    }
}

/// Every real client is either placed on exactly one server or rejected;
/// nothing is duplicated or lost, at any slack.
#[test]
fn allocation_conserves_clients() {
    let mut rng = Rng::new(0xAE_0001);
    for _ in 0..48 {
        let n_classes = rng.int(1, 4) as usize;
        let counts: Vec<u32> = (0..n_classes).map(|_| rng.int(0, 2_000) as u32).collect();
        let n_servers = rng.int(1, 8) as usize;
        let slack = rng.range(0.0, 2.0);
        let goals: Vec<f64> = (0..counts.len()).map(|i| 150.0 * (i + 1) as f64).collect();
        let w = workload(&counts, &goals);
        let model = LinearModel {
            base_ms: 10.0,
            per_client_ms: 1.0,
        };
        let a = allocate(&model, &pool(n_servers), &w, slack).unwrap();
        for (ci, &c) in counts.iter().enumerate() {
            let placed: u32 = a.servers.iter().map(|s| s.real[ci]).sum();
            assert_eq!(placed + a.rejected_real[ci], c, "class {ci}");
        }
    }
}

/// The plan never exceeds any server's predicted capacity (checking the
/// planner's own goal predicate on the final allocation).
#[test]
fn allocation_respects_predicted_capacity() {
    let mut rng = Rng::new(0xAE_0002);
    for _ in 0..48 {
        let n_classes = rng.int(1, 4) as usize;
        let counts: Vec<u32> = (0..n_classes).map(|_| rng.int(1, 1_500) as u32).collect();
        let n_servers = rng.int(1, 8) as usize;
        let goals: Vec<f64> = (0..counts.len())
            .map(|i| 200.0 + 150.0 * i as f64)
            .collect();
        let w = workload(&counts, &goals);
        let model = LinearModel {
            base_ms: 10.0,
            per_client_ms: 1.0,
        };
        let servers = pool(n_servers);
        let a = allocate(&model, &servers, &w, 1.0).unwrap();
        for (si, server) in servers.iter().enumerate() {
            let sw = a.server_workload(&w, si);
            if sw.total_clients() == 0 {
                continue;
            }
            let p = model.predict(server, &sw).unwrap();
            for (i, load) in sw.classes.iter().enumerate() {
                if load.clients > 0 {
                    if let Some(goal) = load.class.rt_goal_ms {
                        assert!(
                            p.per_class_mrt_ms[i] <= goal + 1e-9,
                            "server {si} class {i} violates plan"
                        );
                    }
                }
            }
        }
    }
}

/// With a perfect planner and zero threshold, runtime failures equal the
/// planner's own rejections (nothing extra shed or rescued).
#[test]
fn perfect_planner_runtime_agreement() {
    let mut rng = Rng::new(0xAE_0003);
    for _ in 0..48 {
        let n_classes = rng.int(1, 3) as usize;
        let counts: Vec<u32> = (0..n_classes).map(|_| rng.int(1, 1_200) as u32).collect();
        let n_servers = rng.int(1, 6) as usize;
        let goals: Vec<f64> = (0..counts.len())
            .map(|i| 250.0 + 200.0 * i as f64)
            .collect();
        let w = workload(&counts, &goals);
        let model = LinearModel {
            base_ms: 10.0,
            per_client_ms: 1.0,
        };
        let servers = pool(n_servers);
        let a = allocate(&model, &servers, &w, 1.0).unwrap();
        let out = evaluate_runtime(
            &model,
            &servers,
            &w,
            &a,
            &RuntimeOptions {
                threshold: 0.0,
                optimize: false,
            },
        )
        .unwrap();
        let planned_rejects: u32 = a.rejected_real.iter().sum();
        let runtime_rejects: u32 = out.rejected_per_class.iter().sum();
        assert_eq!(planned_rejects, runtime_rejects);
    }
}

/// Failures never exceed 100 % and usage stays within [0, 100].
#[test]
fn metrics_bounded() {
    let mut rng = Rng::new(0xAE_0004);
    for _ in 0..48 {
        let n_classes = rng.int(1, 4) as usize;
        let counts: Vec<u32> = (0..n_classes).map(|_| rng.int(0, 3_000) as u32).collect();
        let n_servers = rng.int(1, 10) as usize;
        let slack = rng.range(0.0, 2.0);
        let threshold = rng.range(0.0, 0.2);
        let goals: Vec<f64> = (0..counts.len()).map(|i| 120.0 * (i + 1) as f64).collect();
        let w = workload(&counts, &goals);
        let planner = LinearModel {
            base_ms: 10.0,
            per_client_ms: 0.8,
        };
        let truth = LinearModel {
            base_ms: 10.0,
            per_client_ms: 1.0,
        };
        let servers = pool(n_servers);
        let a = allocate(&planner, &servers, &w, slack).unwrap();
        let out = evaluate_runtime(
            &truth,
            &servers,
            &w,
            &a,
            &RuntimeOptions {
                threshold,
                optimize: true,
            },
        )
        .unwrap();
        assert!((0.0..=100.0 + 1e-9).contains(&out.sla_failure_pct));
        assert!((0.0..=100.0 + 1e-9).contains(&out.server_usage_pct));
        // Runtime never serves clients that were never allocated.
        for (ci, load) in w.classes.iter().enumerate() {
            let served: u32 = out.admitted.iter().map(|s| s[ci]).sum();
            assert!(served <= load.clients);
        }
    }
}
