#![warn(missing_docs)]

//! # perfpred-resman
//!
//! The prediction-enhanced SLA resource manager of §9: given a list of
//! service classes (each a client population with a response-time goal) and
//! a pool of application servers, decide which servers to obtain and how to
//! divide the workload across them — using a performance model to predict
//! each server's capacity — and study how the *slack* tuning parameter
//! trades SLA-failure cost against server-usage cost under predictive
//! inaccuracy.
//!
//! * [`algorithm`] — Algorithm 1: greedy server selection (most predicted
//!   capacity for the current class; smallest sufficient server when it
//!   would be the class's last) with a slack multiplier on the workload;
//! * [`runtime`] — the §9 runtime model: servers reject clients when
//!   response times come within a threshold of SLA goals, and runtime
//!   optimisations re-admit rejected clients into any capacity the
//!   allocation left unused;
//! * [`costs`] — the two §9.1 cost metrics (% SLA failures, % server
//!   usage), load sweeps and the slack-reduction analysis behind figs 5–8;
//! * [`planner`] — a one-call `plan()` entry point (allocation plus
//!   per-server predictions) for consumers outside the experiment
//!   harness, e.g. the `perfpred-serve` daemon's `POST /plan`;
//! * [`online`] — replica planning over a homogeneous serving tier: the
//!   smallest replica count whose per-replica share meets every SLA goal
//!   with the admission margin (the `perfpred-ctl` control loop's
//!   planner);
//! * [`scenario`] — the paper's 16-server / 3-service-class experiment
//!   setup, and the uniform-predictive-error wrapper model used to verify
//!   that slack = y cancels a uniform error y exactly;
//! * [`workload_manager`] — the §2 workload-manager tier: online routing
//!   of incoming clients and model-driven rebalancing of the division the
//!   allocation algorithm produced.

pub mod algorithm;
pub mod costs;
pub mod online;
pub mod planner;
pub mod runtime;
pub mod scenario;
pub mod workload_manager;

pub use algorithm::{allocate, Allocation, ServerAllocation};
pub use costs::{slack_sweep, sweep_loads, CostModel, LoadPoint, SlackCurve, SweepConfig};
pub use online::{
    meets_goals, per_replica_workload, plan_replicas, ReplicaBounds, ReplicaCandidate, ReplicaPlan,
};
pub use planner::{plan, Plan, ServerPlan};
pub use runtime::{evaluate_runtime, RuntimeOptions, RuntimeOutcome};
pub use scenario::{paper_pool, paper_workload, UniformErrorModel};
pub use workload_manager::{rebalance, route_new_clients, Division, RebalanceOptions, Transfer};
